#include "interconnect/rc_tree.hpp"

#include <cmath>
#include <stdexcept>

namespace spsta::interconnect {

RcTree::RcTree(std::string root_name) {
  parent_.push_back(0);  // root is its own parent
  r_.push_back(0.0);
  c_.push_back(0.0);
  name_.push_back(std::move(root_name));
}

RcNodeId RcTree::add_node(RcNodeId parent, std::string name, double r, double c) {
  if (parent >= parent_.size()) {
    throw std::invalid_argument("RcTree::add_node: bad parent");
  }
  if (r < 0.0 || c < 0.0) {
    throw std::invalid_argument("RcTree::add_node: negative R or C");
  }
  const RcNodeId id = static_cast<RcNodeId>(parent_.size());
  parent_.push_back(parent);
  r_.push_back(r);
  c_.push_back(c);
  name_.push_back(std::move(name));
  return id;
}

void RcTree::set_capacitance(RcNodeId id, double c) {
  if (c < 0.0) throw std::invalid_argument("RcTree::set_capacitance: negative");
  c_.at(id) = c;
}

void RcTree::set_resistance(RcNodeId id, double r) {
  if (r < 0.0) throw std::invalid_argument("RcTree::set_resistance: negative");
  r_.at(id) = r;
}

double RcTree::total_capacitance() const noexcept {
  double total = 0.0;
  for (double c : c_) total += c;
  return total;
}

bool RcTree::on_path(RcNodeId edge, RcNodeId sink) const {
  // The branch resistance of `edge` lies on root->sink iff edge is an
  // ancestor-or-self of sink.
  RcNodeId cur = sink;
  while (cur != 0) {
    if (cur == edge) return true;
    cur = parent_[cur];
  }
  return false;
}

double RcTree::shared_resistance(RcNodeId a, RcNodeId b) const {
  // Sum branch resistances over ancestors common to both paths.
  double shared = 0.0;
  RcNodeId cur = a;
  while (cur != 0) {
    if (on_path(cur, b)) shared += r_[cur];
    cur = parent_[cur];
  }
  return shared;
}

double RcTree::elmore_delay(RcNodeId sink) const {
  if (sink >= parent_.size()) throw std::invalid_argument("RcTree: bad sink");
  double delay = 0.0;
  for (RcNodeId k = 1; k < parent_.size(); ++k) {
    if (c_[k] == 0.0) continue;
    delay += c_[k] * shared_resistance(sink, k);
  }
  return delay;
}

double RcTree::second_moment(RcNodeId sink) const {
  if (sink >= parent_.size()) throw std::invalid_argument("RcTree: bad sink");
  // m2 = sum_k C_k * R_shared(sink, k) * T_D(k)   (standard recursion).
  double m2 = 0.0;
  for (RcNodeId k = 1; k < parent_.size(); ++k) {
    if (c_[k] == 0.0) continue;
    m2 += c_[k] * shared_resistance(sink, k) * elmore_delay(k);
  }
  return m2;
}

double RcTree::d2m_delay(RcNodeId sink) const {
  const double m1 = elmore_delay(sink);
  const double m2 = second_moment(sink);
  if (m2 <= 0.0) return m1;
  return M_LN2 * m1 * m1 / std::sqrt(m2);
}

RcTree::ElmoreSensitivities RcTree::elmore_sensitivities(RcNodeId sink) const {
  ElmoreSensitivities s;
  s.d_dr.assign(parent_.size(), 0.0);
  s.d_dc.assign(parent_.size(), 0.0);
  // d(T_D)/d(C_k) = R_shared(sink, k).
  for (RcNodeId k = 1; k < parent_.size(); ++k) {
    s.d_dc[k] = shared_resistance(sink, k);
  }
  // d(T_D)/d(R_e) = downstream capacitance of e, restricted to edges on
  // the root->sink path... actually R_e contributes to every term whose
  // node k has e on its shared path with sink, i.e. e on root->sink AND e
  // ancestor of k: the total is the capacitance of e's subtree.
  for (RcNodeId e = 1; e < parent_.size(); ++e) {
    if (!on_path(e, sink)) continue;
    double downstream = 0.0;
    for (RcNodeId k = 1; k < parent_.size(); ++k) {
      if (on_path(e, k)) downstream += c_[k];
    }
    s.d_dr[e] = downstream;
  }
  return s;
}

RcTree uniform_wire(double r_total, double c_total, std::size_t sections,
                    double load_capacitance) {
  if (sections == 0) throw std::invalid_argument("uniform_wire: zero sections");
  RcTree tree("drv");
  const double r = r_total / static_cast<double>(sections);
  const double c = c_total / static_cast<double>(sections);
  RcNodeId prev = 0;
  for (std::size_t i = 0; i < sections; ++i) {
    prev = tree.add_node(prev, "n" + std::to_string(i + 1), r, c);
  }
  if (load_capacitance > 0.0) {
    tree.set_capacitance(prev, tree.capacitance(prev) + load_capacitance);
  }
  return tree;
}

}  // namespace spsta::interconnect
