/// \file variational_elmore.hpp
/// Variational interconnect delay (paper background refs [9, 10]): wire
/// width/thickness variations perturb each segment's R and C; first-order
/// Elmore sensitivities turn them into a canonical form over N(0,1)
/// parameters, ready for the same machinery as gate-delay variation
/// (sensitivity-based analysis, ref [3]).
///
/// Geometry model per segment i with unit-variance parameter dW:
///   R_i = R0_i * (1 + r_sensitivity * dW_i)
///   C_i = C0_i * (1 + c_sensitivity * dW_i)
/// A wider wire lowers R and raises C, so r_sensitivity and c_sensitivity
/// typically carry opposite signs.

#pragma once

#include "interconnect/rc_tree.hpp"
#include "variational/canonical.hpp"

namespace spsta::interconnect {

/// Variation model of a routed wire.
struct WireVariation {
  /// Relative R change per sigma of the width parameter (often < 0: wider
  /// means less resistive).
  double r_sensitivity = -0.1;
  /// Relative C change per sigma (wider means more capacitive).
  double c_sensitivity = 0.15;
  /// true: every tree segment gets its own independent parameter
  /// (local/random variation); false: one shared parameter for the whole
  /// wire (systematic width bias).
  bool per_segment = false;
};

/// First-order canonical form of the Elmore delay at \p sink under
/// \p variation. The parameter space has one entry (shared) or
/// tree.node_count() entries (per-segment, parameter i for node i;
/// the root's entry stays zero).
[[nodiscard]] variational::CanonicalForm variational_elmore(const RcTree& tree,
                                                            RcNodeId sink,
                                                            const WireVariation& variation);

}  // namespace spsta::interconnect
