/// \file rc_tree.hpp
/// RC interconnect trees and moment-based delay metrics: Elmore delay
/// (first moment of the impulse response) and the second moment behind
/// D2M-style metrics — the interconnect analysis layer the paper's
/// background builds on (refs [9, 10, 17]: variational model order
/// reduction and interval-valued interconnect modeling).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spsta::interconnect {

/// Index of a node within its tree; 0 is always the driver (root).
using RcNodeId = std::uint32_t;

/// A distributed RC tree: every node except the root has a resistance to
/// its parent and a grounded capacitance.
class RcTree {
 public:
  /// Creates the tree with a root (driver) node named \p root_name.
  explicit RcTree(std::string root_name = "drv");

  /// Adds a node under \p parent with resistance \p r (ohms) to the
  /// parent and capacitance \p c (farads) to ground. Negative values are
  /// rejected.
  RcNodeId add_node(RcNodeId parent, std::string name, double r, double c);

  [[nodiscard]] std::size_t node_count() const noexcept { return parent_.size(); }
  [[nodiscard]] RcNodeId parent(RcNodeId id) const { return parent_.at(id); }
  [[nodiscard]] double resistance(RcNodeId id) const { return r_.at(id); }
  [[nodiscard]] double capacitance(RcNodeId id) const { return c_.at(id); }
  [[nodiscard]] const std::string& name(RcNodeId id) const { return name_.at(id); }
  void set_capacitance(RcNodeId id, double c);
  void set_resistance(RcNodeId id, double r);

  /// Total capacitance of the tree (the load the driver sees at DC).
  [[nodiscard]] double total_capacitance() const noexcept;

  /// Elmore delay (first moment m1 of the impulse response) at \p sink:
  ///   T_D(sink) = sum_k C_k * R(path(root->sink) intersect path(root->k)).
  [[nodiscard]] double elmore_delay(RcNodeId sink) const;

  /// Second moment m2 at \p sink (for D2M / two-pole metrics):
  ///   m2(sink) = sum_k C_k * R_shared(sink,k) * T_D(k).
  [[nodiscard]] double second_moment(RcNodeId sink) const;

  /// D2M delay metric: ln(2) * m1^2 / sqrt(m2) (Alpert et al.) — the
  /// two-moment 50%-delay estimate that removes Elmore's far-sink
  /// pessimism (exactly ln2 * RC for a single lump, matching the true
  /// single-pole 50% delay).
  [[nodiscard]] double d2m_delay(RcNodeId sink) const;

  /// Per-node sensitivity of the sink's Elmore delay:
  /// d(T_D)/d(R_e) and d(T_D)/d(C_k), for variational analysis.
  struct ElmoreSensitivities {
    std::vector<double> d_dr;  ///< indexed by node (its branch resistance)
    std::vector<double> d_dc;  ///< indexed by node (its capacitance)
  };
  [[nodiscard]] ElmoreSensitivities elmore_sensitivities(RcNodeId sink) const;

 private:
  /// Shared path resistance between root->a and root->b.
  [[nodiscard]] double shared_resistance(RcNodeId a, RcNodeId b) const;
  [[nodiscard]] bool on_path(RcNodeId edge, RcNodeId sink) const;

  std::vector<RcNodeId> parent_;
  std::vector<double> r_;
  std::vector<double> c_;
  std::vector<std::string> name_;
};

/// A uniform wire segmented into an n-section RC ladder (pi-ish model):
/// total resistance \p r_total and capacitance \p c_total split evenly.
[[nodiscard]] RcTree uniform_wire(double r_total, double c_total, std::size_t sections,
                                  double load_capacitance = 0.0);

}  // namespace spsta::interconnect
