#include "interconnect/variational_elmore.hpp"

#include <vector>

namespace spsta::interconnect {

variational::CanonicalForm variational_elmore(const RcTree& tree, RcNodeId sink,
                                              const WireVariation& variation) {
  const double nominal = tree.elmore_delay(sink);
  const RcTree::ElmoreSensitivities sens = tree.elmore_sensitivities(sink);

  const std::size_t num_params = variation.per_segment ? tree.node_count() : 1;
  std::vector<double> s(num_params, 0.0);
  for (RcNodeId i = 1; i < tree.node_count(); ++i) {
    // dT/dW_i = dT/dR_i * R0_i * r_sens + dT/dC_i * C0_i * c_sens.
    const double dt_dw = sens.d_dr[i] * tree.resistance(i) * variation.r_sensitivity +
                         sens.d_dc[i] * tree.capacitance(i) * variation.c_sensitivity;
    if (variation.per_segment) {
      s[i] += dt_dw;
    } else {
      s[0] += dt_dw;
    }
  }
  return {nominal, std::move(s), 0.0};
}

}  // namespace spsta::interconnect
