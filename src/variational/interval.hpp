/// \file interval.hpp
/// Interval and affine arithmetic (paper Sec. 3.6, refs [10, 20]):
/// guaranteed enclosures of arrival times under bounded parameter
/// uncertainty — the "interval-valued" alternative to moment propagation.
/// Interval STA over a netlist yields corner-style bounds (paper Fig. 1's
/// dotted STA lines).

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"

namespace spsta::variational {

/// A closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] double mid() const noexcept { return 0.5 * (lo + hi); }
  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo && x <= hi; }

  friend Interval operator+(const Interval& a, const Interval& b) noexcept {
    return {a.lo + b.lo, a.hi + b.hi};
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

[[nodiscard]] Interval interval_max(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval interval_min(const Interval& a, const Interval& b) noexcept;

/// An affine form c0 + sum_i c_i eps_i (+ rad * eps_new), eps in [-1, 1].
/// Shared noise symbols keep correlation through SUMs, so long paths don't
/// blow up the way plain intervals do.
class AffineForm {
 public:
  AffineForm() = default;
  explicit AffineForm(double center) : center_(center) {}
  AffineForm(double center, std::map<std::uint32_t, double> terms)
      : center_(center), terms_(std::move(terms)) {}

  [[nodiscard]] double center() const noexcept { return center_; }
  [[nodiscard]] const std::map<std::uint32_t, double>& terms() const noexcept {
    return terms_;
  }
  /// Total deviation radius: sum of |coefficients|.
  [[nodiscard]] double radius() const noexcept;
  /// Guaranteed enclosure.
  [[nodiscard]] Interval to_interval() const noexcept;

  friend AffineForm operator+(const AffineForm& a, const AffineForm& b);

 private:
  double center_ = 0.0;
  std::map<std::uint32_t, double> terms_;
};

/// Interval STA over a netlist: arrival enclosure per node, with gate
/// delays as [mean - k*sigma, mean + k*sigma] intervals and source
/// arrivals likewise. A transition is assumed on every net (the STA
/// convention); the result bounds every realization within the k-sigma
/// parameter box.
[[nodiscard]] std::vector<Interval> interval_sta(const netlist::Netlist& design,
                                                 const netlist::DelayModel& delays,
                                                 const Interval& source_arrival,
                                                 double k_sigma = 3.0);

}  // namespace spsta::variational
