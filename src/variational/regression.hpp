/// \file regression.hpp
/// Least-squares fitting of variational delay models from sampled analyses
/// (paper Sec. 3.6: "variational delays are obtained ... by sampling
/// analysis and regression"). Normal equations solved by Cholesky; a
/// quadratic feature expansion supports second-order polynomial models.

#pragma once

#include <span>
#include <vector>

namespace spsta::variational {

/// Ordinary least squares: finds beta minimizing ||X beta - y||^2.
/// \p rows is the number of samples; X is row-major rows x cols.
/// Throws std::invalid_argument on shape mismatch and std::runtime_error
/// if the normal equations are singular.
[[nodiscard]] std::vector<double> least_squares(std::span<const double> x,
                                                std::size_t rows, std::size_t cols,
                                                std::span<const double> y);

/// A fitted linear model y ~= intercept + coeffs . params.
struct LinearModel {
  double intercept = 0.0;
  std::vector<double> coeffs;

  [[nodiscard]] double predict(std::span<const double> params) const;
};

/// Fits a first-order model from samples (each sample: one parameter
/// vector and one response). `samples` is row-major n x dims.
[[nodiscard]] LinearModel fit_linear(std::span<const double> samples, std::size_t dims,
                                     std::span<const double> responses);

/// A fitted quadratic model: intercept + linear + pairwise quadratic
/// terms (including squares), in the feature order
/// [x0..xd-1, x0*x0, x0*x1, ..., xd-1*xd-1].
struct QuadraticModel {
  std::size_t dims = 0;
  double intercept = 0.0;
  std::vector<double> linear;
  std::vector<double> quadratic;  ///< packed upper triangle, size d(d+1)/2

  [[nodiscard]] double predict(std::span<const double> params) const;
};

/// Fits a full quadratic response surface.
[[nodiscard]] QuadraticModel fit_quadratic(std::span<const double> samples,
                                           std::size_t dims,
                                           std::span<const double> responses);

}  // namespace spsta::variational
