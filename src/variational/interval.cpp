#include "variational/interval.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/levelize.hpp"

namespace spsta::variational {

Interval interval_max(const Interval& a, const Interval& b) noexcept {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_min(const Interval& a, const Interval& b) noexcept {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

double AffineForm::radius() const noexcept {
  double r = 0.0;
  for (const auto& [sym, c] : terms_) r += std::abs(c);
  return r;
}

Interval AffineForm::to_interval() const noexcept {
  const double r = radius();
  return {center_ - r, center_ + r};
}

AffineForm operator+(const AffineForm& a, const AffineForm& b) {
  std::map<std::uint32_t, double> terms = a.terms_;
  for (const auto& [sym, c] : b.terms_) terms[sym] += c;
  return {a.center_ + b.center_, std::move(terms)};
}

std::vector<Interval> interval_sta(const netlist::Netlist& design,
                                   const netlist::DelayModel& delays,
                                   const Interval& source_arrival, double k_sigma) {
  std::vector<Interval> arrival(design.node_count(), Interval{0.0, 0.0});
  for (netlist::NodeId id : design.timing_sources()) arrival[id] = source_arrival;

  const netlist::Levelization lv = netlist::levelize(design);
  for (netlist::NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    if (node.fanins.empty()) {
      arrival[id] = {0.0, 0.0};
      continue;
    }
    Interval acc = arrival[node.fanins[0]];
    for (std::size_t i = 1; i < node.fanins.size(); ++i) {
      // STA bounds: earliest possible (min of los) to latest possible
      // (max of his) — the [min, max] corner pair of Fig. 1.
      const Interval& in = arrival[node.fanins[i]];
      acc = {std::min(acc.lo, in.lo), std::max(acc.hi, in.hi)};
    }
    // Directional models: enclose both directions' k-sigma ranges.
    const stats::Gaussian& dr = delays.delay(id, true);
    const stats::Gaussian& df = delays.delay(id, false);
    const double lo = std::min(dr.mean - k_sigma * dr.stddev(),
                               df.mean - k_sigma * df.stddev());
    const double hi = std::max(dr.mean + k_sigma * dr.stddev(),
                               df.mean + k_sigma * df.stddev());
    arrival[id] = acc + Interval{lo, hi};
  }
  return arrival;
}

}  // namespace spsta::variational
