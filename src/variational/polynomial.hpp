/// \file polynomial.hpp
/// Sparse multivariate polynomials in variational parameters
/// (paper Sec. 3.6, "polynomial computation" ref [8]): circuit quantities
/// as closed-form polynomials of independent N(0,1) process parameters,
/// with exact Gaussian-moment extraction and degree truncation — the
/// accuracy/efficiency tradeoff the paper describes.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace spsta::variational {

/// A monomial key: sorted (variable, exponent) pairs.
using Monomial = std::map<std::uint32_t, std::uint32_t>;

/// A sparse polynomial sum of coeff * prod X_v^e.
class Polynomial {
 public:
  Polynomial() = default;
  /// Constant polynomial.
  explicit Polynomial(double constant);
  /// The polynomial "X_var".
  [[nodiscard]] static Polynomial variable(std::uint32_t var);

  [[nodiscard]] const std::map<Monomial, double>& terms() const noexcept { return terms_; }
  [[nodiscard]] bool is_zero() const noexcept { return terms_.empty(); }
  [[nodiscard]] std::uint32_t degree() const noexcept;

  Polynomial& operator+=(const Polynomial& o);
  Polynomial& operator-=(const Polynomial& o);
  Polynomial& operator*=(double k);
  friend Polynomial operator+(Polynomial a, const Polynomial& b) { return a += b; }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) { return a -= b; }
  friend Polynomial operator*(Polynomial a, double k) { return a *= k; }
  friend Polynomial operator*(const Polynomial& a, const Polynomial& b);

  /// Drops every term of total degree greater than \p max_degree.
  [[nodiscard]] Polynomial truncated(std::uint32_t max_degree) const;

  /// Value at a concrete parameter assignment (missing vars read 0).
  [[nodiscard]] double evaluate(std::span<const double> params) const;

  /// E[poly] with all X_v independent standard normals
  /// (E[X^k] = 0 for odd k, (k-1)!! for even k).
  [[nodiscard]] double mean_gaussian() const;
  /// Var[poly] = E[poly^2] - E[poly]^2 under the same distribution.
  [[nodiscard]] double variance_gaussian() const;
  /// Cov of two polynomials under the same distribution.
  [[nodiscard]] static double covariance_gaussian(const Polynomial& a,
                                                  const Polynomial& b);

 private:
  void add_term(const Monomial& m, double c);
  std::map<Monomial, double> terms_;
};

}  // namespace spsta::variational
