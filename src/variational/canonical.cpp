#include "variational/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spsta::variational {

double CanonicalForm::variance() const noexcept {
  double v = resid_ * resid_;
  for (double s : sens_) v += s * s;
  return v;
}

double CanonicalForm::evaluate(std::span<const double> params, double residual_draw) const {
  double v = nominal_ + resid_ * residual_draw;
  const std::size_t n = std::min(params.size(), sens_.size());
  for (std::size_t i = 0; i < n; ++i) v += sens_[i] * params[i];
  return v;
}

namespace {
void check_compatible(const CanonicalForm& a, const CanonicalForm& b) {
  if (a.num_params() != b.num_params()) {
    throw std::invalid_argument("CanonicalForm: parameter count mismatch");
  }
}
}  // namespace

double covariance(const CanonicalForm& a, const CanonicalForm& b) {
  check_compatible(a, b);
  double c = 0.0;
  for (std::size_t i = 0; i < a.num_params(); ++i) {
    c += a.sensitivity(i) * b.sensitivity(i);
  }
  return c;
}

double correlation(const CanonicalForm& a, const CanonicalForm& b) {
  const double va = a.variance();
  const double vb = b.variance();
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return covariance(a, b) / std::sqrt(va * vb);
}

CanonicalForm sum(const CanonicalForm& a, const CanonicalForm& b) {
  check_compatible(a, b);
  std::vector<double> sens(a.num_params());
  for (std::size_t i = 0; i < sens.size(); ++i) {
    sens[i] = a.sensitivity(i) + b.sensitivity(i);
  }
  const double resid = std::hypot(a.residual(), b.residual());
  return {a.nominal() + b.nominal(), std::move(sens), resid};
}

CanonicalForm max(const CanonicalForm& a, const CanonicalForm& b) {
  check_compatible(a, b);
  const stats::ClarkResult cr =
      stats::clark_max(a.moments(), b.moments(), covariance(a, b));
  const double t = cr.tightness;
  std::vector<double> sens(a.num_params());
  double global_var = 0.0;
  for (std::size_t i = 0; i < sens.size(); ++i) {
    sens[i] = t * a.sensitivity(i) + (1.0 - t) * b.sensitivity(i);
    global_var += sens[i] * sens[i];
  }
  const double resid_var = std::max(0.0, cr.moments.var - global_var);
  return {cr.moments.mean, std::move(sens), std::sqrt(resid_var)};
}

CanonicalForm min(const CanonicalForm& a, const CanonicalForm& b) {
  check_compatible(a, b);
  // MIN(a,b) = -MAX(-a,-b).
  const auto negate = [](const CanonicalForm& f) {
    std::vector<double> sens(f.num_params());
    for (std::size_t i = 0; i < sens.size(); ++i) sens[i] = -f.sensitivity(i);
    return CanonicalForm{-f.nominal(), std::move(sens), f.residual()};
  };
  const CanonicalForm neg = max(negate(a), negate(b));
  return negate(neg);
}

}  // namespace spsta::variational
