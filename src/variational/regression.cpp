#include "variational/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace spsta::variational {

std::vector<double> least_squares(std::span<const double> x, std::size_t rows,
                                  std::size_t cols, std::span<const double> y) {
  if (x.size() != rows * cols || y.size() != rows) {
    throw std::invalid_argument("least_squares: shape mismatch");
  }
  if (rows < cols) throw std::invalid_argument("least_squares: underdetermined system");

  // Normal equations A = X^T X (cols x cols), b = X^T y.
  std::vector<double> a(cols * cols, 0.0);
  std::vector<double> b(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x.data() + r * cols;
    for (std::size_t i = 0; i < cols; ++i) {
      b[i] += xr[i] * y[r];
      for (std::size_t j = i; j < cols; ++j) a[i * cols + j] += xr[i] * xr[j];
    }
  }
  for (std::size_t i = 0; i < cols; ++i) {
    for (std::size_t j = 0; j < i; ++j) a[i * cols + j] = a[j * cols + i];
  }

  // Cholesky A = L L^T with a tiny ridge for numerical robustness.
  const double ridge = 1e-12;
  std::vector<double> l(cols * cols, 0.0);
  for (std::size_t i = 0; i < cols; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a[i * cols + j] + (i == j ? ridge : 0.0);
      for (std::size_t k = 0; k < j; ++k) s -= l[i * cols + k] * l[j * cols + k];
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("least_squares: singular normal equations");
        l[i * cols + i] = std::sqrt(s);
      } else {
        l[i * cols + j] = s / l[j * cols + j];
      }
    }
  }
  // Solve L z = b, then L^T beta = z.
  std::vector<double> z(cols, 0.0);
  for (std::size_t i = 0; i < cols; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * cols + k] * z[k];
    z[i] = s / l[i * cols + i];
  }
  std::vector<double> beta(cols, 0.0);
  for (std::size_t ii = cols; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = ii + 1; k < cols; ++k) s -= l[k * cols + ii] * beta[k];
    beta[ii] = s / l[ii * cols + ii];
  }
  return beta;
}

double LinearModel::predict(std::span<const double> params) const {
  double v = intercept;
  const std::size_t n = std::min(params.size(), coeffs.size());
  for (std::size_t i = 0; i < n; ++i) v += coeffs[i] * params[i];
  return v;
}

LinearModel fit_linear(std::span<const double> samples, std::size_t dims,
                       std::span<const double> responses) {
  const std::size_t n = responses.size();
  if (samples.size() != n * dims) throw std::invalid_argument("fit_linear: shape mismatch");
  const std::size_t cols = dims + 1;
  std::vector<double> x(n * cols, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    x[r * cols] = 1.0;
    for (std::size_t d = 0; d < dims; ++d) x[r * cols + 1 + d] = samples[r * dims + d];
  }
  const std::vector<double> beta = least_squares(x, n, cols, responses);
  LinearModel m;
  m.intercept = beta[0];
  m.coeffs.assign(beta.begin() + 1, beta.end());
  return m;
}

double QuadraticModel::predict(std::span<const double> params) const {
  double v = intercept;
  for (std::size_t i = 0; i < dims && i < params.size(); ++i) v += linear[i] * params[i];
  std::size_t q = 0;
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i; j < dims; ++j, ++q) {
      const double xi = i < params.size() ? params[i] : 0.0;
      const double xj = j < params.size() ? params[j] : 0.0;
      v += quadratic[q] * xi * xj;
    }
  }
  return v;
}

QuadraticModel fit_quadratic(std::span<const double> samples, std::size_t dims,
                             std::span<const double> responses) {
  const std::size_t n = responses.size();
  if (samples.size() != n * dims) {
    throw std::invalid_argument("fit_quadratic: shape mismatch");
  }
  const std::size_t quad_terms = dims * (dims + 1) / 2;
  const std::size_t cols = 1 + dims + quad_terms;
  std::vector<double> x(n * cols, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double* xr = x.data() + r * cols;
    xr[0] = 1.0;
    for (std::size_t d = 0; d < dims; ++d) xr[1 + d] = samples[r * dims + d];
    std::size_t q = 0;
    for (std::size_t i = 0; i < dims; ++i) {
      for (std::size_t j = i; j < dims; ++j, ++q) {
        xr[1 + dims + q] = samples[r * dims + i] * samples[r * dims + j];
      }
    }
  }
  const std::vector<double> beta = least_squares(x, n, cols, responses);
  QuadraticModel m;
  m.dims = dims;
  m.intercept = beta[0];
  m.linear.assign(beta.begin() + 1, beta.begin() + 1 + dims);
  m.quadratic.assign(beta.begin() + 1 + dims, beta.end());
  return m;
}

}  // namespace spsta::variational
