/// \file canonical.hpp
/// First-order canonical timing forms (the representation behind
/// parameterized SSTA, paper Sec. 1 refs [14, 25], used here for the
/// symbolic-analysis track of Sec. 3.6):
///
///   value = nominal + sum_i sens[i] * dX_i + resid * dR
///
/// with dX_i independent N(0,1) global process parameters (post-PCA) and
/// dR an independent N(0,1) local residual. SUM is exact; MAX/MIN use
/// Clark moments with tightness-weighted sensitivity blending, keeping
/// the result in canonical form so correlations survive downstream.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/gaussian.hpp"

namespace spsta::variational {

/// A first-order canonical form over a fixed number of global parameters.
class CanonicalForm {
 public:
  CanonicalForm() = default;
  /// Deterministic value with \p num_params zero sensitivities.
  CanonicalForm(double nominal, std::size_t num_params)
      : nominal_(nominal), sens_(num_params, 0.0) {}
  CanonicalForm(double nominal, std::vector<double> sens, double resid)
      : nominal_(nominal), sens_(std::move(sens)), resid_(resid) {}

  [[nodiscard]] double nominal() const noexcept { return nominal_; }
  [[nodiscard]] std::span<const double> sensitivities() const noexcept { return sens_; }
  [[nodiscard]] double sensitivity(std::size_t i) const { return sens_.at(i); }
  [[nodiscard]] double residual() const noexcept { return resid_; }
  [[nodiscard]] std::size_t num_params() const noexcept { return sens_.size(); }

  void set_sensitivity(std::size_t i, double s) { sens_.at(i) = s; }
  void set_residual(double r) noexcept { resid_ = r; }

  /// First two moments (parameters are independent standard normals).
  [[nodiscard]] double mean() const noexcept { return nominal_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] stats::Gaussian moments() const noexcept { return {mean(), variance()}; }

  /// Realization at a concrete parameter/residual draw.
  [[nodiscard]] double evaluate(std::span<const double> params,
                                double residual_draw = 0.0) const;

 private:
  double nominal_ = 0.0;
  std::vector<double> sens_;
  double resid_ = 0.0;
};

/// Covariance implied by shared global parameters:
/// sum_i a.sens[i] * b.sens[i]. Residuals are independent *across* forms,
/// so this cross-form covariance omits them even when a and b are the
/// same object.
[[nodiscard]] double covariance(const CanonicalForm& a, const CanonicalForm& b);
/// Pearson correlation (0 when either variance vanishes).
[[nodiscard]] double correlation(const CanonicalForm& a, const CanonicalForm& b);

/// Exact SUM of canonical forms (residuals RSS-combined).
[[nodiscard]] CanonicalForm sum(const CanonicalForm& a, const CanonicalForm& b);

/// Canonical MAX via Clark moments: sensitivities blend with the
/// tightness T (s = T*a_i + (1-T)*b_i); the residual absorbs whatever
/// variance Clark's matched second moment requires beyond the blended
/// global part. MIN is the dual.
[[nodiscard]] CanonicalForm max(const CanonicalForm& a, const CanonicalForm& b);
[[nodiscard]] CanonicalForm min(const CanonicalForm& a, const CanonicalForm& b);

}  // namespace spsta::variational
