#include "variational/polynomial.hpp"

#include <cmath>

namespace spsta::variational {

namespace {
constexpr double kDropEps = 1e-15;

/// E[X^k] for X ~ N(0,1): 0 for odd k, (k-1)!! for even k.
double normal_moment(std::uint32_t k) {
  if (k % 2 == 1) return 0.0;
  double m = 1.0;
  for (std::uint32_t i = k; i > 1; i -= 2) m *= static_cast<double>(i - 1);
  return m;
}

/// E[prod X_v^e] over independent standard normals.
double monomial_mean(const Monomial& m) {
  double mean = 1.0;
  for (const auto& [var, exp] : m) {
    mean *= normal_moment(exp);
    if (mean == 0.0) return 0.0;
  }
  return mean;
}

Monomial multiply(const Monomial& a, const Monomial& b) {
  Monomial out = a;
  for (const auto& [var, exp] : b) out[var] += exp;
  return out;
}
}  // namespace

Polynomial::Polynomial(double constant) {
  if (std::abs(constant) > kDropEps) terms_.emplace(Monomial{}, constant);
}

Polynomial Polynomial::variable(std::uint32_t var) {
  Polynomial p;
  p.terms_.emplace(Monomial{{var, 1}}, 1.0);
  return p;
}

std::uint32_t Polynomial::degree() const noexcept {
  std::uint32_t d = 0;
  for (const auto& [m, c] : terms_) {
    std::uint32_t total = 0;
    for (const auto& [var, exp] : m) total += exp;
    d = std::max(d, total);
  }
  return d;
}

void Polynomial::add_term(const Monomial& m, double c) {
  const auto it = terms_.find(m);
  if (it == terms_.end()) {
    if (std::abs(c) > kDropEps) terms_.emplace(m, c);
    return;
  }
  it->second += c;
  if (std::abs(it->second) <= kDropEps) terms_.erase(it);
}

Polynomial& Polynomial::operator+=(const Polynomial& o) {
  for (const auto& [m, c] : o.terms_) add_term(m, c);
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& o) {
  for (const auto& [m, c] : o.terms_) add_term(m, -c);
  return *this;
}

Polynomial& Polynomial::operator*=(double k) {
  if (k == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [m, c] : terms_) c *= k;
  return *this;
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  Polynomial out;
  for (const auto& [ma, ca] : a.terms_) {
    for (const auto& [mb, cb] : b.terms_) {
      out.add_term(multiply(ma, mb), ca * cb);
    }
  }
  return out;
}

Polynomial Polynomial::truncated(std::uint32_t max_degree) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    std::uint32_t total = 0;
    for (const auto& [var, exp] : m) total += exp;
    if (total <= max_degree) out.terms_.emplace(m, c);
  }
  return out;
}

double Polynomial::evaluate(std::span<const double> params) const {
  double acc = 0.0;
  for (const auto& [m, c] : terms_) {
    double v = c;
    for (const auto& [var, exp] : m) {
      const double x = var < params.size() ? params[var] : 0.0;
      for (std::uint32_t e = 0; e < exp; ++e) v *= x;
    }
    acc += v;
  }
  return acc;
}

double Polynomial::mean_gaussian() const {
  double mean = 0.0;
  for (const auto& [m, c] : terms_) mean += c * monomial_mean(m);
  return mean;
}

double Polynomial::variance_gaussian() const {
  const Polynomial sq = (*this) * (*this);
  const double mu = mean_gaussian();
  return std::max(0.0, sq.mean_gaussian() - mu * mu);
}

double Polynomial::covariance_gaussian(const Polynomial& a, const Polynomial& b) {
  const Polynomial prod = a * b;
  return prod.mean_gaussian() - a.mean_gaussian() * b.mean_gaussian();
}

}  // namespace spsta::variational
