// spsta — one-shot CLI client for the analysis service.
//
// Drives exactly the same JSON-lines protocol as spsta_serviced, but
// in-process: it builds the request lines a daemon client would send,
// routes them through the batch scheduler, and prints the response lines.
// The service sits on the unified Analyzer API (spsta_api.hpp): each
// loaded design keeps one Analyzer — and with it one compiled analysis
// plan — warm across the requests of an invocation.
//
//   spsta run s298 --engine=ssta                 load + analyze a builtin
//   spsta run netlist.bench --engine=mc --runs=2000 --seed=7
//   spsta query s27 --node=G17                   per-node statistics
//   spsta script session.jsonl                   raw protocol lines ( - = stdin)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/hier_bench_io.hpp"
#include "obs/metrics.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/service.hpp"
#include "service/transport/client.hpp"
#include "spsta_api.hpp"

namespace {

using spsta::service::AnalysisService;
using spsta::service::BatchScheduler;
using spsta::service::Json;
using spsta::service::Response;
namespace transport = spsta::service::transport;

/// Ceiling on one overload-retry sleep, whatever the server hints.
constexpr double kRetryCapMs = 1000.0;

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "spsta — one-shot client for the spsta analysis service\n"
      "  spsta run <circuit|file> [--engine=E] [--threads=N] [--runs=N] [--seed=N]\n"
      "  spsta query <circuit|file> (--node=NAME | --path) [--engine=E]\n"
      "              [--density=rise|fall]   full arrival density (spsta_numeric)\n"
      "  spsta script <file.jsonl | ->\n"
      "  --connect=HOST:PORT  send the same protocol lines to a daemon started\n"
      "                  with spsta_serviced --listen instead of in-process\n"
      "  --binary        with --connect: length-prefixed binary frames; bulk\n"
      "                  payloads (densities) arrive as raw f64 sidecar frames\n"
      "  --retry[=N]     with --connect: resubmit on 'overloaded' responses,\n"
      "                  sleeping the server's capped retry_after_ms hint,\n"
      "                  up to N times per request (default 8)\n"
      "  spsta gen --out=FILE [--gates=N] [--blocks=N] [--block-gates=N]\n"
      "            [--block-inputs=N] [--block-outputs=N] [--block-depth=N]\n"
      "            [--block-dffs=N] [--width=N] [--seed=N] [--random-wiring]\n"
      "            [--flat-out=FILE]   emit a hierarchical .hbench design\n"
      "                               (and optionally its flattened .bench)\n"
      "  --metrics       dump the metrics registry (stage timers, counters)\n"
      "                  to stderr after the command finishes\n"
      "Engines: spsta_moment (default) spsta_numeric canonical ssta mc.\n"
      "<circuit> is a builtin name (s27, s208..s1238); <file> is\n"
      ".bench/.v/.hbench (hierarchical designs analyze by block-model\n"
      "composition, not flattening).\n");
  return to == stdout ? 0 : 2;
}

/// True for the builtin circuit names the service accepts.
bool is_builtin_circuit(const std::string& name) {
  return !name.empty() && name[0] == 's' &&
         name.find('.') == std::string::npos &&
         name.find('/') == std::string::npos;
}

Json load_request(const std::string& target) {
  Json req = Json::object();
  req.set("id", Json("load"));
  req.set("cmd", Json("load"));
  if (is_builtin_circuit(target)) {
    req.set("circuit", Json(target));
  } else {
    req.set("path", Json(target));
  }
  return req;
}

/// The session key from a load response ("" on failure).
std::string session_of(const Response& response) {
  if (!response.ok) return "";
  const Json* key = response.body.find("session");
  return key != nullptr && key->is_string() ? key->as_string() : "";
}

/// session_of over a raw response line (socket mode).
std::string session_of_line(const std::string& line) {
  try {
    const Json doc = Json::parse(line);
    const Json* result = doc.find("result");
    if (result == nullptr) return "";
    const Json* key = result->find("session");
    return key != nullptr && key->is_string() ? key->as_string() : "";
  } catch (const std::exception&) {
    return "";
  }
}

/// The `overloaded` retry hint of a response line, clamped to
/// [1, kRetryCapMs] ms; nullopt when the response is anything else.
std::optional<double> overloaded_retry_ms(const std::string& line) {
  try {
    const Json doc = Json::parse(line);
    const Json* ok = doc.find("ok");
    if (ok == nullptr || !ok->is_bool() || ok->as_bool()) return std::nullopt;
    const Json* error = doc.find("error");
    if (error == nullptr) return std::nullopt;
    const Json* code = error->find("code");
    if (code == nullptr || !code->is_string() ||
        code->as_string() != "overloaded") {
      return std::nullopt;
    }
    double hint = 1.0;
    if (const Json* ms = error->find("retry_after_ms");
        ms != nullptr && ms->is_number()) {
      hint = ms->as_number();
    }
    return std::clamp(hint, 1.0, kRetryCapMs);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct RetryStats {
  std::uint64_t retried = 0;
  std::uint64_t gave_up = 0;
};

/// One synchronous request over the socket, resubmitting on `overloaded`
/// responses (sleeping the server's capped retry_after_ms hint) up to
/// \p max_retries times. nullopt = the connection died.
std::optional<transport::ClientReply> socket_request(
    transport::SocketClient& client, const std::string& line,
    unsigned max_retries, RetryStats& stats) {
  for (unsigned attempt = 0;; ++attempt) {
    if (!client.send(line)) return std::nullopt;
    std::optional<transport::ClientReply> reply = client.recv();
    if (!reply) return std::nullopt;
    const std::optional<double> hint = overloaded_retry_ms(reply->line);
    if (!hint) return reply;
    if (attempt >= max_retries) {
      if (max_retries > 0) ++stats.gave_up;
      return reply;
    }
    ++stats.retried;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(*hint));
  }
}

/// Prints one received reply: the protocol line on stdout, a summary of
/// any binary waveform sidecars on stderr (stdout stays pure protocol).
void print_reply(const transport::ClientReply& reply) {
  std::printf("%s\n", reply.line.c_str());
  for (const std::vector<double>& w : reply.waveforms) {
    std::fprintf(stderr, "# waveform sidecar: %zu f64 samples\n", w.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool dump_metrics = false;
  std::string connect_spec;
  bool binary_frames = false;
  unsigned max_retries = 0;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--metrics") {
      dump_metrics = true;
      it = args.erase(it);
    } else if (it->rfind("--connect=", 0) == 0) {
      connect_spec = it->substr(10);
      it = args.erase(it);
    } else if (*it == "--binary") {
      binary_frames = true;
      it = args.erase(it);
    } else if (*it == "--retry" || it->rfind("--retry=", 0) == 0) {
      max_retries = *it == "--retry"
                        ? 8u
                        : static_cast<unsigned>(std::stoul(it->substr(8)));
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  RetryStats retry_stats;
  transport::SocketClient client;
  // Connects up front (any mode): run/query/script all speak the same
  // protocol, so they all work over a socket exactly as in-process.
  if (!connect_spec.empty()) {
    const auto spec = transport::parse_host_port(connect_spec);
    if (!spec) {
      std::fprintf(stderr, "bad --connect spec '%s' (want HOST:PORT)\n",
                   connect_spec.c_str());
      return 2;
    }
    if (!client.connect(spec->host, spec->port, binary_frames)) {
      std::fprintf(stderr, "cannot connect to %s: %s\n", connect_spec.c_str(),
                   client.error().c_str());
      return 1;
    }
  } else if (binary_frames) {
    std::fprintf(stderr, "--binary needs --connect (frames are a socket mode)\n");
    return 2;
  }
  // Dumps the registry (stage timers, cache counters, spans) once the
  // command has run; stdout stays pure protocol lines.
  const auto finish = [&](int code) {
    if (max_retries > 0 && !connect_spec.empty()) {
      std::fprintf(stderr, "retries: %llu resubmitted, %llu gave up\n",
                   static_cast<unsigned long long>(retry_stats.retried),
                   static_cast<unsigned long long>(retry_stats.gave_up));
    }
    if (dump_metrics) {
      std::fprintf(stderr, "%s\n", spsta::service::metrics_json().dump().c_str());
    }
    return code;
  };
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    return usage(args.empty() ? stderr : stdout);
  }
  const std::string mode = args[0];

  if (mode == "script") {
    if (args.size() != 2) return usage(stderr);
    std::ifstream file;
    std::istream* in = &std::cin;
    if (args[1] != "-") {
      file.open(args[1]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", args[1].c_str());
        return 1;
      }
      in = &file;
    }
    if (!connect_spec.empty()) {
      // Socket script: one request per line, replies in order. Overload
      // retries are transparent — the script sees only final answers.
      std::string line;
      while (std::getline(*in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        const auto reply = socket_request(client, line, max_retries, retry_stats);
        if (!reply) {
          std::fprintf(stderr, "connection lost: %s\n", client.error().c_str());
          return finish(1);
        }
        print_reply(*reply);
      }
      client.finish_sending();
      return finish(0);
    }
    AnalysisService service;
    spsta::service::serve(*in, std::cout, service, {});
    return finish(0);
  }

  if (mode == "gen") {
    // Deterministic hierarchical design generation: same flags, same bytes,
    // at any thread count — the size sweep's input producer.
    spsta::netlist::HierGeneratorSpec spec;
    std::string out_path, flat_path;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& a = args[i];
      const auto number = [&](const char* prefix) -> std::size_t {
        return static_cast<std::size_t>(std::stoull(a.substr(std::string(prefix).size())));
      };
      try {
        if (a.rfind("--out=", 0) == 0) out_path = a.substr(6);
        else if (a.rfind("--flat-out=", 0) == 0) flat_path = a.substr(11);
        else if (a.rfind("--gates=", 0) == 0) spec.total_gates = number("--gates=");
        else if (a.rfind("--blocks=", 0) == 0) spec.unique_blocks = number("--blocks=");
        else if (a.rfind("--block-gates=", 0) == 0) spec.block_gates = number("--block-gates=");
        else if (a.rfind("--block-inputs=", 0) == 0) spec.block_inputs = number("--block-inputs=");
        else if (a.rfind("--block-outputs=", 0) == 0) spec.block_outputs = number("--block-outputs=");
        else if (a.rfind("--block-depth=", 0) == 0) spec.block_depth = number("--block-depth=");
        else if (a.rfind("--block-dffs=", 0) == 0) spec.block_dffs = number("--block-dffs=");
        else if (a.rfind("--width=", 0) == 0) spec.width = number("--width=");
        else if (a.rfind("--seed=", 0) == 0) spec.seed = number("--seed=");
        else if (a == "--random-wiring") spec.uniform_wiring = false;
        else {
          std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
          return usage(stderr);
        }
      } catch (const std::exception&) {
        std::fprintf(stderr, "numeric option could not be parsed: '%s'\n", a.c_str());
        return 2;
      }
    }
    if (out_path.empty()) {
      std::fprintf(stderr, "gen needs --out=FILE\n");
      return usage(stderr);
    }
    try {
      const spsta::netlist::HierDesign design = spsta::netlist::generate_hier_circuit(spec);
      {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
          return 1;
        }
        spsta::netlist::write_hier_bench(design, out);
      }
      std::fprintf(stderr, "wrote %s: %zu blocks, %zu instances, %zu expanded gates\n",
                   out_path.c_str(), design.blocks().size(), design.instances().size(),
                   design.expanded_gate_count());
      if (!flat_path.empty()) {
        std::ofstream out(flat_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", flat_path.c_str());
          return 1;
        }
        spsta::netlist::write_bench(design.flatten(), out);
        std::fprintf(stderr, "wrote %s (flattened)\n", flat_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gen failed: %s\n", e.what());
      return 1;
    }
    return finish(0);
  }

  if (mode != "run" && mode != "query") return usage(stderr);
  if (args.size() < 2) return usage(stderr);
  const std::string target = args[1];

  std::string engine = "spsta_moment", node, threads, runs, seed, density;
  bool path_query = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&](const char* prefix) -> std::string {
      return a.substr(std::string(prefix).size());
    };
    if (a.rfind("--engine=", 0) == 0) {
      engine = value("--engine=");
      // Client-side validation against the unified API's engine registry,
      // so a typo fails before any design is loaded.
      if (!spsta::parse_engine(engine)) {
        std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
        return usage(stderr);
      }
    }
    else if (a.rfind("--node=", 0) == 0) node = value("--node=");
    else if (a.rfind("--density=", 0) == 0) density = value("--density=");
    else if (a.rfind("--threads=", 0) == 0) threads = value("--threads=");
    else if (a.rfind("--runs=", 0) == 0) runs = value("--runs=");
    else if (a.rfind("--seed=", 0) == 0) seed = value("--seed=");
    else if (a == "--path") path_query = true;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return usage(stderr);
    }
  }

  // The command line a daemon client would send after the load.
  const auto build_command = [&](const std::string& session) {
    Json req = Json::object();
    req.set("id", Json(mode));
    req.set("cmd", Json(mode == "run" ? "analyze" : "query"));
    req.set("session", Json(session));
    req.set("engine", Json(engine));
    if (mode == "query") {
      if (path_query || node.empty()) {
        req.set("path", node.empty() ? Json(true) : Json(node));
      } else {
        req.set("node", Json(node));
      }
      if (!density.empty()) req.set("density", Json(density));
    }
    Json params = Json::object();
    if (!threads.empty()) params.set("threads", Json(std::stod(threads)));
    if (!runs.empty()) params.set("runs", Json(std::stod(runs)));
    if (!seed.empty()) params.set("seed", Json(std::stod(seed)));
    if (!params.as_object().empty()) req.set("params", params);
    return req;
  };

  // Two-phase: load first (to learn the session key), then the command —
  // the same two lines a daemon client would pipe in. With --connect the
  // identical lines go over the socket instead of in-process.
  if (!connect_spec.empty()) {
    const auto loaded = socket_request(client, load_request(target).dump(),
                                       max_retries, retry_stats);
    if (!loaded) {
      std::fprintf(stderr, "connection lost: %s\n", client.error().c_str());
      return finish(1);
    }
    print_reply(*loaded);
    const std::string session = session_of_line(loaded->line);
    if (session.empty()) return finish(1);
    std::string command;
    try {
      command = build_command(session).dump();
    } catch (const std::exception&) {
      std::fprintf(stderr, "numeric option could not be parsed\n");
      return finish(2);
    }
    const auto reply = socket_request(client, command, max_retries, retry_stats);
    if (!reply) {
      std::fprintf(stderr, "connection lost: %s\n", client.error().c_str());
      return finish(1);
    }
    print_reply(*reply);
    client.finish_sending();
    const bool ok = reply->line.find("\"ok\":true") != std::string::npos;
    return finish(ok ? 0 : 1);
  }

  AnalysisService service;
  BatchScheduler scheduler(service, 0);
  const Response loaded = scheduler.run_one(load_request(target).dump());
  std::printf("%s\n", loaded.to_line().c_str());
  const std::string session = session_of(loaded);
  if (session.empty()) return finish(1);

  Json req;
  try {
    req = build_command(session);
  } catch (const std::exception&) {
    std::fprintf(stderr, "numeric option could not be parsed\n");
    return finish(2);
  }
  const Response response = scheduler.run_one(req.dump());
  std::printf("%s\n", response.to_line().c_str());
  return finish(response.ok ? 0 : 1);
}
