// spsta — one-shot CLI client for the analysis service.
//
// Drives exactly the same JSON-lines protocol as spsta_serviced, but
// in-process: it builds the request lines a daemon client would send,
// routes them through the batch scheduler, and prints the response lines.
// The service sits on the unified Analyzer API (spsta_api.hpp): each
// loaded design keeps one Analyzer — and with it one compiled analysis
// plan — warm across the requests of an invocation.
//
//   spsta run s298 --engine=ssta                 load + analyze a builtin
//   spsta run netlist.bench --engine=mc --runs=2000 --seed=7
//   spsta query s27 --node=G17                   per-node statistics
//   spsta script session.jsonl                   raw protocol lines ( - = stdin)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/hier_bench_io.hpp"
#include "obs/metrics.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/service.hpp"
#include "spsta_api.hpp"

namespace {

using spsta::service::AnalysisService;
using spsta::service::BatchScheduler;
using spsta::service::Json;
using spsta::service::Response;

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "spsta — one-shot client for the spsta analysis service\n"
      "  spsta run <circuit|file> [--engine=E] [--threads=N] [--runs=N] [--seed=N]\n"
      "  spsta query <circuit|file> (--node=NAME | --path) [--engine=E]\n"
      "  spsta script <file.jsonl | ->\n"
      "  spsta gen --out=FILE [--gates=N] [--blocks=N] [--block-gates=N]\n"
      "            [--block-inputs=N] [--block-outputs=N] [--block-depth=N]\n"
      "            [--block-dffs=N] [--width=N] [--seed=N] [--random-wiring]\n"
      "            [--flat-out=FILE]   emit a hierarchical .hbench design\n"
      "                               (and optionally its flattened .bench)\n"
      "  --metrics       dump the metrics registry (stage timers, counters)\n"
      "                  to stderr after the command finishes\n"
      "Engines: spsta_moment (default) spsta_numeric canonical ssta mc.\n"
      "<circuit> is a builtin name (s27, s208..s1238); <file> is\n"
      ".bench/.v/.hbench (hierarchical designs analyze by block-model\n"
      "composition, not flattening).\n");
  return to == stdout ? 0 : 2;
}

/// True for the builtin circuit names the service accepts.
bool is_builtin_circuit(const std::string& name) {
  return !name.empty() && name[0] == 's' &&
         name.find('.') == std::string::npos &&
         name.find('/') == std::string::npos;
}

Json load_request(const std::string& target) {
  Json req = Json::object();
  req.set("id", Json("load"));
  req.set("cmd", Json("load"));
  if (is_builtin_circuit(target)) {
    req.set("circuit", Json(target));
  } else {
    req.set("path", Json(target));
  }
  return req;
}

/// The session key from a load response ("" on failure).
std::string session_of(const Response& response) {
  if (!response.ok) return "";
  const Json* key = response.body.find("session");
  return key != nullptr && key->is_string() ? key->as_string() : "";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool dump_metrics = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--metrics") {
      dump_metrics = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  // Dumps the registry (stage timers, cache counters, spans) once the
  // command has run; stdout stays pure protocol lines.
  const auto finish = [&](int code) {
    if (dump_metrics) {
      std::fprintf(stderr, "%s\n", spsta::service::metrics_json().dump().c_str());
    }
    return code;
  };
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    return usage(args.empty() ? stderr : stdout);
  }
  const std::string mode = args[0];

  if (mode == "script") {
    if (args.size() != 2) return usage(stderr);
    std::ifstream file;
    std::istream* in = &std::cin;
    if (args[1] != "-") {
      file.open(args[1]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", args[1].c_str());
        return 1;
      }
      in = &file;
    }
    AnalysisService service;
    spsta::service::serve(*in, std::cout, service, {});
    return finish(0);
  }

  if (mode == "gen") {
    // Deterministic hierarchical design generation: same flags, same bytes,
    // at any thread count — the size sweep's input producer.
    spsta::netlist::HierGeneratorSpec spec;
    std::string out_path, flat_path;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& a = args[i];
      const auto number = [&](const char* prefix) -> std::size_t {
        return static_cast<std::size_t>(std::stoull(a.substr(std::string(prefix).size())));
      };
      try {
        if (a.rfind("--out=", 0) == 0) out_path = a.substr(6);
        else if (a.rfind("--flat-out=", 0) == 0) flat_path = a.substr(11);
        else if (a.rfind("--gates=", 0) == 0) spec.total_gates = number("--gates=");
        else if (a.rfind("--blocks=", 0) == 0) spec.unique_blocks = number("--blocks=");
        else if (a.rfind("--block-gates=", 0) == 0) spec.block_gates = number("--block-gates=");
        else if (a.rfind("--block-inputs=", 0) == 0) spec.block_inputs = number("--block-inputs=");
        else if (a.rfind("--block-outputs=", 0) == 0) spec.block_outputs = number("--block-outputs=");
        else if (a.rfind("--block-depth=", 0) == 0) spec.block_depth = number("--block-depth=");
        else if (a.rfind("--block-dffs=", 0) == 0) spec.block_dffs = number("--block-dffs=");
        else if (a.rfind("--width=", 0) == 0) spec.width = number("--width=");
        else if (a.rfind("--seed=", 0) == 0) spec.seed = number("--seed=");
        else if (a == "--random-wiring") spec.uniform_wiring = false;
        else {
          std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
          return usage(stderr);
        }
      } catch (const std::exception&) {
        std::fprintf(stderr, "numeric option could not be parsed: '%s'\n", a.c_str());
        return 2;
      }
    }
    if (out_path.empty()) {
      std::fprintf(stderr, "gen needs --out=FILE\n");
      return usage(stderr);
    }
    try {
      const spsta::netlist::HierDesign design = spsta::netlist::generate_hier_circuit(spec);
      {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
          return 1;
        }
        spsta::netlist::write_hier_bench(design, out);
      }
      std::fprintf(stderr, "wrote %s: %zu blocks, %zu instances, %zu expanded gates\n",
                   out_path.c_str(), design.blocks().size(), design.instances().size(),
                   design.expanded_gate_count());
      if (!flat_path.empty()) {
        std::ofstream out(flat_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", flat_path.c_str());
          return 1;
        }
        spsta::netlist::write_bench(design.flatten(), out);
        std::fprintf(stderr, "wrote %s (flattened)\n", flat_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gen failed: %s\n", e.what());
      return 1;
    }
    return finish(0);
  }

  if (mode != "run" && mode != "query") return usage(stderr);
  if (args.size() < 2) return usage(stderr);
  const std::string target = args[1];

  std::string engine = "spsta_moment", node, threads, runs, seed;
  bool path_query = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&](const char* prefix) -> std::string {
      return a.substr(std::string(prefix).size());
    };
    if (a.rfind("--engine=", 0) == 0) {
      engine = value("--engine=");
      // Client-side validation against the unified API's engine registry,
      // so a typo fails before any design is loaded.
      if (!spsta::parse_engine(engine)) {
        std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
        return usage(stderr);
      }
    }
    else if (a.rfind("--node=", 0) == 0) node = value("--node=");
    else if (a.rfind("--threads=", 0) == 0) threads = value("--threads=");
    else if (a.rfind("--runs=", 0) == 0) runs = value("--runs=");
    else if (a.rfind("--seed=", 0) == 0) seed = value("--seed=");
    else if (a == "--path") path_query = true;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return usage(stderr);
    }
  }

  // Two-phase: load first (to learn the session key), then the command —
  // the same two lines a daemon client would pipe in.
  AnalysisService service;
  BatchScheduler scheduler(service, 0);
  const Response loaded = scheduler.run_one(load_request(target).dump());
  std::printf("%s\n", loaded.to_line().c_str());
  const std::string session = session_of(loaded);
  if (session.empty()) return finish(1);

  Json req = Json::object();
  req.set("id", Json(mode));
  req.set("cmd", Json(mode == "run" ? "analyze" : "query"));
  req.set("session", Json(session));
  req.set("engine", Json(engine));
  if (mode == "query") {
    if (path_query || node.empty()) {
      req.set("path", node.empty() ? Json(true) : Json(node));
    } else {
      req.set("node", Json(node));
    }
  }
  Json params = Json::object();
  try {
    if (!threads.empty()) params.set("threads", Json(std::stod(threads)));
    if (!runs.empty()) params.set("runs", Json(std::stod(runs)));
    if (!seed.empty()) params.set("seed", Json(std::stod(seed)));
  } catch (const std::exception&) {
    std::fprintf(stderr, "numeric option could not be parsed\n");
    return 2;
  }
  if (!params.as_object().empty()) req.set("params", params);

  const Response response = scheduler.run_one(req.dump());
  std::printf("%s\n", response.to_line().c_str());
  return finish(response.ok ? 0 : 1);
}
