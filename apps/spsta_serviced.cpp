// spsta_serviced — the long-lived analysis daemon.
//
// Speaks the JSON-lines protocol over stdin/stdout: one request per line,
// one response line per request, in order. Each loaded design is parsed
// once and held in a unified Analyzer (spsta_api.hpp) whose compiled
// analysis plan stays warm across requests; repeated analyses are served
// from the result cache and ECO edits ride the incremental engine.
// Malformed input yields structured error responses — nothing a client
// sends kills the daemon.
//
//   $ spsta_serviced [--threads=N] [--no-batch]
//   {"id":1,"cmd":"load","circuit":"s27"}
//   {"id":1,"ok":true,"result":{"session":"...","name":"s27",...}}
//   {"id":2,"cmd":"analyze","session":"...","engine":"spsta_moment"}
//   ...
//   {"id":9,"cmd":"shutdown"}

#include <cstdio>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "service/daemon.hpp"
#include "service/transport/server.hpp"

int main(int argc, char** argv) {
  spsta::service::ServeOptions options;
  spsta::service::StoreBudget budget;
  bool dump_metrics = false;
  std::string listen_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      listen_spec = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--queue-cap=", 0) == 0) {
      options.queue_capacity = std::stoul(arg.substr(12));
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      budget.max_sessions = std::stoul(arg.substr(15));
    } else if (arg.rfind("--max-store-mb=", 0) == 0) {
      budget.max_bytes = std::stoul(arg.substr(15)) << 20;
    } else if (arg == "--no-batch") {
      options.greedy_batch = false;
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--no-metrics") {
      spsta::obs::set_enabled(false);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "spsta_serviced — JSON-lines analysis daemon over stdin/stdout\n"
          "  --listen=HOST:PORT  serve TCP connections instead of stdio; each\n"
          "                      connection speaks JSON lines or, after the\n"
          "                      \\0SPF1 magic, length-prefixed binary frames;\n"
          "                      port 0 picks one (printed to stderr)\n"
          "  --threads=N       scheduler pool size (default: all hardware threads)\n"
          "  --workers=N       serve through N sharded workers with affinity\n"
          "                    routing + admission control (default: batch mode)\n"
          "  --queue-cap=N     per-worker bounded queue (default 256); a full\n"
          "                    queue sheds requests with an 'overloaded' error\n"
          "  --max-sessions=N  LRU-evict loaded designs beyond N sessions\n"
          "  --max-store-mb=N  LRU-evict beyond ~N MiB of resident sessions\n"
          "  --no-batch        one request at a time (no greedy batch draining)\n"
          "  --trace=FILE      append one JSON trace line per request to FILE\n"
          "  --metrics         dump the metrics registry to stderr at exit\n"
          "  --no-metrics      disable metric recording (zero-overhead serving)\n"
          "Protocol: see DESIGN.md §9; worker pool: §13. Commands: ping load\n"
          "analyze query set_delay set_source stats unload shutdown\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Unbuffered interplay with pipes: std::cin unties from cout inside
  // serve() via explicit flushes; keep iostreams fast.
  std::ios::sync_with_stdio(false);

  spsta::service::AnalysisService service;
  service.set_store_budget(budget);

  if (!listen_spec.empty()) {
    const auto spec = spsta::service::transport::parse_host_port(listen_spec);
    if (!spec) {
      std::fprintf(stderr, "bad --listen spec '%s' (want HOST:PORT)\n",
                   listen_spec.c_str());
      return 2;
    }
    spsta::service::transport::SocketServerOptions socket_options;
    socket_options.host = spec->host;
    socket_options.port = spec->port;
    socket_options.workers = options.workers;
    socket_options.queue_capacity = options.queue_capacity;
    try {
      spsta::service::transport::SocketServer server(service, socket_options);
      const std::uint16_t port = server.listen();
      std::fprintf(stderr, "spsta_serviced: listening on %s:%u\n",
                   spec->host.c_str(), static_cast<unsigned>(port));
      const spsta::service::transport::SocketServerReport report = server.serve();
      std::fprintf(stderr,
                   "spsta_serviced: served %llu requests over %llu connections "
                   "(%llu binary-frame) (%s)\n",
                   static_cast<unsigned long long>(report.requests),
                   static_cast<unsigned long long>(report.connections),
                   static_cast<unsigned long long>(report.frame_connections),
                   report.shutdown ? "shutdown" : "stopped");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spsta_serviced: %s\n", e.what());
      return 1;
    }
    if (dump_metrics) {
      std::fprintf(stderr, "%s\n", spsta::service::metrics_json().dump().c_str());
    }
    return 0;
  }

  const spsta::service::ServeReport report =
      spsta::service::serve(std::cin, std::cout, service, options);
  std::fprintf(stderr, "spsta_serviced: served %llu requests in %llu batches (%s)\n",
               static_cast<unsigned long long>(report.requests),
               static_cast<unsigned long long>(report.batches),
               report.shutdown ? "shutdown" : "eof");
  if (dump_metrics) {
    std::fprintf(stderr, "%s\n", spsta::service::metrics_json().dump().c_str());
  }
  return 0;
}
