// Ablation bench: the signal-probability accuracy/efficiency tradeoff the
// paper describes in Sec. 3.5 — independent propagation (Eq. 5) vs
// first-order correlation truncation (Eq. 14-17) vs exact BDD evaluation,
// measured against the exact engine on the benchmark suite.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "netlist/graph.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "sigprob/correlated.hpp"
#include "sigprob/exact_bdd.hpp"
#include "sigprob/signal_prob.hpp"

namespace {
double seconds(auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main() {
  using namespace spsta;

  std::printf("=== Ablation: signal probability engines (P=0.5 sources) ===\n\n");
  report::Table table({"test", "nets", "reconv", "indep err", "corr err", "indep (s)",
                       "corr (s)", "exact (s)", "BDD nodes"});

  const std::string_view circuits[] = {"s27",  "s208", "s298", "s344",
                                       "s382", "s386", "s526"};
  for (std::string_view name : circuits) {
    const netlist::Netlist n = netlist::make_paper_circuit(name);
    const std::vector<double> src{0.5};

    std::vector<double> indep;
    const double t_indep =
        seconds([&] { indep = sigprob::propagate_signal_probabilities(n, src); });

    sigprob::CorrelatedSignalProbabilities corr(0);
    const double t_corr =
        seconds([&] { corr = sigprob::propagate_correlated(n, src); });

    sigprob::ExactSignalProbabilities exact;
    const double t_exact =
        seconds([&] { exact = sigprob::exact_signal_probabilities(n, src); });

    double err_indep = 0.0, err_corr = 0.0;
    std::size_t count = 0;
    for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
      if (!exact.probability[id]) continue;
      err_indep += std::abs(indep[id] - *exact.probability[id]);
      err_corr += std::abs(corr.probability(id) - *exact.probability[id]);
      ++count;
    }
    err_indep /= static_cast<double>(count);
    err_corr /= static_cast<double>(count);

    table.add_row({std::string(name), std::to_string(n.node_count()),
                   std::to_string(netlist::reconvergent_nodes(n).size()),
                   report::Table::num(err_indep, 4), report::Table::num(err_corr, 4),
                   report::Table::num(t_indep, 4), report::Table::num(t_corr, 4),
                   report::Table::num(t_exact, 4), std::to_string(exact.bdd_nodes)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("errors are mean |P - P_exact| over all nets. The correlation-\n"
              "truncated engine buys accuracy on reconvergent logic at O(n^2) cost;\n"
              "the exact engine pays for BDDs (node column) — the paper's Sec. 3.5\n"
              "accuracy/efficiency spectrum.\n");
  return 0;
}
