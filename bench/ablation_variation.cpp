// Ablation bench: die-to-die vs independent delay variation. Sweeps the
// global-variance fraction in the canonical SSTA model and compares
// endpoint sigma and endpoint-pair correlation against a Monte Carlo that
// actually shares a per-run global delay factor — the corner-vs-statistics
// territory of the paper's introduction (categories 1-3).

#include <cmath>
#include <cstdio>

#include "mc/logic_sim.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "ssta/canonical_ssta.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

int main() {
  using namespace spsta;

  const netlist::Netlist n = netlist::make_paper_circuit("s386");
  const double kSigma = 0.1;
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, kSigma);
  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};  // always-rising so every run measures
  sc.rise_arrival = {0.0, 0.25};

  // Pick the two endpoints that transition most often (under all-rising
  // inputs, glitch filtering turns many deep endpoints into constants).
  const netlist::Levelization pre_levels = netlist::levelize(n);
  const auto pre_sources = n.timing_sources();
  std::vector<std::size_t> transitions(n.node_count(), 0);
  {
    stats::Xoshiro256 rng(3);
    std::vector<mc::SimValue> sv(pre_sources.size());
    std::vector<double> gd(n.node_count(), 0.0);
    for (netlist::NodeId id = 0; id < n.node_count(); ++id) gd[id] = d.delay(id).mean;
    for (int run = 0; run < 400; ++run) {
      for (auto& s : sv) {
        s.value = netlist::FourValue::Rise;
        s.time = rng.normal(0.0, 0.5);
      }
      const auto value = mc::simulate_once(n, pre_levels, sv, gd);
      for (netlist::NodeId ep : n.timing_endpoints()) {
        if (value[ep].value == netlist::FourValue::Rise ||
            value[ep].value == netlist::FourValue::Fall) {
          ++transitions[ep];
        }
      }
    }
  }
  netlist::NodeId e0 = n.timing_endpoints().front(), e1 = e0;
  for (netlist::NodeId ep : n.timing_endpoints()) {
    if (transitions[ep] > transitions[e0]) {
      e1 = e0;
      e0 = ep;
    } else if (ep != e0 && transitions[ep] > transitions[e1]) {
      e1 = ep;
    }
  }

  // Which direction does e0 settle in? Use the matching canonical lane.
  bool e0_rising = true;
  {
    stats::Xoshiro256 rng(4);
    std::vector<mc::SimValue> sv(pre_sources.size());
    std::vector<double> gd(n.node_count(), 0.0);
    for (netlist::NodeId id = 0; id < n.node_count(); ++id) gd[id] = d.delay(id).mean;
    std::size_t rises = 0, falls = 0;
    for (int run = 0; run < 200; ++run) {
      for (auto& s : sv) {
        s.value = netlist::FourValue::Rise;
        s.time = rng.normal(0.0, 0.5);
      }
      const auto value = mc::simulate_once(n, pre_levels, sv, gd);
      if (value[e0].value == netlist::FourValue::Rise) ++rises;
      if (value[e0].value == netlist::FourValue::Fall) ++falls;
    }
    e0_rising = rises >= falls;
  }

  std::printf("=== Ablation: global (D2D) vs independent delay variation ===\n");
  std::printf("circuit %s, delay N(1.0, %.2f^2), endpoints %s / %s\n\n",
              n.name().c_str(), kSigma, n.node(e0).name.c_str(),
              n.node(e1).name.c_str());

  report::Table table({"global frac", "canon sig@e0", "MC sig@e0", "canon corr",
                       "MC corr"});

  const netlist::Levelization levels = netlist::levelize(n);
  const auto sources = n.timing_sources();

  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ssta::VariationModel vm;
    vm.global_fraction = frac;
    const ssta::CanonicalSstaResult canon =
        run_canonical_ssta(n, d, std::vector{sc}, vm);

    // Hand-rolled MC with the matching variance split: per run one global
    // delta (variance frac*sigma^2) plus per-gate residuals.
    stats::Xoshiro256 rng(7);
    stats::RunningMoments m0;
    stats::RunningCovariance cov01;
    const double g_sd = kSigma * std::sqrt(frac);
    const double r_sd = kSigma * std::sqrt(1.0 - frac);
    std::vector<mc::SimValue> src_values(sources.size());
    std::vector<double> gate_delays(n.node_count(), 0.0);
    for (int run = 0; run < 8000; ++run) {
      for (auto& sv : src_values) {
        sv.value = netlist::FourValue::Rise;
        sv.time = rng.normal(0.0, 0.5);
      }
      const double global = rng.normal(0.0, g_sd);
      for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
        gate_delays[id] =
            d.delay(id).mean > 0.0 ? 1.0 + global + rng.normal(0.0, r_sd) : 0.0;
      }
      const auto value = mc::simulate_once(n, levels, src_values, gate_delays);
      const auto switched = [](const mc::SimValue& v) {
        return v.value == netlist::FourValue::Rise ||
               v.value == netlist::FourValue::Fall;
      };
      if (switched(value[e0])) m0.add(value[e0].time);
      if (switched(value[e0]) && switched(value[e1])) {
        cov01.add(value[e0].time, value[e1].time);
      }
    }

    const variational::CanonicalForm& lane =
        e0_rising ? canon.arrival[e0].rise : canon.arrival[e0].fall;
    table.add_row({report::Table::num(frac, 2),
                   report::Table::num(std::sqrt(lane.variance()), 3),
                   report::Table::num(m0.stddev(), 3),
                   report::Table::num(canon.rise_correlation(e0, e1), 3),
                   report::Table::num(cov01.correlation(), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("As the die-to-die share grows, endpoint sigma grows (delays add\n"
              "linearly instead of in quadrature) and endpoint correlation rises in\n"
              "both the canonical model and the shared-factor MC — the trend plain\n"
              "min/max SSTA cannot represent at all. Absolute offsets remain: the\n"
              "canonical engine is transition-oblivious (no glitch filtering, so it\n"
              "overestimates sigma here), and its Clark tightness concentrates each\n"
              "MAX's sensitivity into the dominant input, underestimating the\n"
              "structural correlation the MC shows even at zero global share.\n");
  return 0;
}
