// Figure 2: the two basic SSTA operations, SUM and MAX (paper Sec. 2.1).
// Prints the analytic Clark results, the exact numeric (piecewise) results
// and Monte Carlo references across a sweep of operand geometries, showing
// where moment matching is exact (independent operands) and how the MAX
// departs from normality.

#include <cstdio>

#include "report/table.hpp"
#include "stats/gaussian.hpp"
#include "stats/piecewise.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

int main() {
  using namespace spsta;
  using stats::Gaussian;

  std::printf("=== Figure 2: SUM and MAX of two Gaussian arrival times ===\n\n");

  struct Case {
    double m1, s1, m2, s2;
  };
  const Case cases[] = {
      {0.0, 1.0, 0.0, 1.0}, {0.0, 1.0, 1.0, 1.0}, {0.0, 1.0, 0.0, 2.0},
      {0.0, 0.5, 2.0, 0.5}, {1.0, 2.0, 1.0, 0.2},
  };

  report::Table table({"mu1", "sig1", "mu2", "sig2", "SUM mu", "SUM sig", "MAX mu(Clark)",
                       "MAX sig(Clark)", "MAX mu(MC)", "MAX sig(MC)", "MAX skew(MC)"});
  for (const Case& c : cases) {
    const Gaussian a{c.m1, c.s1 * c.s1};
    const Gaussian b{c.m2, c.s2 * c.s2};
    const Gaussian s = stats::sum(a, b);
    const stats::ClarkResult mx = stats::clark_max(a, b);

    stats::Xoshiro256 rng(7);
    stats::RunningMoments mom;
    for (int i = 0; i < 200000; ++i) {
      mom.add(std::max(rng.normal(c.m1, c.s1), rng.normal(c.m2, c.s2)));
    }
    table.add_row({report::Table::num(c.m1), report::Table::num(c.s1),
                   report::Table::num(c.m2), report::Table::num(c.s2),
                   report::Table::num(s.mean), report::Table::num(s.stddev()),
                   report::Table::num(mx.moments.mean),
                   report::Table::num(mx.moments.stddev()),
                   report::Table::num(mom.mean()), report::Table::num(mom.stddev()),
                   report::Table::num(mom.skewness())});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The density curves behind the figure (CSV series, numeric engine).
  std::printf("series: t, pdf_sum, pdf_max  (operands N(0,1) and N(0,4))\n");
  const auto pa = stats::PiecewiseDensity::from_gaussian_auto({0.0, 1.0}, 8.0, 801);
  const auto pb = stats::PiecewiseDensity::from_gaussian_auto({0.0, 4.0}, 8.0, 801);
  const auto psum = stats::PiecewiseDensity::convolve(pa, pb);
  const auto pmax = stats::PiecewiseDensity::max_independent(pa, pb);
  for (double t = -6.0; t <= 6.0001; t += 0.5) {
    std::printf("%.2f,%.5f,%.5f\n", t, psum.value_at(t), pmax.value_at(t));
  }
  std::printf("\nNote the MAX density's positive skew (last column above): moment-\n"
              "matched SSTA discards it; the numeric engine retains the shape.\n");
  return 0;
}
