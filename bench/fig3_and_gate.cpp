// Figure 3: signal probability and signal toggling rate computation for an
// AND gate (paper Sec. 2.2). Reproduces the worked example P(y) =
// P(x1)P(x2) and rho_y = sum P(dy/dx_i) rho_i, sweeping input statistics
// and cross-checking against Monte Carlo.

#include <cstdio>

#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"
#include "power/transition_density.hpp"
#include "report/table.hpp"
#include "sigprob/signal_prob.hpp"

int main() {
  using namespace spsta;
  using netlist::GateType;

  std::printf("=== Figure 3: signal probability & toggling rate of an AND gate ===\n\n");

  report::Table table({"P(x1)", "P(x2)", "rho1", "rho2", "P(y)=P1*P2", "rho(y)=Eq.6",
                       "P(y) MC", "rho(y) MC raw"});

  for (const auto& [p1, p2, r1, r2] :
       {std::tuple{0.5, 0.5, 0.5, 0.5}, std::tuple{0.5, 0.5, 1.0, 1.0},
        std::tuple{0.9, 0.9, 0.2, 0.2}, std::tuple{0.2, 0.8, 0.1, 0.4},
        std::tuple{0.3, 0.3, 0.6, 0.1}}) {
    netlist::Netlist n;
    const auto a = n.add_input("a");
    const auto b = n.add_input("b");
    const auto y = n.add_gate(GateType::And, "y", {a, b});

    const std::vector<double> probs{p1, p2};
    const std::vector<double> dens{r1, r2};
    const double p_closed =
        sigprob::gate_output_probability(GateType::And, probs);
    const power::TransitionDensities td =
        power::propagate_transition_density(n, probs, dens);

    // Monte Carlo: per-source four-value distribution consistent with the
    // (probability, toggle-rate) pair: pr = pf = rho/2, p1 = P - rho/2.
    const auto make_stats = [](double p, double rho) {
      netlist::SourceStats st;
      const double half = 0.5 * rho;
      st.probs = netlist::FourValueProbs{1.0 - p - half, p - half, half, half}
                     .normalized();
      return st;
    };
    mc::MonteCarloConfig cfg;
    cfg.runs = 50000;
    cfg.seed = 12;
    const std::vector<netlist::SourceStats> sc{make_stats(p1, r1), make_stats(p2, r2)};
    const auto mcr = mc::run_monte_carlo(n, netlist::DelayModel::unit(n), sc, cfg);

    table.add_row({report::Table::num(p1), report::Table::num(p2),
                   report::Table::num(r1), report::Table::num(r2),
                   report::Table::num(p_closed, 3), report::Table::num(td.density[y], 3),
                   report::Table::num(mcr.node[y].probs().final_one(), 3),
                   report::Table::num(mcr.node[y].raw_edge_rate(), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("P(y) column reproduces the paper's P(y) = P(x1)P(x2); the rho column\n"
              "is Eq. 6 with Boolean-difference weights P(x_other).\n");
  return 0;
}
