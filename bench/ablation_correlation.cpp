// Ablation bench: what signal correlation is worth. The paper's
// observation 5 attributes SPSTA's residual error to ignored correlations;
// this bench quantifies it by comparing the independence-based moment
// engine against the canonical-form engine (shared source-arrival
// parameters) across the suite, with Monte Carlo as reference.

#include <cmath>
#include <cstdio>

#include "core/spsta.hpp"
#include "core/spsta_canonical.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/graph.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"

int main() {
  using namespace spsta;

  std::printf("=== Ablation: correlation-blind vs canonical-form SPSTA ===\n");
  std::printf("(mean |sigma error| vs 20K MC over exercised endpoints, scenario I)\n\n");

  report::Table table({"test", "reconv nodes", "endpoints", "plain sig err",
                       "canonical sig err", "plain mu err", "canonical mu err"});

  for (std::string_view name : netlist::paper_circuit_names()) {
    const netlist::Netlist n = netlist::make_paper_circuit(name);
    const netlist::DelayModel d = netlist::DelayModel::unit(n);
    const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

    const core::SpstaResult plain = core::run_spsta_moment(n, d, sc);
    const core::SpstaCanonicalResult canon = core::run_spsta_canonical(n, d, sc);

    mc::MonteCarloConfig cfg;
    cfg.runs = 20000;
    cfg.seed = 11;
    const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, sc, cfg);

    double plain_sig = 0.0, canon_sig = 0.0, plain_mu = 0.0, canon_mu = 0.0;
    std::size_t count = 0;
    for (netlist::NodeId ep : n.timing_endpoints()) {
      for (const bool rising : {true, false}) {
        const auto& mom = rising ? mcr.node[ep].rise_time : mcr.node[ep].fall_time;
        if (mom.count() < 200) continue;
        const auto& pt = rising ? plain.node[ep].rise : plain.node[ep].fall;
        const auto& ct = rising ? canon.node[ep].rise : canon.node[ep].fall;
        plain_sig += std::abs(pt.arrival.stddev() - mom.stddev());
        canon_sig += std::abs(std::sqrt(ct.arrival.variance()) - mom.stddev());
        plain_mu += std::abs(pt.arrival.mean - mom.mean());
        canon_mu += std::abs(ct.arrival.mean() - mom.mean());
        ++count;
      }
    }
    if (count == 0) {
      table.add_row({std::string(name),
                     std::to_string(netlist::reconvergent_nodes(n).size()), "0", "-",
                     "-", "-", "-"});
      continue;
    }
    const double k = static_cast<double>(count);
    table.add_row({std::string(name),
                   std::to_string(netlist::reconvergent_nodes(n).size()),
                   std::to_string(count), report::Table::num(plain_sig / k, 3),
                   report::Table::num(canon_sig / k, 3),
                   report::Table::num(plain_mu / k, 3),
                   report::Table::num(canon_mu / k, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Canonical forms carry source-arrival correlation through the MAX,\n"
              "removing the variance the independence assumption double-counts on\n"
              "reconvergent paths; value-probability correlation (paper Sec. 3.5)\n"
              "remains as the residual.\n");
  return 0;
}
