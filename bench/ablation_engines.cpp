// Ablation bench: the SPSTA design choices DESIGN.md calls out.
//   (a) moment engine vs numeric engine accuracy against MC,
//   (b) numeric grid resolution sweep (accuracy/cost tradeoff),
//   (c) Monte Carlo sample-count convergence (how many runs the reference
//       itself needs),
//   (d) cost of the O(2^k) scenario enumeration vs gate fanin.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "ssta/ssta.hpp"

namespace {

using namespace spsta;

double seconds(auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

netlist::NodeId critical_endpoint(const netlist::Netlist& n,
                                  const ssta::SstaResult& s) {
  netlist::NodeId ep = n.timing_endpoints().front();
  for (netlist::NodeId cand : n.timing_endpoints()) {
    if (s.arrival[cand].rise.mean > s.arrival[ep].rise.mean) ep = cand;
  }
  return ep;
}

}  // namespace

int main() {
  const netlist::Netlist n = netlist::make_paper_circuit("s344");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  const ssta::SstaResult ssta_result = ssta::run_ssta(n, d, sc);
  const netlist::NodeId ep = critical_endpoint(n, ssta_result);

  mc::MonteCarloConfig ref_cfg;
  ref_cfg.runs = 100000;
  ref_cfg.seed = 99;
  const mc::MonteCarloResult ref = mc::run_monte_carlo(n, d, sc, ref_cfg);
  const double mc_mu = ref.node[ep].rise_time.mean();
  const double mc_sig = ref.node[ep].rise_time.stddev();

  std::printf("=== Ablation (a): moment vs numeric engine (s344, endpoint %s) ===\n",
              n.node(ep).name.c_str());
  std::printf("reference (100K MC): mu %.3f, sigma %.3f\n\n", mc_mu, mc_sig);

  report::Table ab({"engine", "mu", "sigma", "|mu err|", "|sig err|", "runtime (s)"});
  core::SpstaResult moment;
  const double t_m = seconds([&] { moment = core::run_spsta_moment(n, d, sc); });
  ab.add_row({"moment", report::Table::num(moment.node[ep].rise.arrival.mean, 3),
              report::Table::num(moment.node[ep].rise.arrival.stddev(), 3),
              report::Table::num(std::abs(moment.node[ep].rise.arrival.mean - mc_mu), 3),
              report::Table::num(
                  std::abs(moment.node[ep].rise.arrival.stddev() - mc_sig), 3),
              report::Table::num(t_m, 4)});

  core::SpstaNumericResult numeric;
  const double t_n = seconds([&] { numeric = core::run_spsta_numeric(n, d, sc); });
  ab.add_row({"numeric", report::Table::num(numeric.node[ep].rise.mean(), 3),
              report::Table::num(numeric.node[ep].rise.stddev(), 3),
              report::Table::num(std::abs(numeric.node[ep].rise.mean() - mc_mu), 3),
              report::Table::num(std::abs(numeric.node[ep].rise.stddev() - mc_sig), 3),
              report::Table::num(t_n, 4)});
  std::printf("%s\n", ab.to_string().c_str());

  std::printf("=== Ablation (b): numeric grid resolution ===\n");
  report::Table gb({"grid dt", "points", "mass err @ep", "mu", "sigma", "runtime (s)"});
  for (double dt : {0.4, 0.2, 0.1, 0.05, 0.02}) {
    core::SpstaOptions opt;
    opt.grid_dt = dt;
    core::SpstaNumericResult r;
    const double t = seconds([&] { r = core::run_spsta_numeric(n, d, sc, opt); });
    gb.add_row({report::Table::num(dt, 2), std::to_string(r.grid.n),
                report::Table::num(
                    std::abs(r.node[ep].rise.mass() - moment.node[ep].rise.mass), 4),
                report::Table::num(r.node[ep].rise.mean(), 3),
                report::Table::num(r.node[ep].rise.stddev(), 3),
                report::Table::num(t, 4)});
  }
  std::printf("%s\n", gb.to_string().c_str());

  std::printf("=== Ablation (c): Monte Carlo convergence ===\n");
  report::Table cb({"runs", "mu", "sigma", "P(rise)", "runtime (s)"});
  for (std::uint64_t runs : {100u, 1000u, 10000u, 100000u}) {
    mc::MonteCarloConfig cfg;
    cfg.runs = runs;
    cfg.seed = 7;
    mc::MonteCarloResult r;
    const double t = seconds([&] { r = mc::run_monte_carlo(n, d, sc, cfg); });
    cb.add_row({std::to_string(runs), report::Table::num(r.node[ep].rise_time.mean(), 3),
                report::Table::num(r.node[ep].rise_time.stddev(), 3),
                report::Table::num(r.node[ep].rise_probability(), 3),
                report::Table::num(t, 4)});
  }
  std::printf("%s\n", cb.to_string().c_str());

  std::printf("=== Ablation (d): scenario enumeration cost vs max gate fanin ===\n");
  report::Table fb({"max fanin", "gates", "SPSTA runtime (s)"});
  for (std::size_t fanin : {2u, 3u, 4u, 6u, 8u}) {
    netlist::GeneratorSpec spec;
    spec.name = "fanin" + std::to_string(fanin);
    spec.num_inputs = 12;
    spec.num_outputs = 4;
    spec.num_gates = 300;
    spec.target_depth = 8;
    spec.max_fanin = fanin;
    spec.seed = 1000 + fanin;
    const netlist::Netlist g = netlist::generate_circuit(spec);
    const netlist::DelayModel gd = netlist::DelayModel::unit(g);
    const double t =
        seconds([&] { (void)core::run_spsta_moment(g, gd, sc); });
    fb.add_row({std::to_string(fanin), std::to_string(g.gate_count()),
                report::Table::num(t, 4)});
  }
  std::printf("%s\n", fb.to_string().c_str());
  std::printf("The O(4^k) scenario enumeration dominates at wide fanins — the\n"
              "complexity the paper quotes as O(2^k) per gate (subset form).\n");
  return 0;
}
