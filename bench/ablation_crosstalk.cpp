// Ablation bench: the paper's motivating crosstalk argument, quantified.
// "The probability for two signals to arrive at about the same time to
// activate the crosstalk coupling effect cannot be accurately estimated in
// SSTA, it can only be assumed, e.g., that it always happens in worst case
// analysis" (Sec. 1). We compute the victim delay push three ways:
//   worst-case (always aligned, always switching)  — the SSTA assumption,
//   statistical with SSTA-style inputs (switching probability forced to 1),
//   statistical with SPSTA's four-value probabilities and t.o.p.s,
// against a Monte Carlo that samples alignment and switching jointly.

#include <cmath>
#include <cstdio>

#include "core/spsta.hpp"
#include "interconnect/crosstalk.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

int main() {
  using namespace spsta;

  std::printf("=== Ablation: crosstalk aggressor alignment (paper Sec. 1) ===\n\n");

  // Victim and aggressor nets driven by internal nodes of a benchmark:
  // take two mid-depth nodes of s344 under scenario I.
  const netlist::Netlist n = netlist::make_paper_circuit("s344");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  core::SpstaOptions opt;
  opt.grid_dt = 0.02;
  const core::SpstaNumericResult spsta = core::run_spsta_numeric(n, d, sc, opt);

  // Pick the two exercised endpoints with the largest transition masses.
  netlist::NodeId victim = netlist::kInvalidNode, aggressor = netlist::kInvalidNode;
  double best1 = -1.0, best2 = -1.0;
  for (netlist::NodeId ep : n.timing_endpoints()) {
    const double mass = spsta.node[ep].probs.toggle_probability();
    if (mass > best1) {
      best2 = best1;
      aggressor = victim;
      best1 = mass;
      victim = ep;
    } else if (mass > best2) {
      best2 = mass;
      aggressor = ep;
    }
  }
  std::printf("victim %s (P_switch %.2f), aggressor %s (P_switch %.2f)\n\n",
              n.node(victim).name.c_str(), spsta.node[victim].probs.toggle_probability(),
              n.node(aggressor).name.c_str(),
              spsta.node[aggressor].probs.toggle_probability());

  report::Table table({"coupling window", "worst-case push", "stat push (P=1)",
                       "stat push (SPSTA)", "MC push"});

  // Conditional arrival distributions from the t.o.p. densities.
  const auto vic_rise = spsta.node[victim].rise.normalized();
  stats::PiecewiseDensity agg_top = spsta.node[aggressor].rise;
  agg_top.add_scaled(spsta.node[aggressor].fall, 1.0);  // either direction couples

  const double p_agg = spsta.node[aggressor].probs.toggle_probability();
  const stats::Gaussian vic_g = vic_rise.moments();
  const stats::Gaussian agg_g = agg_top.normalized().moments();

  stats::Xoshiro256 rng(12);
  for (double window : {0.25, 0.5, 1.0, 2.0}) {
    const interconnect::CouplingModel cm{0.5, window};
    const auto always =
        interconnect::analyze_crosstalk(vic_g, agg_g, 1.0, cm);
    const auto weighted = interconnect::analyze_crosstalk(vic_rise, agg_top, cm);

    // MC: sample both arrivals from the t.o.p. summaries.
    stats::RunningMoments push;
    for (int run = 0; run < 200000; ++run) {
      if (!rng.bernoulli(p_agg)) {
        push.add(0.0);
        continue;
      }
      const double u = rng.normal(agg_g.mean, agg_g.stddev()) -
                       rng.normal(vic_g.mean, vic_g.stddev());
      push.add(std::abs(u) <= window ? 0.5 * (1.0 - std::abs(u) / window) : 0.0);
    }

    const auto stat_p1 = interconnect::analyze_crosstalk(vic_g, agg_g, 1.0, cm);
    table.add_row({report::Table::num(window, 2),
                   report::Table::num(always.worst_case_push, 3),
                   report::Table::num(stat_p1.mean_push, 3),
                   report::Table::num(weighted.mean_push, 3),
                   report::Table::num(push.mean(), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Worst-case charges the full push regardless of alignment odds; the\n"
              "alignment-statistics column removes the timing pessimism; the SPSTA\n"
              "column additionally weights by the aggressor's actual transition\n"
              "probability (%.2f here) — the input-statistics term SSTA lacks.\n",
              p_agg);
  return 0;
}
