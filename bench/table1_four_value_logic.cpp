// Table 1: the four-value logic AND and OR operation tables with their
// MIN/MAX arrival computations — generated from the implementation (the
// timed evaluator), so any divergence from the paper's table would show
// here and in the corresponding unit tests.

#include <cstdio>

#include "mc/logic_sim.hpp"
#include "report/table.hpp"

int main() {
  using namespace spsta;
  using netlist::FourValue;
  using netlist::GateType;
  using enum netlist::FourValue;

  static constexpr FourValue kAll[4] = {Zero, One, Rise, Fall};

  const auto cell = [](GateType t, FourValue a, FourValue b) -> std::string {
    // Use distinct times so the MIN/MAX annotation can be inferred.
    const mc::SimValue ins[2] = {{a, 1.0}, {b, 2.0}};
    const mc::SimValue out = mc::eval_gate_timed(t, ins);
    std::string s{netlist::to_string(out.value)};
    if ((out.value == Rise || out.value == Fall) && (a == Rise || a == Fall) &&
        (b == Rise || b == Fall)) {
      s += out.time == 2.0 ? " (MAX)" : " (MIN)";
    }
    return s;
  };

  for (GateType t : {GateType::And, GateType::Or}) {
    std::printf("=== Table 1: four-value %s ===\n",
                std::string(netlist::to_string(t)).c_str());
    report::Table table({std::string(netlist::to_string(t)), "0", "1", "r", "f"});
    for (FourValue row : kAll) {
      std::vector<std::string> cells{std::string(netlist::to_string(row))};
      for (FourValue col : kAll) cells.push_back(cell(t, row, col));
      table.add_row(cells);
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("Glitch filtering: r meets f at an AND -> constant 0; at an OR ->\n"
              "constant 1 (the pulse is not counted), matching the paper's rules.\n\n");

  // Beyond the paper: the derived tables for the inverting gates.
  for (GateType t : {GateType::Nand, GateType::Nor, GateType::Xor}) {
    std::printf("=== derived: four-value %s ===\n",
                std::string(netlist::to_string(t)).c_str());
    report::Table table({std::string(netlist::to_string(t)), "0", "1", "r", "f"});
    for (FourValue row : kAll) {
      std::vector<std::string> cells{std::string(netlist::to_string(row))};
      for (FourValue col : kAll) cells.push_back(cell(t, row, col));
      table.add_row(cells);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
