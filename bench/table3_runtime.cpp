// Table 3: CPU runtime of 4-value SPSTA, min/max-separated SSTA, and
// 10K-run Monte Carlo per benchmark circuit. Engine timings use best-of-N
// wall-clock with benchmark::DoNotOptimize guarding against dead-code
// elimination; the binary then prints the Table 3 layout. Only the
// *relative* ordering (SPSTA ~ SSTA << 10K MC) is comparable to the
// paper's 2008-era absolute numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "ssta/ssta.hpp"

int main(int argc, char** argv) {
  using namespace spsta;
  benchmark::Initialize(&argc, argv);

  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  report::Table table({"test", "SPSTA (s)", "SSTA (s)", "10K MC (s)", "MC/SPSTA"});
  for (std::string_view name : netlist::paper_circuit_names()) {
    const netlist::Netlist n = netlist::make_paper_circuit(name);
    const netlist::DelayModel d = netlist::DelayModel::unit(n);

    const auto time_of = [](auto&& fn, int reps) {
      double best = 1e300;
      for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        best = std::min(
            best,
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());
      }
      return best;
    };

    const double t_spsta = time_of(
        [&] { benchmark::DoNotOptimize(core::run_spsta_moment(n, d, sc)); }, 3);
    const double t_ssta =
        time_of([&] { benchmark::DoNotOptimize(ssta::run_ssta(n, d, sc)); }, 3);
    mc::MonteCarloConfig cfg;
    cfg.runs = 10000;
    const double t_mc = time_of(
        [&] { benchmark::DoNotOptimize(mc::run_monte_carlo(n, d, sc, cfg)); }, 1);

    table.add_row({std::string(name), report::Table::num(t_spsta, 4),
                   report::Table::num(t_ssta, 4), report::Table::num(t_mc, 4),
                   report::Table::num(t_mc / std::max(t_spsta, 1e-9), 0) + "x"});
  }

  std::printf("=== Table 3: CPU runtime (seconds) ===\n%s\n", table.to_string().c_str());
  std::printf("Paper's shape to reproduce: SPSTA within a small factor of SSTA,\n"
              "both orders of magnitude faster than 10K-run Monte Carlo.\n");
  return 0;
}
