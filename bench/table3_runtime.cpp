// Table 3: CPU runtime of 4-value SPSTA, min/max-separated SSTA, and
// 10K-run Monte Carlo per benchmark circuit. Engine timings use best-of-N
// wall-clock with benchmark::DoNotOptimize guarding against dead-code
// elimination; the binary then prints the Table 3 layout. Only the
// *relative* ordering (SPSTA ~ SSTA << 10K MC) is comparable to the
// paper's 2008-era absolute numbers.
//
// The Monte Carlo column is measured twice — single-threaded and with the
// pool sized by --threads (default 8) — and every parallel run is checked
// to be BIT-IDENTICAL to the single-threaded statistics (the determinism
// contract of the execution layer; see DESIGN.md). Pass --json=FILE to
// append one JSON line per invocation: a timing trajectory that can be
// tracked across commits.
//
// The "SPSTA warm" column times the compile-once/run-many path of the
// unified API: a CompiledDesign built once, then run_spsta_moment(plan)
// with the structural work and switch-pattern enumeration amortized away
// — what every analyze after the first costs an Analyzer or a service
// session. Pass --circuits=s27,s208 to restrict the circuit set (CI runs
// the two smallest).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/compiled_design.hpp"
#include "core/spsta.hpp"
#include "hier/hier_analyzer.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/generator.hpp"
#include "netlist/hier.hpp"
#include "netlist/iscas89.hpp"
#include "obs/metrics.hpp"
#include "report/table.hpp"
#include "service/service.hpp"
#include "spsta_api.hpp"
#include "ssta/ssta.hpp"
#include "stats/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Exact equality of the accumulated statistics two runs produced.
bool same_statistics(const spsta::mc::MonteCarloResult& a,
                     const spsta::mc::MonteCarloResult& b) {
  if (a.node.size() != b.node.size() || a.glitching_gates != b.glitching_gates) {
    return false;
  }
  for (std::size_t id = 0; id < a.node.size(); ++id) {
    for (int v = 0; v < 4; ++v) {
      if (a.node[id].count[v] != b.node[id].count[v]) return false;
    }
    if (a.node[id].rise_time.mean() != b.node[id].rise_time.mean() ||
        a.node[id].rise_time.variance() != b.node[id].rise_time.variance() ||
        a.node[id].fall_time.mean() != b.node[id].fall_time.mean() ||
        a.node[id].fall_time.variance() != b.node[id].fall_time.variance()) {
      return false;
    }
  }
  return true;
}

/// Per-stage wall clock of one instrumented run, read back from the obs
/// registry's stage histograms (all milliseconds).
struct StageBreakdown {
  double levelize_ms = 0.0;
  double sigprob_ms = 0.0;
  double moment_ms = 0.0;
  double mc_shards_ms = 0.0;
  double mc_merge_ms = 0.0;
  bool available = false;  ///< false under --no-metrics / compiled-out obs
};

struct CircuitTiming {
  std::string name;
  double spsta = 0.0, spsta_warm = 0.0, ssta = 0.0, mc1 = 0.0, mcN = 0.0;
  bool identical = false;
  StageBreakdown stages;
};

/// Comma-separated --circuits= selection, validated against the paper set.
std::vector<std::string> parse_circuit_filter(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string name = list.substr(pos, comma - pos);
    if (!name.empty()) out.push_back(name);
    pos = comma + 1;
  }
  return out;
}

/// One fresh instrumented run per engine against a clean registry, so the
/// stage totals describe exactly one spsta_moment run and one parallel MC
/// run (the best-of-N timing loops above would tally every repetition).
StageBreakdown measure_stages(const spsta::netlist::Netlist& n,
                              const spsta::netlist::DelayModel& d,
                              const std::vector<spsta::netlist::SourceStats>& sc,
                              const spsta::mc::MonteCarloConfig& cfg) {
  StageBreakdown out;
  if (!spsta::obs::enabled()) return out;
  spsta::obs::registry().reset_values();
  benchmark::DoNotOptimize(spsta::core::run_spsta_moment(n, d, sc));
  benchmark::DoNotOptimize(spsta::mc::run_monte_carlo(n, d, sc, cfg));
  const spsta::obs::Snapshot snap = spsta::obs::registry().snapshot();
  out.levelize_ms = snap.histogram_total_ms("stage.levelize");
  out.sigprob_ms = snap.histogram_total_ms("stage.sigprob.propagate");
  out.moment_ms = snap.histogram_total_ms("stage.moment.propagate");
  out.mc_shards_ms = snap.histogram_total_ms("stage.mc.shards");
  out.mc_merge_ms = snap.histogram_total_ms("stage.mc.merge");
  out.available = true;
  return out;
}

/// Throughput of the analysis service on one circuit, in requests/second:
/// a warm session (design parsed once, repeated analyze served from the
/// result cache) against cold one-shots (a fresh service doing load +
/// analyze per request — what shelling out to a one-shot binary costs).
struct ServiceThroughput {
  std::string circuit;
  double warm_rps = 0.0;
  double cold_rps = 0.0;
};

ServiceThroughput measure_service(const std::string& circuit) {
  using spsta::service::AnalysisService;
  namespace chrono = std::chrono;
  const std::string load_line =
      "{\"cmd\":\"load\",\"circuit\":\"" + circuit + "\"}";
  const auto analyze_line = [](const std::string& session) {
    return "{\"cmd\":\"analyze\",\"session\":\"" + session +
           "\",\"engine\":\"spsta_moment\"}";
  };

  ServiceThroughput out;
  out.circuit = circuit;

  {  // Warm: one long-lived session, cache populated by the first analyze.
    AnalysisService service;
    const auto loaded = service.execute_line(load_line);
    const std::string session = loaded.body.find("session")->as_string();
    const std::string line = analyze_line(session);
    benchmark::DoNotOptimize(service.execute_line(line));
    constexpr int kWarmRequests = 500;
    const auto t0 = chrono::steady_clock::now();
    for (int i = 0; i < kWarmRequests; ++i) {
      benchmark::DoNotOptimize(service.execute_line(line));
    }
    const double secs =
        chrono::duration<double>(chrono::steady_clock::now() - t0).count();
    out.warm_rps = kWarmRequests / std::max(secs, 1e-12);
  }

  {  // Cold: every request pays parse + levelize + full analysis.
    constexpr int kColdRequests = 10;
    const auto t0 = chrono::steady_clock::now();
    for (int i = 0; i < kColdRequests; ++i) {
      AnalysisService service;
      const auto loaded = service.execute_line(load_line);
      const std::string session = loaded.body.find("session")->as_string();
      benchmark::DoNotOptimize(service.execute_line(analyze_line(session)));
    }
    const double secs =
        chrono::duration<double>(chrono::steady_clock::now() - t0).count();
    out.cold_rps = kColdRequests / std::max(secs, 1e-12);
  }
  return out;
}

/// --grid-sweep: warm numeric-engine wall clock vs grid resolution on one
/// circuit with stochastic (sigma > 0) delays — the scaling column for the
/// kernel layer (direct O(n^2) vs FFT O(n log n); DESIGN.md §12). A tiny
/// grid_dt makes the max_grid_points cap bind, so the grid size equals the
/// requested point count exactly.
struct GridSweepPoint {
  std::size_t n = 0;
  double seconds = 0.0;         ///< auto-detected SIMD tier
  double scalar_seconds = 0.0;  ///< forced-scalar reference (same bits)
};

std::vector<GridSweepPoint> measure_grid_sweep(const std::string& circuit) {
  using namespace spsta;
  const netlist::Netlist n = netlist::make_paper_circuit(circuit);
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.1);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const core::CompiledDesign plan(n, d);

  std::vector<GridSweepPoint> out;
  for (const std::size_t cap : {256u, 1024u, 2048u, 4096u, 8192u}) {
    core::SpstaOptions opts;
    opts.grid_dt = 1e-4;
    opts.max_grid_points = cap;
    // Warm once (delay kernels, pattern cache, workspace), then best-of —
    // once per dispatch tier; the scalar column is the vectorization
    // roofline (both tiers produce bit-identical results).
    GridSweepPoint p;
    p.n = cap;
    for (const bool scalar : {false, true}) {
      stats::simd::set_force_scalar(scalar);
      benchmark::DoNotOptimize(core::run_spsta_numeric(plan, sc, opts));
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(core::run_spsta_numeric(plan, sc, opts));
        best = std::min(
            best,
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());
      }
      (scalar ? p.scalar_seconds : p.seconds) = best;
    }
    stats::simd::set_force_scalar(false);
    out.push_back(p);
  }
  return out;
}

/// --size-sweep: hierarchical composition vs flat analysis over generated
/// designs of growing flattened size (DESIGN.md §14). For each size the
/// same HierDesign is analyzed twice — composed through block models and
/// flattened through the moment engine — so the runtime columns AND the
/// composed-vs-flat accuracy columns come from one deterministic design.
struct SizeSweepPoint {
  std::size_t gates = 0, instances = 0, blocks = 0;
  double gen_s = 0.0;
  double hier_compile_s = 0.0;  ///< HierAnalyzer ctor: block compiles + graph
  double hier_cold_s = 0.0;     ///< first composed run (pays extractions)
  double hier_warm_s = 0.0;     ///< second run (every instance a cache hit)
  double flatten_s = 0.0;
  double flat_compile_s = 0.0;  ///< CompiledDesign over the flat netlist
  double flat_warm_s = 0.0;     ///< warm flat moment run (best of 2)
  std::uint64_t models_extracted = 0, model_cache_hits = 0;
  double max_prob_delta = 0.0;      ///< composed vs flat probs/mass (abs)
  double max_rel_mean_delta = 0.0;  ///< composed vs flat arrival mean (rel)
  double max_rel_std_delta = 0.0;   ///< composed vs flat arrival std (rel)
};

SizeSweepPoint measure_size_point(std::size_t total_gates) {
  using namespace spsta;
  namespace chrono = std::chrono;
  const auto tick = [] { return chrono::steady_clock::now(); };
  const auto secs = [](auto t0, auto t1) {
    return chrono::duration<double>(t1 - t0).count();
  };

  SizeSweepPoint out;
  netlist::HierGeneratorSpec spec;
  spec.total_gates = total_gates;

  auto t0 = tick();
  netlist::HierDesign design = netlist::generate_hier_circuit(spec);
  out.gen_s = secs(t0, tick());
  out.blocks = design.blocks().size();
  out.instances = design.instances().size();
  out.gates = design.expanded_gate_count();

  // Flat reference: the exact analysis the composition must reproduce.
  t0 = tick();
  const netlist::Netlist flat = design.flatten();
  out.flatten_s = secs(t0, tick());
  const netlist::DelayModel delays = netlist::DelayModel::unit(flat);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  t0 = tick();
  const core::CompiledDesign plan(flat, delays);
  out.flat_compile_s = secs(t0, tick());
  core::SpstaResult flat_result;
  double flat_best = 1e300;
  for (int rep = 0; rep < 2; ++rep) {  // first rep warms the pattern cache
    t0 = tick();
    flat_result = core::run_spsta_moment(plan, sc);
    flat_best = std::min(flat_best, secs(t0, tick()));
  }
  out.flat_warm_s = flat_best;

  // Hierarchical composition over the same design.
  t0 = tick();
  hier::HierAnalyzer analyzer(std::move(design));
  out.hier_compile_s = secs(t0, tick());
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const hier::HierReport cold = analyzer.run(request);
  out.hier_cold_s = cold.elapsed_seconds;
  out.models_extracted = cold.models_extracted;
  const hier::HierReport warm = analyzer.run(request);
  out.hier_warm_s = warm.elapsed_seconds;
  out.model_cache_hits = warm.model_cache_hits;

  // Composed-vs-flat accuracy at every top output. The flat node behind
  // hier signal "<inst>.<port>" is named "<inst>/<port>" by flatten().
  for (const std::size_t sig : warm.outputs) {
    std::string flat_name = warm.signal_names.at(sig);
    const std::size_t dot = flat_name.find('.');
    if (dot == std::string::npos) continue;  // a top input fed straight out
    flat_name[dot] = '/';
    const netlist::NodeId id = flat.find(flat_name);
    if (id == netlist::kInvalidNode) continue;
    const core::NodeTop& ref = flat_result.node.at(id);
    const hier::PortTop& got = warm.signals.at(sig);
    const auto abs_delta = [&](double a, double b) {
      out.max_prob_delta = std::max(out.max_prob_delta, std::abs(a - b));
    };
    abs_delta(got.probs.p0, ref.probs.p0);
    abs_delta(got.probs.p1, ref.probs.p1);
    abs_delta(got.probs.pr, ref.probs.pr);
    abs_delta(got.probs.pf, ref.probs.pf);
    abs_delta(got.rise.mass, ref.rise.mass);
    abs_delta(got.fall.mass, ref.fall.mass);
    const auto rel_delta = [](double a, double b) {
      return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-12});
    };
    for (const bool rising : {true, false}) {
      const core::TransitionTop& g = rising ? got.rise : got.fall;
      const core::TransitionTop& r = rising ? ref.rise : ref.fall;
      if (g.mass < 1e-12 && r.mass < 1e-12) continue;
      out.max_rel_mean_delta =
          std::max(out.max_rel_mean_delta, rel_delta(g.arrival.mean, r.arrival.mean));
      out.max_rel_std_delta = std::max(
          out.max_rel_std_delta, rel_delta(g.arrival.stddev(), r.arrival.stddev()));
    }
  }
  return out;
}

/// Comma-separated --size-sweep= gate counts (empty on parse failure).
std::vector<std::size_t> parse_size_list(const std::string& list) {
  std::vector<std::size_t> out;
  for (const std::string& item : parse_circuit_filter(list)) {
    try {
      out.push_back(std::stoull(item));
    } catch (const std::exception&) {
      return {};
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spsta;
  benchmark::Initialize(&argc, argv);

  unsigned threads = 8;
  bool grid_sweep = false;
  std::vector<std::size_t> size_sweep;
  std::string json_path;
  std::vector<std::string> circuit_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--circuits=", 0) == 0) {
      circuit_filter = parse_circuit_filter(arg.substr(11));
    } else if (arg == "--grid-sweep") {
      grid_sweep = true;
    } else if (arg == "--size-sweep") {
      size_sweep = {20000, 100000};
    } else if (arg.rfind("--size-sweep=", 0) == 0) {
      size_sweep = parse_size_list(arg.substr(13));
      if (size_sweep.empty()) {
        std::fprintf(stderr, "--size-sweep: bad gate-count list\n");
        return 2;
      }
    } else if (arg == "--no-metrics") {
      // Overhead A/B: compare wall clock against a default run to check the
      // metrics layer's cost with recording disabled.
      obs::set_enabled(false);
    }
  }
  threads = util::resolve_threads(threads);

  std::vector<std::string> circuits;
  for (std::string_view name : netlist::paper_circuit_names()) {
    if (circuit_filter.empty() ||
        std::find(circuit_filter.begin(), circuit_filter.end(), name) !=
            circuit_filter.end()) {
      circuits.emplace_back(name);
    }
  }
  if (!circuit_filter.empty() && circuits.size() != circuit_filter.size()) {
    for (const std::string& want : circuit_filter) {
      if (std::find(circuits.begin(), circuits.end(), want) == circuits.end()) {
        std::fprintf(stderr, "--circuits: unknown circuit '%s'\n", want.c_str());
      }
    }
    return 2;
  }
  if (circuits.empty()) {
    std::fprintf(stderr, "--circuits: empty selection\n");
    return 2;
  }

  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  std::vector<CircuitTiming> timings;

  report::Table table({"test", "SPSTA (s)", "SPSTA warm (s)", "warm x", "SSTA (s)",
                       "10K MC 1t (s)",
                       "10K MC " + std::to_string(threads) + "t (s)", "MC speedup",
                       "MC/SPSTA", "stages lvl/sp/mom/shard/merge (ms)"});
  bool all_identical = true;
  for (const std::string& name : circuits) {
    const netlist::Netlist n = netlist::make_paper_circuit(name);
    const netlist::DelayModel d = netlist::DelayModel::unit(n);

    const auto time_of = [](auto&& fn, int reps) {
      double best = 1e300;
      for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        best = std::min(
            best,
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());
      }
      return best;
    };

    const double t_spsta = time_of(
        [&] { benchmark::DoNotOptimize(core::run_spsta_moment(n, d, sc)); }, 3);
    // Compile-once/run-many: the plan (levelization, adjacency, delay
    // span, pattern cache) is built outside the timed region; the first
    // rep populates the pattern cache, best-of picks a warm rep.
    const core::CompiledDesign plan(n, d);
    const double t_spsta_warm = time_of(
        [&] { benchmark::DoNotOptimize(core::run_spsta_moment(plan, sc)); }, 5);
    const double t_ssta =
        time_of([&] { benchmark::DoNotOptimize(ssta::run_ssta(n, d, sc)); }, 3);

    mc::MonteCarloConfig cfg;
    cfg.runs = 10000;
    mc::MonteCarloResult r1, rN;
    const double t_mc1 = time_of([&] { r1 = mc::run_monte_carlo(n, d, sc, cfg); }, 1);
    cfg.threads = threads;
    const double t_mcN = time_of([&] { rN = mc::run_monte_carlo(n, d, sc, cfg); }, 1);
    const bool identical = same_statistics(r1, rN);
    all_identical = all_identical && identical;

    const StageBreakdown stages = measure_stages(n, d, sc, cfg);
    const std::string stage_cell =
        stages.available
            ? report::Table::num(stages.levelize_ms, 2) + "/" +
                  report::Table::num(stages.sigprob_ms, 2) + "/" +
                  report::Table::num(stages.moment_ms, 2) + "/" +
                  report::Table::num(stages.mc_shards_ms, 2) + "/" +
                  report::Table::num(stages.mc_merge_ms, 2)
            : "(metrics off)";

    timings.push_back(
        {name, t_spsta, t_spsta_warm, t_ssta, t_mc1, t_mcN, identical, stages});
    table.add_row({name, report::Table::num(t_spsta, 4),
                   report::Table::num(t_spsta_warm, 4),
                   report::Table::num(t_spsta / std::max(t_spsta_warm, 1e-9), 1) + "x",
                   report::Table::num(t_ssta, 4), report::Table::num(t_mc1, 4),
                   report::Table::num(t_mcN, 4),
                   report::Table::num(t_mc1 / std::max(t_mcN, 1e-9), 1) + "x" +
                       (identical ? "" : " (MISMATCH)"),
                   report::Table::num(t_mc1 / std::max(t_spsta, 1e-9), 0) + "x",
                   stage_cell});
  }

  std::printf("=== Table 3: CPU runtime (seconds) ===\n%s\n", table.to_string().c_str());
  std::printf("Paper's shape to reproduce: SPSTA within a small factor of SSTA,\n"
              "both orders of magnitude faster than 10K-run Monte Carlo.\n");
  std::printf("Parallel MC statistics bit-identical to single-threaded: %s\n",
              all_identical ? "yes" : "NO — determinism contract violated");

  // Service mode: what keeping the design warm in spsta_serviced buys over
  // shelling out a one-shot binary per request (largest paper circuit).
  const std::string service_circuit = circuits.back();
  const ServiceThroughput svc = measure_service(service_circuit);
  std::printf(
      "\n=== Service mode (%s, spsta_moment) ===\n"
      "warm session (cached analyze): %10.0f requests/s\n"
      "cold one-shot (load+analyze):  %10.2f requests/s\n"
      "warm/cold speedup:             %10.0fx\n",
      service_circuit.c_str(), svc.warm_rps, svc.cold_rps,
      svc.warm_rps / std::max(svc.cold_rps, 1e-12));

  // Hierarchy-vs-flat sweep: composed analysis through extracted block
  // models against the flattened moment engine on the same design.
  std::vector<SizeSweepPoint> size_points;
  if (!size_sweep.empty()) {
    report::Table hier_table(
        {"gates", "inst", "hier compile (s)", "hier cold (s)", "hier warm (s)",
         "flat compile (s)", "flat warm (s)", "warm x", "extract/hits",
         "max |dP|", "max rel dmean", "max rel dstd"});
    for (const std::size_t gates : size_sweep) {
      const SizeSweepPoint p = measure_size_point(gates);
      size_points.push_back(p);
      hier_table.add_row(
          {std::to_string(p.gates), std::to_string(p.instances),
           report::Table::num(p.hier_compile_s, 4), report::Table::num(p.hier_cold_s, 4),
           report::Table::num(p.hier_warm_s, 6),
           report::Table::num(p.flatten_s + p.flat_compile_s, 4),
           report::Table::num(p.flat_warm_s, 4),
           report::Table::num(p.flat_warm_s / std::max(p.hier_warm_s, 1e-9), 0) + "x",
           std::to_string(p.models_extracted) + "/" + std::to_string(p.model_cache_hits),
           report::Table::num(p.max_prob_delta, 14),
           report::Table::num(p.max_rel_mean_delta, 14),
           report::Table::num(p.max_rel_std_delta, 14)});
    }
    std::printf("\n=== Hierarchical size sweep (generated designs, spsta_moment) ===\n%s\n",
                hier_table.to_string().c_str());
    std::printf("hier warm composes cached block models (O(instances)); flat warm\n"
                "re-propagates every gate. Accuracy columns are composed-vs-flat\n"
                "deltas at the top outputs (contract: src/hier/block_model.hpp).\n");
  }

  std::vector<GridSweepPoint> sweep;
  if (grid_sweep) {
    const std::string sweep_circuit = circuits.back();
    sweep = measure_grid_sweep(sweep_circuit);
    std::printf("\n=== Numeric engine grid sweep (%s, gaussian delays, warm) ===\n",
                sweep_circuit.c_str());
    std::printf("%10s %12s %12s %8s\n", "grid n", "seconds", "scalar_s", "simd x");
    for (const GridSweepPoint& p : sweep) {
      std::printf("%10zu %12.4f %12.4f %7.2fx\n", p.n, p.seconds,
                  p.scalar_seconds, p.scalar_seconds / std::max(p.seconds, 1e-12));
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "a");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for append\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"table3_runtime\",\"threads\":%u,\"identical\":%s,"
                    "\"circuits\":[",
                 threads, all_identical ? "true" : "false");
    for (std::size_t i = 0; i < timings.size(); ++i) {
      const CircuitTiming& t = timings[i];
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"spsta_s\":%.6g,\"spsta_warm_s\":%.6g,"
                   "\"warm_speedup\":%.3g,\"ssta_s\":%.6g,"
                   "\"mc_1t_s\":%.6g,\"mc_%ut_s\":%.6g,\"mc_speedup\":%.3g",
                   i ? "," : "", t.name.c_str(), t.spsta, t.spsta_warm,
                   t.spsta / std::max(t.spsta_warm, 1e-9), t.ssta, t.mc1, threads,
                   t.mcN, t.mc1 / std::max(t.mcN, 1e-9));
      if (t.stages.available) {
        std::fprintf(f,
                     ",\"stages_ms\":{\"levelize\":%.6g,\"sigprob\":%.6g,"
                     "\"moment\":%.6g,\"mc_shards\":%.6g,\"mc_merge\":%.6g}",
                     t.stages.levelize_ms, t.stages.sigprob_ms, t.stages.moment_ms,
                     t.stages.mc_shards_ms, t.stages.mc_merge_ms);
      }
      std::fputc('}', f);
    }
    std::fprintf(f,
                 "],\"service\":{\"circuit\":\"%s\",\"warm_rps\":%.6g,"
                 "\"cold_rps\":%.6g}",
                 svc.circuit.c_str(), svc.warm_rps, svc.cold_rps);
    if (!sweep.empty()) {
      std::fprintf(f, ",\"grid_sweep\":{\"circuit\":\"%s\",\"points\":[",
                   circuits.back().c_str());
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::fprintf(f, "%s{\"n\":%zu,\"seconds\":%.6g,\"scalar_seconds\":%.6g}",
                     i ? "," : "", sweep[i].n, sweep[i].seconds,
                     sweep[i].scalar_seconds);
      }
      std::fprintf(f, "]}");
    }
    if (!size_points.empty()) {
      std::fprintf(f, ",\"size_sweep\":{\"engine\":\"spsta_moment\",\"points\":[");
      for (std::size_t i = 0; i < size_points.size(); ++i) {
        const SizeSweepPoint& p = size_points[i];
        std::fprintf(
            f,
            "%s{\"gates\":%zu,\"instances\":%zu,\"blocks\":%zu,"
            "\"gen_s\":%.6g,\"hier_compile_s\":%.6g,\"hier_cold_s\":%.6g,"
            "\"hier_warm_s\":%.6g,\"flatten_s\":%.6g,\"flat_compile_s\":%.6g,"
            "\"flat_warm_s\":%.6g,\"warm_speedup\":%.6g,"
            "\"models_extracted\":%llu,\"model_cache_hits\":%llu,"
            "\"max_prob_delta\":%.6g,\"max_rel_mean_delta\":%.6g,"
            "\"max_rel_std_delta\":%.6g}",
            i ? "," : "", p.gates, p.instances, p.blocks, p.gen_s, p.hier_compile_s,
            p.hier_cold_s, p.hier_warm_s, p.flatten_s, p.flat_compile_s, p.flat_warm_s,
            p.flat_warm_s / std::max(p.hier_warm_s, 1e-9),
            static_cast<unsigned long long>(p.models_extracted),
            static_cast<unsigned long long>(p.model_cache_hits), p.max_prob_delta,
            p.max_rel_mean_delta, p.max_rel_std_delta);
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("Appended timing trajectory to %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}
