// Table 2: means, standard deviations and occurrence probabilities of the
// rising and falling arrivals on the most critical path, for (1) 4-value
// SPSTA, (2) min/max-separated SSTA and (3) 10K-run Monte Carlo, under
// the paper's two input scenarios. Ends with the aggregate error metrics
// behind the paper's headline claim (SPSTA mu/sigma within 6.2%/18.6% of
// MC versus SSTA's 13.4%/64.3%; signal probabilities within 14.28%).
//
// Circuits are the generated ISCAS'89-class suite (DESIGN.md §5): compare
// *shape* (who tracks MC, by how much) rather than absolute numbers.

#include <cstdio>
#include <vector>

#include "netlist/iscas89.hpp"
#include "report/experiment.hpp"
#include "report/table.hpp"

int main() {
  using namespace spsta;

  double sigprob_err_total = 0.0;
  std::size_t sigprob_circuits = 0;

  for (const bool second : {false, true}) {
    std::printf("=== Table 2 (%s): inputs %s ===\n", second ? "II" : "I",
                second ? "p0=0.75 p1=0.15 pr=0.02 pf=0.08 (0.1 toggle rate)"
                       : "p0=p1=pr=pf=0.25 (0.5 toggle rate)");

    report::ExperimentConfig cfg;
    cfg.scenario = second ? netlist::scenario_II() : netlist::scenario_I();
    cfg.mc_runs = 10000;

    std::vector<report::DirectionRow> rows;
    report::Table table({"test", "", "SPSTA mu", "SPSTA sig", "SPSTA P", "SSTA mu",
                         "SSTA sig", "MC mu", "MC sig", "MC P"});
    for (std::string_view name : netlist::paper_circuit_names()) {
      const report::CircuitExperiment e =
          report::run_paper_experiment(netlist::make_paper_circuit(name), cfg);
      for (const report::DirectionRow* row : {&e.rise, &e.fall}) {
        table.add_row({std::string(name), row->rising ? "r" : "f",
                       report::Table::num(row->spsta_mu),
                       report::Table::num(row->spsta_sigma),
                       report::Table::num(row->spsta_p),
                       report::Table::num(row->ssta_mu),
                       report::Table::num(row->ssta_sigma),
                       report::Table::num(row->mc_mu), report::Table::num(row->mc_sigma),
                       report::Table::num(row->mc_p)});
        rows.push_back(*row);
      }
      sigprob_err_total += e.signal_prob_error;
      ++sigprob_circuits;
    }
    std::printf("%s\n", table.to_string().c_str());

    const report::ErrorSummary s = summarize_errors(rows);
    std::printf("aggregate vs MC (mean absolute relative error over %zu mu rows, "
                "%zu sigma rows):\n",
                s.rows_mu, s.rows_sigma);
    std::printf("  SPSTA: mu %.1f%%, sigma %.1f%%   (paper: 6.2%% / 18.6%%)\n",
                100.0 * s.spsta_mu, 100.0 * s.spsta_sigma);
    std::printf("  SSTA : mu %.1f%%, sigma %.1f%%   (paper: 13.4%% / 64.3%%)\n",
                100.0 * s.ssta_mu, 100.0 * s.ssta_sigma);
    std::printf("  SPSTA transition probability: %.1f%% of MC (over %zu rows)\n\n",
                100.0 * s.spsta_p, s.rows_p);
  }

  std::printf("mean |signal probability error| over all nets and circuits: %.2f%%"
              "   (paper: within 14.28%%)\n",
              100.0 * sigprob_err_total / static_cast<double>(sigprob_circuits));
  return 0;
}
