// service_load — open-loop load generator for the analysis service's
// sharded worker-pool runtime (ROADMAP item 1, DESIGN.md §13/§15).
//
// Open loop means request submission follows a fixed schedule (target RPS)
// regardless of how fast responses come back — the generator never slows
// down to match the server, so queue growth, admission-control sheds and
// tail latency under overload are actually visible (a closed-loop client
// would coordinate-omit them away).
//
// Two transports drive the identical workload:
//   * pool (default): WorkerPool::submit in-process — the service runtime
//     minus any framing, exactly what `spsta_serviced --workers=N` wraps;
//   * socket (--listen): an in-process SocketServer serving N real TCP
//     connections (--conns), JSON lines or, with --frames, the
//     length-prefixed binary frame protocol — the full DESIGN.md §15
//     stack including framing, per-connection reordering and write
//     backpressure. Sojourn is then measured at the client.
//
// Overload feedback is honored, not just counted: with --retry, a request
// answered `overloaded` is resubmitted after sleeping the server's
// retry_after_ms hint (capped), up to N times; the report separates
// first-pass sheds from post-retry outcomes and counts retried /
// gave-up requests — so the committed snapshot exercises the feedback
// loop the admission controller exists to close.
//
// Workload mix per request (deterministic, seeded):
//   * warm (default 90%): analyze/query against one of the preloaded
//     ISCAS-scale sessions, rotating engines (spsta_moment, ssta,
//     canonical) — mostly result-cache hits, the steady-state serving
//     shape;
//   * cold (the rest): a `load` of a generator-built netlist from a small
//     rotating set — some loads are cross-session plan-cache hits,
//     first-timers pay parse + plan compile on the shard.
//
//   $ bench/service_load --rps=500 --seconds=5 --shards=8
//         --queue-cap=256 --warm=0.9 --json=BENCH_service_load.json
//   $ bench/service_load --listen --conns=4 --frames --retry
//
// The committed BENCH_service_load.json snapshot is produced by
// --snapshot (fixed small settings for comparable per-PR trajectories).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas89.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "service/transport/client.hpp"
#include "service/transport/server.hpp"
#include "service/worker_pool.hpp"
#include "stats/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using spsta::service::AnalysisService;
using spsta::service::Json;
using spsta::service::Response;
using spsta::service::WorkerPool;
using spsta::service::WorkerPoolStats;
namespace transport = spsta::service::transport;

struct Config {
  double rps = 500.0;
  double seconds = 5.0;
  unsigned shards = 0;  // 0 = hardware
  std::size_t queue_capacity = 256;
  double warm_ratio = 0.9;
  double deadline_ms = -1.0;  // <0: none
  std::uint64_t seed = 42;
  std::string json_path;
  bool snapshot = false;

  // Transport (DESIGN.md §15): empty = in-process pool, else a host:port
  // the bench binds an in-process SocketServer on.
  std::string listen;
  unsigned conns = 4;
  bool frames = false;

  // Overload feedback: 0 = shed-and-count (the old behavior), N = honor
  // retry_after_ms up to N resubmissions per request.
  unsigned max_retries = 0;
  double retry_cap_ms = 1000.0;
};

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Percentiles exact_percentiles(std::vector<double>& ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(q * (ms.size() - 1) + 0.5);
    return ms[std::min(i, ms.size() - 1)];
  };
  return {at(0.50), at(0.95), at(0.99)};
}

Json percentiles_json(const Percentiles& p) {
  Json j = Json::object();
  j.set("p50_ms", Json(p.p50));
  j.set("p95_ms", Json(p.p95));
  j.set("p99_ms", Json(p.p99));
  return j;
}

/// Final state of one request as the client saw it.
struct Completion {
  bool done = false;
  bool ok = false;
  std::string error_code;      ///< wire code; "transport" = connection died
  double retry_after_ms = -1;  ///< overload hint (when present)
  double sojourn_ms = 0.0;     ///< submit -> response
  std::string session;         ///< from load responses
};

Completion completion_of_response(const Response& r) {
  Completion c;
  c.done = true;
  c.ok = r.ok;
  c.sojourn_ms = r.span.queue_ms + r.span.execute_ms;
  if (r.ok) {
    if (const Json* s = r.body.find("session"); s != nullptr && s->is_string()) {
      c.session = s->as_string();
    }
  } else {
    c.error_code = std::string(r.error_code());
    if (const Json* ms = r.body.find("retry_after_ms");
        ms != nullptr && ms->is_number()) {
      c.retry_after_ms = ms->as_number();
    }
  }
  return c;
}

Completion completion_of_line(const std::string& line) {
  Completion c;
  c.done = true;
  try {
    const Json doc = Json::parse(line);
    const Json* ok = doc.find("ok");
    c.ok = ok != nullptr && ok->is_bool() && ok->as_bool();
    if (c.ok) {
      if (const Json* result = doc.find("result")) {
        if (const Json* s = result->find("session");
            s != nullptr && s->is_string()) {
          c.session = s->as_string();
        }
      }
    } else if (const Json* error = doc.find("error")) {
      if (const Json* code = error->find("code");
          code != nullptr && code->is_string()) {
        c.error_code = code->as_string();
      }
      if (const Json* ms = error->find("retry_after_ms");
          ms != nullptr && ms->is_number()) {
        c.retry_after_ms = ms->as_number();
      }
    }
  } catch (const std::exception&) {
    c.error_code = "client_parse";
  }
  return c;
}

/// Transport-independent submission surface: the harness submits request
/// lines against monotonically growing slots and reads completions back
/// after drain(). Both drivers answer every slot exactly once.
class LoadDriver {
 public:
  virtual ~LoadDriver() = default;
  virtual void submit(std::size_t slot, const std::string& line) = 0;
  /// Blocks until every submitted slot has a completion.
  virtual void drain() = 0;
  /// Valid after drain().
  virtual const Completion& result(std::size_t slot) const = 0;
  [[nodiscard]] virtual const char* transport() const = 0;
};

/// In-process WorkerPool driver: the submission path `spsta_serviced
/// --workers=N` wraps. Sojourn is the server-side queue+execute span.
class PoolDriver final : public LoadDriver {
 public:
  explicit PoolDriver(WorkerPool& pool) : pool_(pool) {}

  void submit(std::size_t slot, const std::string& line) override {
    if (results_.size() <= slot) {
      results_.resize(slot + 1);
      futures_.resize(slot + 1);
    }
    futures_[slot] = pool_.submit(line, Clock::now());
  }

  void drain() override {
    pool_.drain();
    for (std::size_t i = 0; i < futures_.size(); ++i) {
      if (results_[i].done || !futures_[i].valid()) continue;
      results_[i] = completion_of_response(futures_[i].get());
    }
  }

  const Completion& result(std::size_t slot) const override {
    return results_[slot];
  }

  const char* transport() const override { return "pool"; }

 private:
  WorkerPool& pool_;
  std::vector<std::future<Response>> futures_;
  std::vector<Completion> results_;
};

/// Real-TCP driver: N connections against a SocketServer, requests
/// round-robined across them, one receiver thread per connection reading
/// the in-order replies. Sojourn is client-measured (send -> receive),
/// so framing, reordering and socket writes are all inside the number.
class SocketDriver final : public LoadDriver {
 public:
  SocketDriver(const std::string& host, std::uint16_t port, unsigned conns,
               bool frames) {
    conns_.reserve(std::max(1u, conns));
    for (unsigned i = 0; i < std::max(1u, conns); ++i) {
      auto conn = std::make_unique<Conn>();
      if (!conn->client.connect(host, port, frames)) {
        throw std::runtime_error("service_load: cannot connect: " +
                                 conn->client.error());
      }
      conn->receiver = std::thread([c = conn.get()] { receiver_loop(*c); });
      conns_.push_back(std::move(conn));
    }
  }

  ~SocketDriver() override {
    for (const auto& conn : conns_) {
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        conn->closed = true;
        conn->cv.notify_all();
      }
      conn->client.finish_sending();
      if (conn->receiver.joinable()) conn->receiver.join();
    }
  }

  void submit(std::size_t slot, const std::string& line) override {
    if (results_.size() <= slot) results_.resize(slot + 1);
    Conn& conn = *conns_[next_++ % conns_.size()];
    {
      // Register the slot BEFORE sending: the reply can race the return
      // of send() and the receiver must already know which slot it is.
      const std::lock_guard<std::mutex> lock(conn.mutex);
      conn.inflight.push_back({slot, Clock::now()});
      conn.cv.notify_all();
    }
    if (!conn.client.send(line)) {
      // The receiver resolves the slot as a transport failure when it
      // notices the dead connection; nothing else to do here.
    }
  }

  void drain() override {
    for (const auto& conn : conns_) {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [&] { return conn->inflight.empty(); });
      for (auto& [slot, completion] : conn->completed) {
        results_[slot] = std::move(completion);
      }
      conn->completed.clear();
    }
  }

  const Completion& result(std::size_t slot) const override {
    return results_[slot];
  }

  const char* transport() const override { return "socket"; }

 private:
  struct Conn {
    transport::SocketClient client;
    std::mutex mutex;
    std::condition_variable cv;
    /// Slots awaiting their reply, in submission order (= reply order).
    std::deque<std::pair<std::size_t, Clock::time_point>> inflight;
    std::vector<std::pair<std::size_t, Completion>> completed;
    bool closed = false;
    std::thread receiver;
  };

  static void receiver_loop(Conn& conn) {
    for (;;) {
      std::pair<std::size_t, Clock::time_point> item;
      {
        std::unique_lock<std::mutex> lock(conn.mutex);
        conn.cv.wait(lock, [&] { return !conn.inflight.empty() || conn.closed; });
        if (conn.inflight.empty()) return;
        item = conn.inflight.front();
      }
      std::optional<transport::ClientReply> reply = conn.client.recv();
      const double sojourn =
          std::chrono::duration<double, std::milli>(Clock::now() - item.second)
              .count();
      const std::lock_guard<std::mutex> lock(conn.mutex);
      if (!reply) {
        // Connection gone: every outstanding slot fails as "transport".
        for (const auto& [slot, at] : conn.inflight) {
          Completion c;
          c.done = true;
          c.error_code = "transport";
          c.sojourn_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - at)
                  .count();
          conn.completed.emplace_back(slot, std::move(c));
        }
        conn.inflight.clear();
        conn.cv.notify_all();
        return;
      }
      Completion c = completion_of_line(reply->line);
      c.sojourn_ms = sojourn;
      conn.inflight.pop_front();
      conn.completed.emplace_back(item.first, std::move(c));
      conn.cv.notify_all();
    }
  }

  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t next_ = 0;
  std::vector<Completion> results_;
};

/// One request line of the mix. `tick` indexes the submission schedule.
std::string make_line(std::uint64_t tick, double u, const Config& config,
                      const std::vector<std::string>& warm_keys,
                      const std::vector<std::string>& cold_texts) {
  std::string line;
  if (u < config.warm_ratio && !warm_keys.empty()) {
    static constexpr const char* kEngines[] = {"spsta_moment", "ssta", "canonical"};
    const std::string& key = warm_keys[tick % warm_keys.size()];
    line = R"({"id":)" + std::to_string(tick) + R"(,"cmd":"analyze","session":")" +
           key + R"(","engine":")" + kEngines[tick % 3] + "\"";
  } else {
    const std::string& text = cold_texts[tick % cold_texts.size()];
    line = R"({"id":)" + std::to_string(tick) +
           R"(,"cmd":"load","format":"bench","text":)" +
           Json(text).dump();
  }
  if (config.deadline_ms >= 0) {
    line += ",\"deadline_ms\":" + std::to_string(config.deadline_ms);
  }
  line += "}";
  return line;
}

Json pool_stats_json(const WorkerPoolStats& stats) {
  Json j = Json::object();
  j.set("submitted", Json(stats.submitted));
  j.set("executed", Json(stats.executed));
  j.set("rejected_overload", Json(stats.rejected_overload));
  j.set("deadline_shed", Json(stats.deadline_shed));
  j.set("parse_errors", Json(stats.parse_errors));
  j.set("shutdown_shed", Json(stats.shutdown_shed));
  // The accounting identity of DESIGN.md §13 — CI asserts this is true
  // in the committed snapshot.
  j.set("identity_holds", Json(stats.submitted == stats.resolved()));
  return j;
}

int run(const Config& config) {
  AnalysisService service;

  // --- Transport setup. Either way ONE sharded pool executes everything.
  std::unique_ptr<WorkerPool> own_pool;
  std::unique_ptr<transport::SocketServer> server;
  std::thread serve_thread;
  std::unique_ptr<LoadDriver> driver;
  WorkerPool* pool = nullptr;
  if (config.listen.empty()) {
    own_pool = std::make_unique<WorkerPool>(
        service,
        spsta::service::WorkerPoolOptions{config.shards, config.queue_capacity});
    pool = own_pool.get();
    driver = std::make_unique<PoolDriver>(*pool);
  } else {
    const auto spec = transport::parse_host_port(config.listen);
    if (!spec) {
      std::fprintf(stderr, "bad --listen spec '%s' (want HOST:PORT)\n",
                   config.listen.c_str());
      return 2;
    }
    transport::SocketServerOptions options;
    options.host = spec->host;
    options.port = spec->port;
    options.workers = config.shards;
    options.queue_capacity = config.queue_capacity;
    server = std::make_unique<transport::SocketServer>(service, options);
    std::uint16_t port = 0;
    try {
      port = server->listen();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    serve_thread = std::thread([&] { (void)server->serve(); });
    pool = &server->pool();
    try {
      driver = std::make_unique<SocketDriver>(spec->host, port, config.conns,
                                              config.frames);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      server->stop();
      serve_thread.join();
      return 1;
    }
  }
  const auto teardown = [&] {
    driver.reset();  // joins receivers / resolves futures
    if (server) {
      server->stop();
      if (serve_thread.joinable()) serve_thread.join();
    }
  };

  std::size_t next_slot = 0;

  // --- Preload the warm set (cross-shard: each circuit routes by its own
  // content hash).
  std::vector<std::string> warm_keys;
  {
    const std::size_t base = next_slot;
    const char* names[] = {"s27", "s298", "s344", "s386"};
    for (const char* name : names) {
      driver->submit(next_slot++, R"({"cmd":"load","circuit":")" +
                                      std::string(name) + "\"}");
    }
    driver->drain();
    for (std::size_t i = 0; i < std::size(names); ++i) {
      const Completion& c = driver->result(base + i);
      if (!c.ok || c.session.empty()) {
        std::fprintf(stderr, "preload of %s failed (%s)\n", names[i],
                     c.error_code.c_str());
        teardown();
        return 1;
      }
      warm_keys.push_back(c.session);
    }
  }
  // Prime the analysis caches so the warm mix measures steady state.
  for (const std::string& key : warm_keys) {
    for (const char* engine : {"spsta_moment", "ssta", "canonical"}) {
      driver->submit(next_slot++, R"({"cmd":"analyze","session":")" + key +
                                      R"(","engine":")" + engine + "\"}");
    }
  }
  driver->drain();

  // --- Cold set: generator-built netlists serialized to .bench text.
  std::vector<std::string> cold_texts;
  for (std::uint64_t s = 0; s < 8; ++s) {
    spsta::netlist::GeneratorSpec spec;
    spec.name = "load_cold_" + std::to_string(s);
    spec.num_inputs = 12;
    spec.num_outputs = 6;
    spec.num_gates = 160;
    spec.target_depth = 9;
    spec.seed = 1000 + s;
    cold_texts.push_back(spsta::netlist::write_bench(spsta::netlist::generate_circuit(spec)));
  }

  // Preload/priming latency must not pollute the measured histograms.
  spsta::obs::registry().reset_values();

  // --- Open-loop run: submit on the fixed schedule, harvest after drain.
  const auto total = static_cast<std::uint64_t>(config.rps * config.seconds);
  const auto period_ns = static_cast<std::uint64_t>(1e9 / config.rps);
  spsta::stats::Xoshiro256 rng(config.seed);

  const std::size_t first_slot = next_slot;
  std::vector<std::string> lines;  // kept for overload resubmission
  lines.reserve(total);

  const Clock::time_point start = Clock::now();
  std::uint64_t behind_schedule = 0;
  for (std::uint64_t tick = 0; tick < total; ++tick) {
    const Clock::time_point due =
        start + std::chrono::nanoseconds(tick * period_ns);
    if (Clock::now() < due) {
      std::this_thread::sleep_until(due);
    } else if (Clock::now() > due + std::chrono::milliseconds(1)) {
      ++behind_schedule;  // submitter itself could not keep the schedule
    }
    const double u = rng.uniform();
    lines.push_back(make_line(tick, u, config, warm_keys, cold_texts));
    driver->submit(next_slot++, lines.back());
  }
  driver->drain();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // --- Harvest the first pass.
  std::vector<double> sojourn_ms;
  sojourn_ms.reserve(total);
  std::vector<Completion> final_by_tick(total);
  std::uint64_t first_pass_overloaded = 0;
  for (std::uint64_t tick = 0; tick < total; ++tick) {
    const Completion& c = driver->result(first_slot + tick);
    sojourn_ms.push_back(c.sojourn_ms);
    if (c.error_code == "overloaded") ++first_pass_overloaded;
    final_by_tick[tick] = c;
  }

  // --- Overload feedback: resubmit shed requests after sleeping the
  // server's hint (capped), in waves, until answered or out of budget.
  std::uint64_t retried = 0, gave_up = 0;
  if (config.max_retries > 0) {
    struct Retryable {
      std::uint64_t tick;
      Clock::time_point due;
      unsigned attempts;
    };
    const auto backoff = [&](const Completion& c) {
      const double hint = c.retry_after_ms > 0 ? c.retry_after_ms : 1.0;
      return std::chrono::duration<double, std::milli>(
          std::clamp(hint, 1.0, config.retry_cap_ms));
    };
    std::vector<Retryable> wave;
    for (std::uint64_t tick = 0; tick < total; ++tick) {
      const Completion& c = final_by_tick[tick];
      if (c.error_code == "overloaded") {
        wave.push_back({tick, Clock::now() +
                                  std::chrono::duration_cast<Clock::duration>(
                                      backoff(c)),
                        1});
      }
    }
    while (!wave.empty()) {
      std::sort(wave.begin(), wave.end(),
                [](const Retryable& a, const Retryable& b) { return a.due < b.due; });
      const std::size_t wave_base = next_slot;
      for (const Retryable& r : wave) {
        std::this_thread::sleep_until(r.due);
        driver->submit(next_slot++, lines[r.tick]);
        ++retried;
      }
      driver->drain();
      std::vector<Retryable> next_wave;
      for (std::size_t i = 0; i < wave.size(); ++i) {
        const Completion& c = driver->result(wave_base + i);
        sojourn_ms.push_back(c.sojourn_ms);
        final_by_tick[wave[i].tick] = c;
        if (c.error_code == "overloaded") {
          if (wave[i].attempts >= config.max_retries) {
            ++gave_up;
          } else {
            next_wave.push_back({wave[i].tick,
                                 Clock::now() +
                                     std::chrono::duration_cast<Clock::duration>(
                                         backoff(c)),
                                 wave[i].attempts + 1});
          }
        }
      }
      wave = std::move(next_wave);
    }
  }

  // --- Final per-request outcomes (after any retries).
  std::uint64_t ok_count = 0, overloaded = 0, deadline = 0, failed = 0;
  for (const Completion& c : final_by_tick) {
    if (c.ok) {
      ++ok_count;
    } else if (c.error_code == "overloaded") {
      ++overloaded;
    } else if (c.error_code == "deadline_exceeded") {
      ++deadline;
    } else {
      ++failed;
    }
  }
  const Percentiles sojourn = exact_percentiles(sojourn_ms);

  const spsta::obs::Snapshot snap = spsta::obs::registry().snapshot();
  const Percentiles queue_wait{snap.histogram_quantile_ms("service.queue_wait", 0.50),
                               snap.histogram_quantile_ms("service.queue_wait", 0.95),
                               snap.histogram_quantile_ms("service.queue_wait", 0.99)};
  const Percentiles execute{snap.histogram_quantile_ms("service.execute", 0.50),
                            snap.histogram_quantile_ms("service.execute", 0.95),
                            snap.histogram_quantile_ms("service.execute", 0.99)};

  const double achieved_rps = static_cast<double>(total) / wall_seconds;
  const WorkerPoolStats pool_stats = pool->stats();
  const char* transport_name = driver->transport();

  std::printf("service_load: %llu requests over %.2f s (target %.0f rps, achieved %.0f)\n",
              static_cast<unsigned long long>(total), wall_seconds, config.rps,
              achieved_rps);
  std::printf("  transport=%s%s conns=%u shards=%u queue_cap=%zu warm=%.2f\n",
              transport_name, config.frames ? "+frames" : "",
              config.listen.empty() ? 0 : config.conns, pool->shards(),
              pool->queue_capacity(), config.warm_ratio);
  std::printf("  ok=%llu overloaded=%llu deadline=%llu failed=%llu behind=%llu\n",
              static_cast<unsigned long long>(ok_count),
              static_cast<unsigned long long>(overloaded),
              static_cast<unsigned long long>(deadline),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(behind_schedule));
  std::printf("  overload feedback: first_pass_shed=%llu retried=%llu gave_up=%llu (max %u)\n",
              static_cast<unsigned long long>(first_pass_overloaded),
              static_cast<unsigned long long>(retried),
              static_cast<unsigned long long>(gave_up), config.max_retries);
  std::printf("  sojourn   p50=%.3f ms  p95=%.3f ms  p99=%.3f ms (%s)\n",
              sojourn.p50, sojourn.p95, sojourn.p99,
              config.listen.empty() ? "server span" : "client measured");
  std::printf("  queue     p50=%.3f ms  p95=%.3f ms  p99=%.3f ms (obs histogram)\n",
              queue_wait.p50, queue_wait.p95, queue_wait.p99);
  std::printf("  execute   p50=%.3f ms  p95=%.3f ms  p99=%.3f ms (obs histogram)\n",
              execute.p50, execute.p95, execute.p99);
  std::printf("  pool: submitted=%llu executed=%llu rejected=%llu deadline=%llu"
              " parse_err=%llu shutdown=%llu (identity %s)\n",
              static_cast<unsigned long long>(pool_stats.submitted),
              static_cast<unsigned long long>(pool_stats.executed),
              static_cast<unsigned long long>(pool_stats.rejected_overload),
              static_cast<unsigned long long>(pool_stats.deadline_shed),
              static_cast<unsigned long long>(pool_stats.parse_errors),
              static_cast<unsigned long long>(pool_stats.shutdown_shed),
              pool_stats.submitted == pool_stats.resolved() ? "holds" : "BROKEN");
  std::printf("  plan cache: hits=%llu misses=%llu evictions=%llu\n",
              static_cast<unsigned long long>(service.store().plan_hits()),
              static_cast<unsigned long long>(service.store().plan_misses()),
              static_cast<unsigned long long>(service.store().evictions()));

  int exit_code = 0;
  if (!config.json_path.empty()) {
    Json j = Json::object();
    j.set("bench", Json("service_load"));
    j.set("transport", Json(std::string(transport_name)));
    j.set("binary_frames", Json(config.frames));
    j.set("connections",
          Json(static_cast<std::uint64_t>(config.listen.empty() ? 0 : config.conns)));
    j.set("target_rps", Json(config.rps));
    j.set("achieved_rps", Json(achieved_rps));
    j.set("seconds", Json(wall_seconds));
    j.set("requests", Json(total));
    j.set("shards", Json(static_cast<std::uint64_t>(pool->shards())));
    j.set("queue_capacity", Json(pool->queue_capacity()));
    j.set("warm_ratio", Json(config.warm_ratio));
    j.set("ok", Json(ok_count));
    j.set("overloaded", Json(overloaded));
    j.set("deadline_shed", Json(deadline));
    j.set("failed", Json(failed));
    j.set("behind_schedule", Json(behind_schedule));
    Json retry = Json::object();
    retry.set("max_retries", Json(static_cast<std::uint64_t>(config.max_retries)));
    retry.set("first_pass_shed", Json(first_pass_overloaded));
    retry.set("retried", Json(retried));
    retry.set("gave_up", Json(gave_up));
    j.set("retry", std::move(retry));
    j.set("sojourn", percentiles_json(sojourn));
    j.set("queue_wait", percentiles_json(queue_wait));
    j.set("execute", percentiles_json(execute));
    j.set("pool", pool_stats_json(pool_stats));
    Json store = Json::object();
    store.set("plan_hits", Json(service.store().plan_hits()));
    store.set("plan_misses", Json(service.store().plan_misses()));
    store.set("evictions", Json(service.store().evictions()));
    j.set("plan_cache", std::move(store));
    std::FILE* f = std::fopen(config.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", config.json_path.c_str());
      exit_code = 1;
    } else {
      std::fprintf(f, "%s\n", j.dump().c_str());
      std::fclose(f);
      std::printf("  snapshot -> %s\n", config.json_path.c_str());
    }
  }

  teardown();
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&](std::size_t prefix) { return std::stod(arg.substr(prefix)); };
    if (arg.rfind("--rps=", 0) == 0) {
      config.rps = num(6);
    } else if (arg.rfind("--seconds=", 0) == 0) {
      config.seconds = num(10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = static_cast<unsigned>(num(9));
    } else if (arg.rfind("--queue-cap=", 0) == 0) {
      config.queue_capacity = static_cast<std::size_t>(num(12));
    } else if (arg.rfind("--warm=", 0) == 0) {
      config.warm_ratio = num(7);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      config.deadline_ms = num(14);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<std::uint64_t>(num(7));
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else if (arg == "--listen") {
      config.listen = "127.0.0.1:0";
    } else if (arg.rfind("--listen=", 0) == 0) {
      config.listen = arg.substr(9);
    } else if (arg.rfind("--conns=", 0) == 0) {
      config.conns = static_cast<unsigned>(num(8));
    } else if (arg == "--frames") {
      config.frames = true;
    } else if (arg == "--retry") {
      config.max_retries = 8;
    } else if (arg.rfind("--retry=", 0) == 0) {
      config.max_retries = static_cast<unsigned>(num(8));
    } else if (arg.rfind("--retry-cap-ms=", 0) == 0) {
      config.retry_cap_ms = num(15);
    } else if (arg == "--snapshot") {
      // Fixed, CI-sized settings: the committed per-PR trajectory point.
      // Retries are ON so the snapshot exercises the overload feedback
      // loop (retried/gave_up land in the committed JSON).
      config.snapshot = true;
      config.rps = 200.0;
      config.seconds = 3.0;
      config.shards = 4;
      config.queue_capacity = 64;
      if (config.max_retries == 0) config.max_retries = 8;
      if (config.json_path.empty()) config.json_path = "BENCH_service_load.json";
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "service_load — open-loop load generator for the worker-pool runtime\n"
          "  --rps=R          target submissions per second (default 500)\n"
          "  --seconds=S      run length (default 5)\n"
          "  --shards=N       worker shards (default: hardware)\n"
          "  --queue-cap=N    per-shard bounded queue (default 256)\n"
          "  --warm=F         warm (analyze) fraction of the mix (default 0.9)\n"
          "  --deadline-ms=D  attach a relative deadline to every request\n"
          "  --seed=S         mix RNG seed (default 42)\n"
          "  --listen[=H:P]   drive an in-process SocketServer over real TCP\n"
          "                   (default 127.0.0.1:0) instead of the in-process\n"
          "                   pool; sojourn is then client-measured\n"
          "  --conns=N        socket mode: client connections (default 4)\n"
          "  --frames         socket mode: length-prefixed binary frames\n"
          "  --retry[=N]      resubmit 'overloaded' requests after their\n"
          "                   retry_after_ms hint, up to N times (default 8)\n"
          "  --retry-cap-ms=C cap one retry sleep (default 1000)\n"
          "  --json=FILE      write a JSON snapshot\n"
          "  --snapshot       fixed CI settings (retry on) -> BENCH_service_load.json\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }
  return run(config);
}
