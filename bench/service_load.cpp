// service_load — open-loop load generator for the analysis service's
// sharded worker-pool runtime (ROADMAP item 1, DESIGN.md §13).
//
// Open loop means request submission follows a fixed schedule (target RPS)
// regardless of how fast responses come back — the generator never slows
// down to match the server, so queue growth, admission-control sheds and
// tail latency under overload are actually visible (a closed-loop client
// would coordinate-omit them away). Submission drives the same
// WorkerPool + AnalysisService stack `spsta_serviced --workers=N` serves
// through, minus the stdio framing, so the numbers measure the service
// runtime, not pipe throughput.
//
// Workload mix per request (deterministic, seeded):
//   * warm (default 90%): analyze/query against one of the preloaded
//     ISCAS-scale sessions, rotating engines (spsta_moment, ssta,
//     canonical) — mostly result-cache hits, the steady-state serving
//     shape;
//   * cold (the rest): a `load` of a generator-built netlist from a small
//     rotating set — some loads are cross-session plan-cache hits,
//     first-timers pay parse + plan compile on the shard.
//
// Reported: achieved RPS, completion counts, shed counts, and p50/p95/p99
// of client sojourn (submit -> response) measured exactly, plus queue-wait
// and execute percentiles read from the obs registry histograms
// (service.queue_wait / service.execute) — the same numbers the `stats`
// command exports.
//
//   $ bench/service_load --rps=500 --seconds=5 --shards=8
//         --queue-cap=256 --warm=0.9 --json=BENCH_service_load.json
//
// The committed BENCH_service_load.json snapshot is produced by
// --snapshot (fixed small settings for comparable per-PR trajectories).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas89.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "service/worker_pool.hpp"
#include "stats/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using spsta::service::AnalysisService;
using spsta::service::Json;
using spsta::service::Response;
using spsta::service::WorkerPool;

struct Config {
  double rps = 500.0;
  double seconds = 5.0;
  unsigned shards = 0;  // 0 = hardware
  std::size_t queue_capacity = 256;
  double warm_ratio = 0.9;
  double deadline_ms = -1.0;  // <0: none
  std::uint64_t seed = 42;
  std::string json_path;
  bool snapshot = false;
};

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Percentiles exact_percentiles(std::vector<double>& ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(q * (ms.size() - 1) + 0.5);
    return ms[std::min(i, ms.size() - 1)];
  };
  return {at(0.50), at(0.95), at(0.99)};
}

Json percentiles_json(const Percentiles& p) {
  Json j = Json::object();
  j.set("p50_ms", Json(p.p50));
  j.set("p95_ms", Json(p.p95));
  j.set("p99_ms", Json(p.p99));
  return j;
}

/// One request line of the mix. `tick` indexes the submission schedule.
std::string make_line(std::uint64_t tick, double u, const Config& config,
                      const std::vector<std::string>& warm_keys,
                      const std::vector<std::string>& cold_texts) {
  std::string line;
  if (u < config.warm_ratio && !warm_keys.empty()) {
    static constexpr const char* kEngines[] = {"spsta_moment", "ssta", "canonical"};
    const std::string& key = warm_keys[tick % warm_keys.size()];
    line = R"({"id":)" + std::to_string(tick) + R"(,"cmd":"analyze","session":")" +
           key + R"(","engine":")" + kEngines[tick % 3] + "\"";
  } else {
    const std::string& text = cold_texts[tick % cold_texts.size()];
    line = R"({"id":)" + std::to_string(tick) +
           R"(,"cmd":"load","format":"bench","text":)" +
           Json(text).dump();
  }
  if (config.deadline_ms >= 0) {
    line += ",\"deadline_ms\":" + std::to_string(config.deadline_ms);
  }
  line += "}";
  return line;
}

int run(const Config& config) {
  AnalysisService service;
  WorkerPool pool(service, {config.shards, config.queue_capacity});

  // --- Preload the warm set (cross-shard: each circuit routes by its own
  // content hash).
  std::vector<std::string> warm_keys;
  for (const std::string_view name :
       {std::string_view("s27"), std::string_view("s298"),
        std::string_view("s344"), std::string_view("s386")}) {
    const std::string line = R"({"cmd":"load","circuit":")" + std::string(name) + "\"}";
    Response r = pool.submit(line).get();
    if (!r.ok) {
      std::fprintf(stderr, "preload of %.*s failed: %s\n",
                   static_cast<int>(name.size()), name.data(),
                   r.to_line().c_str());
      return 1;
    }
    warm_keys.push_back(r.body.find("session")->as_string());
  }
  // Prime the analysis caches so the warm mix measures steady state.
  for (const std::string& key : warm_keys) {
    for (const char* engine : {"spsta_moment", "ssta", "canonical"}) {
      (void)pool
          .submit(R"({"cmd":"analyze","session":")" + key + R"(","engine":")" +
                  engine + "\"}")
          .get();
    }
  }

  // --- Cold set: generator-built netlists serialized to .bench text.
  std::vector<std::string> cold_texts;
  for (std::uint64_t s = 0; s < 8; ++s) {
    spsta::netlist::GeneratorSpec spec;
    spec.name = "load_cold_" + std::to_string(s);
    spec.num_inputs = 12;
    spec.num_outputs = 6;
    spec.num_gates = 160;
    spec.target_depth = 9;
    spec.seed = 1000 + s;
    cold_texts.push_back(spsta::netlist::write_bench(spsta::netlist::generate_circuit(spec)));
  }

  // Preload/priming latency must not pollute the measured histograms.
  spsta::obs::registry().reset_values();

  // --- Open-loop run: submit on the fixed schedule, harvest after drain.
  const auto total = static_cast<std::uint64_t>(config.rps * config.seconds);
  const auto period_ns = static_cast<std::uint64_t>(1e9 / config.rps);
  spsta::stats::Xoshiro256 rng(config.seed);

  std::vector<std::future<Response>> futures;
  futures.reserve(total);
  std::vector<Clock::time_point> submit_at(total);

  const Clock::time_point start = Clock::now();
  std::uint64_t behind_schedule = 0;
  for (std::uint64_t tick = 0; tick < total; ++tick) {
    const Clock::time_point due =
        start + std::chrono::nanoseconds(tick * period_ns);
    if (Clock::now() < due) {
      std::this_thread::sleep_until(due);
    } else if (Clock::now() > due + std::chrono::milliseconds(1)) {
      ++behind_schedule;  // submitter itself could not keep the schedule
    }
    const double u = rng.uniform();
    submit_at[tick] = Clock::now();
    futures.push_back(
        pool.submit(make_line(tick, u, config, warm_keys, cold_texts),
                    submit_at[tick]));
  }
  pool.drain();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // --- Harvest: client sojourn per request, split by outcome.
  std::vector<double> sojourn_ms;
  sojourn_ms.reserve(total);
  std::uint64_t ok_count = 0, overloaded = 0, deadline = 0, failed = 0;
  for (std::uint64_t tick = 0; tick < total; ++tick) {
    Response r = futures[tick].get();
    // Completion time is unknown post-hoc; queue+execute span is the
    // server-side sojourn. Client-side: harvested futures resolved by
    // drain(), so span covers the full in-service time.
    sojourn_ms.push_back(r.span.queue_ms + r.span.execute_ms);
    if (r.ok) {
      ++ok_count;
    } else if (r.error_code() == "overloaded") {
      ++overloaded;
    } else if (r.error_code() == "deadline_exceeded") {
      ++deadline;
    } else {
      ++failed;
    }
  }
  const Percentiles sojourn = exact_percentiles(sojourn_ms);

  const spsta::obs::Snapshot snap = spsta::obs::registry().snapshot();
  const Percentiles queue_wait{snap.histogram_quantile_ms("service.queue_wait", 0.50),
                               snap.histogram_quantile_ms("service.queue_wait", 0.95),
                               snap.histogram_quantile_ms("service.queue_wait", 0.99)};
  const Percentiles execute{snap.histogram_quantile_ms("service.execute", 0.50),
                            snap.histogram_quantile_ms("service.execute", 0.95),
                            snap.histogram_quantile_ms("service.execute", 0.99)};

  const double achieved_rps = static_cast<double>(total) / wall_seconds;

  std::printf("service_load: %llu requests over %.2f s (target %.0f rps, achieved %.0f)\n",
              static_cast<unsigned long long>(total), wall_seconds, config.rps,
              achieved_rps);
  std::printf("  shards=%u queue_cap=%zu warm=%.2f\n", pool.shards(),
              pool.queue_capacity(), config.warm_ratio);
  std::printf("  ok=%llu overloaded=%llu deadline=%llu failed=%llu behind=%llu\n",
              static_cast<unsigned long long>(ok_count),
              static_cast<unsigned long long>(overloaded),
              static_cast<unsigned long long>(deadline),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(behind_schedule));
  std::printf("  sojourn   p50=%.3f ms  p95=%.3f ms  p99=%.3f ms (exact)\n",
              sojourn.p50, sojourn.p95, sojourn.p99);
  std::printf("  queue     p50=%.3f ms  p95=%.3f ms  p99=%.3f ms (obs histogram)\n",
              queue_wait.p50, queue_wait.p95, queue_wait.p99);
  std::printf("  execute   p50=%.3f ms  p95=%.3f ms  p99=%.3f ms (obs histogram)\n",
              execute.p50, execute.p95, execute.p99);
  std::printf("  plan cache: hits=%llu misses=%llu evictions=%llu\n",
              static_cast<unsigned long long>(service.store().plan_hits()),
              static_cast<unsigned long long>(service.store().plan_misses()),
              static_cast<unsigned long long>(service.store().evictions()));

  if (!config.json_path.empty()) {
    Json j = Json::object();
    j.set("bench", Json("service_load"));
    j.set("target_rps", Json(config.rps));
    j.set("achieved_rps", Json(achieved_rps));
    j.set("seconds", Json(wall_seconds));
    j.set("requests", Json(total));
    j.set("shards", Json(static_cast<std::uint64_t>(pool.shards())));
    j.set("queue_capacity", Json(pool.queue_capacity()));
    j.set("warm_ratio", Json(config.warm_ratio));
    j.set("ok", Json(ok_count));
    j.set("overloaded", Json(overloaded));
    j.set("deadline_shed", Json(deadline));
    j.set("failed", Json(failed));
    j.set("behind_schedule", Json(behind_schedule));
    j.set("sojourn", percentiles_json(sojourn));
    j.set("queue_wait", percentiles_json(queue_wait));
    j.set("execute", percentiles_json(execute));
    Json store = Json::object();
    store.set("plan_hits", Json(service.store().plan_hits()));
    store.set("plan_misses", Json(service.store().plan_misses()));
    store.set("evictions", Json(service.store().evictions()));
    j.set("plan_cache", std::move(store));
    std::FILE* f = std::fopen(config.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", config.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", j.dump().c_str());
    std::fclose(f);
    std::printf("  snapshot -> %s\n", config.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&](std::size_t prefix) { return std::stod(arg.substr(prefix)); };
    if (arg.rfind("--rps=", 0) == 0) {
      config.rps = num(6);
    } else if (arg.rfind("--seconds=", 0) == 0) {
      config.seconds = num(10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = static_cast<unsigned>(num(9));
    } else if (arg.rfind("--queue-cap=", 0) == 0) {
      config.queue_capacity = static_cast<std::size_t>(num(12));
    } else if (arg.rfind("--warm=", 0) == 0) {
      config.warm_ratio = num(7);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      config.deadline_ms = num(14);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<std::uint64_t>(num(7));
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else if (arg == "--snapshot") {
      // Fixed, CI-sized settings: the committed per-PR trajectory point.
      config.snapshot = true;
      config.rps = 200.0;
      config.seconds = 3.0;
      config.shards = 4;
      config.queue_capacity = 64;
      if (config.json_path.empty()) config.json_path = "BENCH_service_load.json";
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "service_load — open-loop load generator for the worker-pool runtime\n"
          "  --rps=R          target submissions per second (default 500)\n"
          "  --seconds=S      run length (default 5)\n"
          "  --shards=N       worker shards (default: hardware)\n"
          "  --queue-cap=N    per-shard bounded queue (default 256)\n"
          "  --warm=F         warm (analyze) fraction of the mix (default 0.9)\n"
          "  --deadline-ms=D  attach a relative deadline to every request\n"
          "  --seed=S         mix RNG seed (default 42)\n"
          "  --json=FILE      write a JSON snapshot\n"
          "  --snapshot       fixed CI settings -> BENCH_service_load.json\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }
  return run(config);
}
