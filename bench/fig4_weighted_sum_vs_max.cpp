// Figure 4: the result of MAX vs WEIGHTED SUM for an AND gate whose two
// inputs both have signal probability 0.9 and arrival times with the same
// mean but different deviations (the paper's exact setup). Prints both
// output densities as a CSV series plus their moments, and a sweep over
// the deviation ratio.

#include <cstdio>

#include "core/spsta.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"
#include "report/table.hpp"
#include "stats/compare.hpp"
#include "stats/piecewise.hpp"

int main() {
  using namespace spsta;
  using netlist::GateType;

  std::printf("=== Figure 4: MAX vs WEIGHTED SUM at an AND gate ===\n");
  std::printf("inputs: signal probability 0.9, arrivals same mean 0, sigma 0.5 vs 2.0\n\n");

  netlist::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);

  // Signal probability 0.9 = P1 + Pr with a 0.1 transition share.
  netlist::SourceStats sa;
  sa.probs = {0.1, 0.8, 0.1, 0.0};
  sa.rise_arrival = {0.0, 0.25};
  netlist::SourceStats sb = sa;
  sb.rise_arrival = {0.0, 4.0};

  core::SpstaOptions opt;
  opt.grid_dt = 0.02;
  const netlist::DelayModel zero_delay(n);
  const core::SpstaNumericResult r =
      core::run_spsta_numeric(n, zero_delay, std::vector{sa, sb}, opt);

  const auto weighted = r.node[y].rise.normalized();
  const auto pa = stats::PiecewiseDensity::from_gaussian(sa.rise_arrival, r.grid);
  const auto pb = stats::PiecewiseDensity::from_gaussian(sb.rise_arrival, r.grid);
  const auto max_pdf = stats::PiecewiseDensity::max_independent(pa, pb);

  std::printf("moments:\n");
  std::printf("  WEIGHTED SUM: mass %.3f, mean %+.3f, sigma %.3f, skew %+.3f\n",
              r.node[y].rise.mass(), weighted.mean(), weighted.stddev(),
              weighted.skewness());
  std::printf("  MAX         : mass %.3f, mean %+.3f, sigma %.3f, skew %+.3f\n",
              max_pdf.mass(), max_pdf.mean(), max_pdf.stddev(), max_pdf.skewness());
  std::printf("  shape distance between them: KS %.3f, Wasserstein %.3f\n\n",
              stats::ks_distance(weighted, max_pdf),
              stats::wasserstein_distance(weighted, max_pdf));

  std::printf("series: t, weighted_sum_pdf, max_pdf\n");
  for (double t = -5.0; t <= 5.0001; t += 0.25) {
    std::printf("%.2f,%.5f,%.5f\n", t, weighted.value_at(t), max_pdf.value_at(t));
  }

  // Sweep the sigma ratio: the WEIGHTED SUM stays centered, the MAX drifts.
  std::printf("\nsweep of input sigma ratio (sigma1 = 0.5 fixed):\n");
  report::Table table({"sigma2/sigma1", "wsum mean", "wsum sigma", "max mean", "max sigma"});
  for (double ratio : {1.0, 2.0, 4.0, 8.0}) {
    netlist::SourceStats s2 = sa;
    const double sd2 = 0.5 * ratio;
    s2.rise_arrival = {0.0, sd2 * sd2};
    const core::SpstaNumericResult rr =
        core::run_spsta_numeric(n, zero_delay, std::vector{sa, s2}, opt);
    const auto w = rr.node[y].rise.normalized();
    const auto p1 = stats::PiecewiseDensity::from_gaussian(sa.rise_arrival, rr.grid);
    const auto p2 = stats::PiecewiseDensity::from_gaussian(s2.rise_arrival, rr.grid);
    const auto mx = stats::PiecewiseDensity::max_independent(p1, p2);
    table.add_row({report::Table::num(ratio, 1), report::Table::num(w.mean(), 3),
                   report::Table::num(w.stddev(), 3), report::Table::num(mx.mean(), 3),
                   report::Table::num(mx.stddev(), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The WEIGHTED SUM keeps a (near-)symmetric, centered density because\n"
              "single-input-switching scenarios dominate at P=0.9; the MAX is skewed\n"
              "upward regardless of how rarely both inputs actually switch.\n");
  return 0;
}
