// Figure 1: a VLSI timing performance distribution (solid curve) captured
// by STA in two bounds (dotted) and by SSTA in best/worst-case
// distributions (dashed). Reproduced on one benchmark circuit:
//   * "actual"      — Monte Carlo histogram of the critical endpoint's
//                      rising arrival (input statistics included),
//   * "STA bounds"  — interval STA corners,
//   * "SSTA dists"  — the min/max-separated SSTA rise (worst) and an
//                      earliest-arrival variant (best).
// Printed as a CSV series ready to plot.

#include <cstdio>

#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "ssta/ssta.hpp"
#include "stats/compare.hpp"
#include "variational/interval.hpp"

int main() {
  using namespace spsta;

  const netlist::Netlist design = netlist::make_paper_circuit("s386");
  const netlist::DelayModel delays = netlist::DelayModel::unit(design);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  // SSTA worst-case rise distribution; critical endpoint restricted to
  // ones Monte Carlo actually exercises (a never-rising endpoint is a
  // false path with no "actual" distribution to draw — the exclusion
  // Fig. 1's caption makes). SPSTA's independence assumption can over-
  // promise on reconvergent endpoints, so the prescan uses MC directly.
  const ssta::SstaResult ssta_result = ssta::run_ssta(design, delays, sc);
  mc::MonteCarloConfig prescan_cfg;
  prescan_cfg.runs = 2000;
  prescan_cfg.seed = 2;
  const mc::MonteCarloResult prescan =
      mc::run_monte_carlo(design, delays, sc, prescan_cfg);
  netlist::NodeId ep = design.timing_endpoints().front();
  double best_mean = -1e300;
  for (netlist::NodeId cand : design.timing_endpoints()) {
    if (prescan.node[cand].rise_probability() < 0.02) continue;
    if (ssta_result.arrival[cand].rise.mean > best_mean) {
      best_mean = ssta_result.arrival[cand].rise.mean;
      ep = cand;
    }
  }
  const stats::Gaussian worst = ssta_result.arrival[ep].rise;
  // "Best case" analogue: earliest endpoint arrival (min over endpoints).
  stats::Gaussian best = worst;
  for (netlist::NodeId cand : design.timing_endpoints()) {
    if (ssta_result.arrival[cand].rise.mean < best.mean) {
      best = ssta_result.arrival[cand].rise;
    }
  }

  // STA corner bounds over a 3-sigma source/delay box.
  const auto bounds = variational::interval_sta(design, delays, {-3.0, 3.0}, 3.0);

  // The actual distribution: Monte Carlo histogram at the endpoint.
  mc::MonteCarloConfig cfg;
  cfg.runs = 50000;
  cfg.seed = 1;
  cfg.histogram_node = ep;
  cfg.histogram_lo = worst.mean - 8.0;
  cfg.histogram_hi = worst.mean + 8.0;
  cfg.histogram_bins = 80;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(design, delays, sc, cfg);
  const auto actual = mcr.histogram->to_density().normalized();

  std::printf("=== Figure 1: actual distribution vs STA bounds vs SSTA ===\n");
  std::printf("circuit %s, endpoint %s\n", design.name().c_str(),
              design.node(ep).name.c_str());
  std::printf("P(rising transition) = %.3f  (STA/SSTA implicitly assume 1.0)\n",
              mcr.node[ep].rise_probability());
  std::printf("STA corner bounds: [%.2f, %.2f]\n", bounds[ep].lo, bounds[ep].hi);
  std::printf("SSTA worst-case: N(%.2f, %.2f^2); best-case: N(%.2f, %.2f^2)\n\n",
              worst.mean, worst.stddev(), best.mean, best.stddev());

  std::printf("series: t, actual_pdf(MC), ssta_worst_pdf, ssta_best_pdf\n");
  for (double t = worst.mean - 6.0; t <= worst.mean + 6.0001; t += 0.5) {
    std::printf("%.2f,%.5f,%.5f,%.5f\n", t, actual.value_at(t), worst.pdf(t),
                best.pdf(t));
  }

  // Quantify the mismatch (shape distances, conditional distributions).
  const auto ssta_pdf = stats::PiecewiseDensity::from_gaussian_auto(worst, 8.0, 801);
  std::printf("\nshape distance SSTA-worst vs actual: KS %.3f, Wasserstein %.3f\n",
              stats::ks_distance(ssta_pdf, actual),
              stats::wasserstein_distance(ssta_pdf, actual));
  std::printf("\nThe MC curve is the conditional arrival pdf; multiplied by the\n"
              "transition probability it is the t.o.p. SPSTA propagates. SSTA's\n"
              "worst-case curve is narrower (min/max shrinks sigma) and shifted —\n"
              "it neither matches nor bounds the actual distribution (paper Sec. 1).\n");
  return 0;
}
