// ECO-storm bench for the warm-edit hot path (DESIGN.md §17): randomized
// single-edit loops vs transactional batched commits vs what-if
// probe/revert storms on the incremental moment engine, over a 10k-gate
// generated circuit and the paper's s-class circuits.
//
// The two acceptance bars CI re-checks from this bench's JSON:
//   * batched commits >= 3x the equivalent single-edit loop's throughput;
//   * probe/revert >= 5x the edit-revert-by-re-propagation baseline.
// Both runs must stay bit-identical to fresh full analyses (and to each
// other across 1/2/8 propagation threads) at settle_eps = 0.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/incremental_spsta.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "stats/rng.hpp"

namespace {

using namespace spsta;
using core::IncrementalSpsta;
using netlist::NodeId;

double seconds(auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

bool same_bits(const stats::Gaussian& a, const stats::Gaussian& b) {
  return same_bits(a.mean, b.mean) && same_bits(a.var, b.var);
}

bool same_bits(const core::TransitionTop& a, const core::TransitionTop& b) {
  return same_bits(a.mass, b.mass) && same_bits(a.arrival, b.arrival) &&
         same_bits(a.third_central, b.third_central);
}

bool same_bits(const core::NodeTop& a, const core::NodeTop& b) {
  return same_bits(a.probs.p0, b.probs.p0) && same_bits(a.probs.p1, b.probs.p1) &&
         same_bits(a.probs.pr, b.probs.pr) && same_bits(a.probs.pf, b.probs.pf) &&
         same_bits(a.rise, b.rise) && same_bits(a.fall, b.fall);
}

bool same_state(const std::vector<core::NodeTop>& a,
                const std::vector<core::NodeTop>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_bits(a[i], b[i])) return false;
  }
  return true;
}

netlist::Netlist build_circuit(const std::string& name) {
  if (name == "gen10k") {
    netlist::GeneratorSpec spec;
    spec.name = "gen10k";
    spec.num_inputs = 64;
    spec.num_outputs = 32;
    spec.num_gates = 10000;
    spec.target_depth = 30;
    spec.seed = 7;
    // XOR weight keeps switching activity (and therefore non-degenerate
    // transition mass) alive through 30 levels, so edits propagate deep.
    spec.weight_xor = 1.0;
    spec.weight_xnor = 0.5;
    return netlist::generate_circuit(spec);
  }
  return netlist::make_paper_circuit(name);
}

struct CircuitRow {
  std::string name;
  std::size_t nodes = 0;
  std::size_t gates = 0;
  std::size_t endpoints = 0;
  bool identical = true;
  double single_eps = 0;           ///< single-edit loop, edits/s
  double batched_eps = 0;          ///< transactional batches, edits/s
  double single_reeval_per_edit = 0;
  double batched_reeval_per_edit = 0;
  double probe_pps = 0;            ///< what-if probes/s
  double revert_pps = 0;           ///< edit+revert by re-propagation, probes/s
  double probe_reeval = 0;         ///< nodes re-evaluated per probe
  double revert_reeval = 0;        ///< nodes re-evaluated per edit+revert
};

}  // namespace

int main(int argc, char** argv) {
  std::string circuits_arg = "gen10k,s1196,s1238";
  std::string json_path;
  std::size_t num_edits = 512;
  std::size_t batch = 32;
  std::size_t num_probes = 256;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--circuits=", 0) == 0) {
      circuits_arg = arg.substr(11);
    } else if (arg.rfind("--edits=", 0) == 0) {
      num_edits = std::stoul(arg.substr(8));
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch = std::stoul(arg.substr(8));
    } else if (arg.rfind("--probes=", 0) == 0) {
      num_probes = std::stoul(arg.substr(9));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: eco_load [--circuits=a,b] [--edits=N] [--batch=K] "
                   "[--probes=M] [--threads=T] [--json=FILE]\n");
      return 2;
    }
  }
  if (batch == 0) batch = 1;

  std::vector<std::string> circuits;
  for (std::size_t pos = 0; pos < circuits_arg.size();) {
    const std::size_t comma = circuits_arg.find(',', pos);
    const std::size_t end = comma == std::string::npos ? circuits_arg.size() : comma;
    if (end > pos) circuits.push_back(circuits_arg.substr(pos, end - pos));
    pos = end + 1;
  }

  std::printf("=== ECO storms: single edits vs transactions vs probes "
              "(%zu edits, batch %zu, %zu probes, %u threads) ===\n\n",
              num_edits, batch, num_probes, threads);
  report::Table table({"circuit", "nodes", "single e/s", "batched e/s", "speedup",
                       "probe/s", "revert/s", "speedup", "identical"});

  std::vector<CircuitRow> rows;
  bool all_identical = true;
  for (const std::string& name : circuits) {
    const netlist::Netlist design = build_circuit(name);
    const netlist::DelayModel unit = netlist::DelayModel::unit(design);
    const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
    const std::vector<NodeId> endpoints = design.timing_endpoints();

    CircuitRow row;
    row.name = name;
    row.nodes = design.node_count();
    row.gates = design.gate_count();
    row.endpoints = endpoints.size();

    std::vector<NodeId> gates;
    for (NodeId id = 0; id < design.node_count(); ++id) {
      if (netlist::is_combinational(design.node(id).type)) gates.push_back(id);
    }

    // One fixed randomized edit schedule shared by the single-edit loop and
    // the batched transactions, so both converge to the same final state.
    stats::Xoshiro256 rng(2026);
    std::vector<IncrementalSpsta::EcoEdit> edits;
    edits.reserve(num_edits);
    for (std::size_t i = 0; i < num_edits; ++i) {
      edits.push_back(IncrementalSpsta::EcoEdit::delay_edit(
          gates[rng.uniform_index(gates.size())],
          stats::Gaussian{rng.uniform(0.5, 2.0), rng.uniform(0.0, 0.01)}));
    }

    // --- Single-edit loop: one cone walk (and one endpoint read) per edit.
    IncrementalSpsta single(design, unit, sc, /*settle_eps=*/0.0);
    single.set_threads(threads);
    const double t_single = seconds([&] {
      for (std::size_t i = 0; i < edits.size(); ++i) {
        single.set_delay(edits[i].node, edits[i].delay);
        volatile double sink =
            single.node(endpoints[i % endpoints.size()]).rise.arrival.mean;
        (void)sink;
      }
    });
    row.single_eps = static_cast<double>(num_edits) / t_single;
    row.single_reeval_per_edit =
        static_cast<double>(single.nodes_reevaluated()) / static_cast<double>(num_edits);

    // --- Transactional batches: K edits merge into one frontier, one wave.
    IncrementalSpsta batched(design, unit, sc, /*settle_eps=*/0.0);
    batched.set_threads(threads);
    const double t_batched = seconds([&] {
      for (std::size_t start = 0; start < edits.size(); start += batch) {
        const std::size_t end = std::min(edits.size(), start + batch);
        batched.begin_eco();
        for (std::size_t i = start; i < end; ++i) {
          batched.set_delay(edits[i].node, edits[i].delay);
        }
        (void)batched.commit();
        for (std::size_t i = start; i < end; ++i) {
          volatile double sink =
              batched.node(endpoints[i % endpoints.size()]).rise.arrival.mean;
          (void)sink;
        }
      }
    });
    row.batched_eps = static_cast<double>(num_edits) / t_batched;
    row.batched_reeval_per_edit = static_cast<double>(batched.nodes_reevaluated()) /
                                  static_cast<double>(num_edits);

    // --- Bit-identity: both storms, a fresh full engine over the final
    // delays, and the batched storm re-run at 2 and 8 threads must agree
    // bitwise (settle_eps == 0).
    netlist::DelayModel final_delays = unit;
    for (const auto& e : edits) final_delays.set_delay(e.node, e.delay);
    IncrementalSpsta fresh(design, final_delays, sc, /*settle_eps=*/0.0);
    row.identical = same_state(single.flush(), fresh.flush()) &&
                    same_state(batched.flush(), fresh.flush());
    for (const unsigned t : {2u, 8u}) {
      IncrementalSpsta mt(design, unit, sc, /*settle_eps=*/0.0);
      mt.set_threads(t);
      for (std::size_t start = 0; start < edits.size(); start += batch) {
        const std::size_t end = std::min(edits.size(), start + batch);
        mt.begin_eco();
        for (std::size_t i = start; i < end; ++i) {
          mt.set_delay(edits[i].node, edits[i].delay);
        }
        (void)mt.commit();
      }
      row.identical = row.identical && same_state(mt.flush(), fresh.flush());
    }

    // --- Probe storm: what-if edits answered from a backward-cone wave +
    // undo log, vs the classic edit / read / revert-edit / read loop that
    // pays two full re-propagations. Targets rotate over a small endpoint
    // set (a sizer watching its critical outputs), so backward masks stay
    // memoized.
    const std::size_t watch = std::min<std::size_t>(endpoints.size(), 8);
    std::vector<IncrementalSpsta::EcoEdit> probe_edits;
    probe_edits.reserve(num_probes);
    for (std::size_t i = 0; i < num_probes; ++i) {
      probe_edits.push_back(IncrementalSpsta::EcoEdit::delay_edit(
          gates[rng.uniform_index(gates.size())],
          stats::Gaussian{rng.uniform(0.5, 2.0), 0.0}));
    }

    IncrementalSpsta prober(design, unit, sc, /*settle_eps=*/0.0);
    prober.set_threads(threads);
    const std::vector<core::NodeTop> before = prober.flush();  // copy

    // Sanity: a probe answers exactly what commit-then-query would.
    bool probes_match = true;
    for (std::size_t i = 0; i < std::min<std::size_t>(num_probes, 4); ++i) {
      const NodeId target = endpoints[i % watch];
      const auto probed = prober.probe({&probe_edits[i], 1}, {&target, 1});
      prober.set_delay(probe_edits[i].node, probe_edits[i].delay);
      probes_match =
          probes_match && same_bits(prober.node(target), probed.tops.front());
      prober.set_delay(probe_edits[i].node, stats::Gaussian{1.0, 0.0});
      (void)prober.flush();
    }
    row.identical = row.identical && probes_match &&
                    same_state(prober.flush(), before);

    const std::uint64_t reeval_before_probe = prober.nodes_reevaluated();
    const double t_probe = seconds([&] {
      for (std::size_t i = 0; i < num_probes; ++i) {
        const NodeId target = endpoints[i % watch];
        const auto probed = prober.probe({&probe_edits[i], 1}, {&target, 1});
        volatile double sink = probed.tops.front().rise.arrival.mean;
        (void)sink;
      }
    });
    row.probe_pps = static_cast<double>(num_probes) / t_probe;
    row.probe_reeval =
        static_cast<double>(prober.nodes_reevaluated() - reeval_before_probe) /
        static_cast<double>(num_probes);
    // Probes must leave the engine bitwise untouched.
    row.identical = row.identical && same_state(prober.flush(), before);

    IncrementalSpsta reverter(design, unit, sc, /*settle_eps=*/0.0);
    reverter.set_threads(threads);
    const std::uint64_t reeval_before_revert = reverter.nodes_reevaluated();
    const double t_revert = seconds([&] {
      for (std::size_t i = 0; i < num_probes; ++i) {
        const NodeId target = endpoints[i % watch];
        reverter.set_delay(probe_edits[i].node, probe_edits[i].delay);
        volatile double sink = reverter.node(target).rise.arrival.mean;
        reverter.set_delay(probe_edits[i].node, stats::Gaussian{1.0, 0.0});
        sink = reverter.node(target).rise.arrival.mean;
        (void)sink;
      }
    });
    row.revert_pps = static_cast<double>(num_probes) / t_revert;
    row.revert_reeval =
        static_cast<double>(reverter.nodes_reevaluated() - reeval_before_revert) /
        static_cast<double>(num_probes);
    row.identical = row.identical && same_state(reverter.flush(), before);

    all_identical = all_identical && row.identical;
    table.add_row({row.name, std::to_string(row.nodes),
                   report::Table::num(row.single_eps, 0),
                   report::Table::num(row.batched_eps, 0),
                   report::Table::num(row.batched_eps / std::max(row.single_eps, 1e-9), 1) + "x",
                   report::Table::num(row.probe_pps, 0),
                   report::Table::num(row.revert_pps, 0),
                   report::Table::num(row.probe_pps / std::max(row.revert_pps, 1e-9), 1) + "x",
                   row.identical ? "yes" : "NO"});
    rows.push_back(row);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("single: one cone wave + endpoint read per edit; batched: %zu-edit\n"
              "transactions (one merged wave each); probe: backward-cone wave +\n"
              "undo-log revert vs edit/read/revert/read re-propagation.\n",
              batch);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "a");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for append\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"bench\":\"eco_load\",\"edits\":%zu,\"batch\":%zu,"
                 "\"probes\":%zu,\"threads\":%u,\"identical\":%s,\"circuits\":[",
                 num_edits, batch, num_probes, threads,
                 all_identical ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CircuitRow& r = rows[i];
      std::fprintf(
          f,
          "%s{\"name\":\"%s\",\"nodes\":%zu,\"gates\":%zu,\"endpoints\":%zu,"
          "\"identical\":%s,\"single_edit_eps\":%.6g,\"batched_eps\":%.6g,"
          "\"batch_speedup\":%.3g,\"single_reeval_per_edit\":%.6g,"
          "\"batched_reeval_per_edit\":%.6g,\"probe_pps\":%.6g,"
          "\"edit_revert_pps\":%.6g,\"probe_speedup\":%.3g,"
          "\"probe_reeval_per_probe\":%.6g,\"revert_reeval_per_probe\":%.6g}",
          i ? "," : "", r.name.c_str(), r.nodes, r.gates, r.endpoints,
          r.identical ? "true" : "false", r.single_eps, r.batched_eps,
          r.batched_eps / std::max(r.single_eps, 1e-9), r.single_reeval_per_edit,
          r.batched_reeval_per_edit, r.probe_pps, r.revert_pps,
          r.probe_pps / std::max(r.revert_pps, 1e-9), r.probe_reeval,
          r.revert_reeval);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("Appended ECO trajectory to %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}
