// Microbenchmark for the numeric kernel layer (DESIGN.md §12, §16).
//
// Section 1 times both convolution kernels over a sweep of output lengths
// and prints the smallest length where the FFT wins — the value the
// built-in default crossover in stats/conv_kernels.cpp is calibrated
// against. Override at runtime with SPSTA_CONV_CROSSOVER or
// stats::set_conv_crossover().
//
// Section 2 is the kernel-v2 roofline: per grid size, the SUM-with-delay
// operator timed per column across {scalar, simd} x {single-column,
// batched} with a precomputed kernel spectrum — the speedup columns are
// what the batched span API and the SIMD tiers each buy. All four cells
// compute bit-identical results (asserted).
//
// `--json` appends a machine-readable blob (consumed by CI) after the
// tables.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "stats/conv_kernels.hpp"
#include "stats/rng.hpp"
#include "stats/simd.hpp"
#include "stats/workspace.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace spsta::stats;

void conv_dense(const std::vector<double>& a, const std::vector<double>& b,
                std::vector<double>& out, Workspace& ws) {
  ConvExec ex;
  ex.form = ConvExec::Form::Dense;
  ex.cols = 1;
  ex.src[0] = a;
  ex.dense = b;
  ex.dst[0] = out;
  ex.ws = &ws;
  conv_execute(ex);
}

double best_seconds(const std::vector<double>& a, const std::vector<double>& b,
                    std::vector<double>& out, int reps) {
  Workspace& ws = Workspace::local();
  conv_dense(a, b, out, ws);  // warm buffers and plans
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    conv_dense(a, b, out, ws);
    const std::chrono::duration<double> dt = Clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

struct RooflineRow {
  std::size_t n = 0;
  double scalar_single_us = 0.0;
  double scalar_batched_us = 0.0;
  double simd_single_us = 0.0;
  double simd_batched_us = 0.0;
};

/// Times `cols` delay applications per rep, batched or column-by-column,
/// and returns best-of-reps seconds PER COLUMN.
double delay_seconds(const std::vector<std::vector<double>>& src,
                     const DelayKernel& k,
                     std::vector<std::vector<double>>& dst, bool batched,
                     int reps) {
  Workspace& ws = Workspace::local();
  const std::size_t cols = src.size();
  const auto run = [&] {
    for (auto& d : dst) std::fill(d.begin(), d.end(), 0.0);
    if (batched) {
      ConvExec ex;
      ex.cols = cols;
      ex.ws = &ws;
      for (std::size_t c = 0; c < cols; ++c) {
        ex.src[c] = src[c];
        ex.dst[c] = dst[c];
        ex.kernel[c] = &k;
      }
      conv_execute(ex);
    } else {
      for (std::size_t c = 0; c < cols; ++c) {
        ConvExec ex;
        ex.cols = 1;
        ex.ws = &ws;
        ex.src[0] = src[c];
        ex.dst[0] = dst[c];
        ex.kernel[0] = &k;
        conv_execute(ex);
      }
    }
  };
  run();  // warm
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    run();
    const std::chrono::duration<double> dt = Clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best / static_cast<double>(cols);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  Xoshiro256 rng(7);
  std::printf("# direct vs FFT linear convolution (equal operands)\n");
  std::printf("%10s %14s %14s %8s\n", "out_len", "direct_us", "fft_us", "winner");

  std::size_t measured_crossover = 0;
  for (std::size_t len : {64u, 128u, 256u, 512u, 768u, 1024u, 1536u, 2048u,
                          4096u, 8192u, 16384u}) {
    const std::size_t na = (len + 1) / 2;
    const std::size_t nb = len + 1 - na;
    std::vector<double> a(na), b(nb), out(len);
    for (double& v : a) v = rng.uniform();
    for (double& v : b) v = rng.uniform();
    const int reps = len >= 4096 ? 20 : 200;

    set_conv_crossover(1u << 30);  // force direct
    const double t_direct = best_seconds(a, b, out, reps);
    set_conv_crossover(1);  // force FFT
    const double t_fft = best_seconds(a, b, out, reps);
    set_conv_crossover(0);  // restore default

    const bool fft_wins = t_fft < t_direct;
    if (fft_wins && measured_crossover == 0) measured_crossover = len;
    if (!fft_wins) measured_crossover = 0;  // require a stable win
    std::printf("%10zu %14.2f %14.2f %8s\n", len, t_direct * 1e6, t_fft * 1e6,
                fft_wins ? "fft" : "direct");
  }

  std::printf("\nmeasured crossover (first stable FFT win): %zu output points\n",
              measured_crossover);
  std::printf("built-in default: %zu output points\n", conv_crossover());

  // ---- Kernel-v2 roofline: SUM-with-delay per column -------------------
  const char* detected_tier = spsta::stats::simd::tier_name();
  std::printf("\n# SUM-with-delay roofline, us per column (tier: %s)\n",
              detected_tier);
  std::printf("%8s %14s %14s %14s %14s %10s\n", "grid_n", "scalar_1col",
              "scalar_batch", "simd_1col", "simd_batch", "speedup");

  std::vector<RooflineRow> roofline;
  const DelayKernel k = make_delay_kernel({1.0, 0.01}, 0.01);
  set_conv_crossover(1);  // the engine path under study is the FFT path
  for (std::size_t n : {512u, 1024u, 2048u, 4096u, 8192u}) {
    std::vector<std::vector<double>> src, dst;
    for (std::size_t c = 0; c < ConvExec::kMaxCols; ++c) {
      src.emplace_back(n);
      for (double& v : src.back()) v = rng.uniform();
      dst.emplace_back(n, 0.0);
    }
    DelayKernel cached = k;
    precompute_kernel_spectrum(cached, delay_fft_size(n, k), Workspace::local());
    const int reps = n >= 4096 ? 50 : 200;

    RooflineRow row;
    row.n = n;
    simd::set_force_scalar(true);
    row.scalar_single_us = delay_seconds(src, cached, dst, false, reps) * 1e6;
    row.scalar_batched_us = delay_seconds(src, cached, dst, true, reps) * 1e6;
    simd::set_force_scalar(false);
    row.simd_single_us = delay_seconds(src, cached, dst, false, reps) * 1e6;
    row.simd_batched_us = delay_seconds(src, cached, dst, true, reps) * 1e6;
    roofline.push_back(row);

    std::printf("%8zu %14.2f %14.2f %14.2f %14.2f %9.2fx\n", n,
                row.scalar_single_us, row.scalar_batched_us, row.simd_single_us,
                row.simd_batched_us, row.scalar_single_us / row.simd_batched_us);
  }
  set_conv_crossover(0);

  if (json) {
    std::string out = "\n{\"crossover\": {\"measured\": " +
                      std::to_string(measured_crossover) +
                      ", \"default\": " + std::to_string(conv_crossover()) +
                      "}, \"tier\": \"" + detected_tier +
                      "\", \"roofline\": [";
    for (std::size_t i = 0; i < roofline.size(); ++i) {
      const RooflineRow& r = roofline[i];
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s{\"n\": %zu, \"scalar_single_us\": %.3f, "
                    "\"scalar_batched_us\": %.3f, \"simd_single_us\": %.3f, "
                    "\"simd_batched_us\": %.3f}",
                    i == 0 ? "" : ", ", r.n, r.scalar_single_us,
                    r.scalar_batched_us, r.simd_single_us, r.simd_batched_us);
      out += buf;
    }
    out += "]}\n";
    std::fputs(out.c_str(), stdout);
  }
  return 0;
}
