// Microbenchmark for the numeric kernel layer's direct->FFT crossover
// (DESIGN.md §12). Times both convolution kernels over a sweep of output
// lengths and prints the smallest length where the FFT wins — the value
// the built-in default crossover in stats/conv_kernels.cpp is calibrated
// against. Override at runtime with SPSTA_CONV_CROSSOVER or
// stats::set_conv_crossover().

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "stats/conv_kernels.hpp"
#include "stats/rng.hpp"
#include "stats/workspace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double best_seconds(const std::vector<double>& a, const std::vector<double>& b,
                    std::vector<double>& out, int reps) {
  spsta::stats::Workspace& ws = spsta::stats::Workspace::for_this_thread();
  spsta::stats::conv_full(a, b, 1.0, out, ws);  // warm buffers and plans
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    spsta::stats::conv_full(a, b, 1.0, out, ws);
    const std::chrono::duration<double> dt = Clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

}  // namespace

int main() {
  using namespace spsta::stats;

  Xoshiro256 rng(7);
  std::printf("# direct vs FFT linear convolution (equal operands)\n");
  std::printf("%10s %14s %14s %8s\n", "out_len", "direct_us", "fft_us", "winner");

  std::size_t measured_crossover = 0;
  for (std::size_t len : {64u, 128u, 256u, 512u, 768u, 1024u, 1536u, 2048u,
                          4096u, 8192u, 16384u}) {
    const std::size_t na = (len + 1) / 2;
    const std::size_t nb = len + 1 - na;
    std::vector<double> a(na), b(nb), out(len);
    for (double& v : a) v = rng.uniform();
    for (double& v : b) v = rng.uniform();
    const int reps = len >= 4096 ? 20 : 200;

    set_conv_crossover(1u << 30);  // force direct
    const double t_direct = best_seconds(a, b, out, reps);
    set_conv_crossover(1);  // force FFT
    const double t_fft = best_seconds(a, b, out, reps);
    set_conv_crossover(0);  // restore default

    const bool fft_wins = t_fft < t_direct;
    if (fft_wins && measured_crossover == 0) measured_crossover = len;
    if (!fft_wins) measured_crossover = 0;  // require a stable win
    std::printf("%10zu %14.2f %14.2f %8s\n", len, t_direct * 1e6, t_fft * 1e6,
                fft_wins ? "fft" : "direct");
  }

  std::printf("\nmeasured crossover (first stable FFT win): %zu output points\n",
              measured_crossover);
  std::printf("built-in default: %zu output points\n", conv_crossover());
  return 0;
}
