// Ablation bench: incremental vs from-scratch SSTA under an optimization-
// style update workload — the "efficient, incremental, suitable for
// optimization" property the paper's background claims for block-based
// engines, quantified. `--json=FILE` appends a one-line trajectory record
// (table3_runtime style) so CI can track the speedups over time.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "ssta/incremental.hpp"
#include "stats/rng.hpp"

namespace {
double seconds(auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  std::string name;
  std::size_t nodes = 0;
  double full_s = 0;
  double inc_s = 0;
  double speedup = 0;
  std::uint64_t reeval = 0;
  double reeval_per_update = 0;
};
}  // namespace

int main(int argc, char** argv) {
  using namespace spsta;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: ablation_incremental [--json=FILE]\n");
      return 2;
    }
  }

  std::printf("=== Ablation: incremental vs full SSTA (100 delay updates) ===\n\n");
  report::Table table({"test", "nodes", "full x100 (s)", "incremental (s)", "speedup",
                       "nodes re-eval", "re-eval/update"});

  std::vector<Row> rows;
  for (std::string_view name : netlist::paper_circuit_names()) {
    const netlist::Netlist n = netlist::make_paper_circuit(name);
    netlist::DelayModel d = netlist::DelayModel::unit(n);
    const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

    // The update workload: random gate-delay tweaks (as a sizer would do).
    stats::Xoshiro256 rng(2024);
    std::vector<netlist::NodeId> gates;
    for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
      if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
    }
    constexpr int kUpdates = 100;
    std::vector<std::pair<netlist::NodeId, stats::Gaussian>> updates;
    for (int i = 0; i < kUpdates; ++i) {
      updates.emplace_back(gates[rng.uniform_index(gates.size())],
                           stats::Gaussian{rng.uniform(0.5, 2.0), 0.0});
    }

    // Full re-analysis per update.
    netlist::DelayModel d_full = d;
    const double t_full = seconds([&] {
      for (const auto& [id, delay] : updates) {
        d_full.set_delay(id, delay);
        volatile double sink =
            ssta::run_ssta(n, d_full, sc).arrival.back().rise.mean;
        (void)sink;
      }
    });

    // Incremental engine.
    ssta::IncrementalSsta inc(n, d, sc);
    const netlist::NodeId probe = n.timing_endpoints().front();
    const double t_inc = seconds([&] {
      for (const auto& [id, delay] : updates) {
        inc.set_delay(id, delay);
        volatile double sink = inc.arrival(probe).rise.mean;
        (void)sink;
      }
    });

    Row row;
    row.name = std::string(name);
    row.nodes = n.node_count();
    row.full_s = t_full;
    row.inc_s = t_inc;
    row.speedup = t_full / std::max(t_inc, 1e-9);
    row.reeval = inc.nodes_reevaluated();
    row.reeval_per_update = static_cast<double>(row.reeval) / kUpdates;
    rows.push_back(row);

    table.add_row({row.name, std::to_string(row.nodes),
                   report::Table::num(t_full, 4), report::Table::num(t_inc, 4),
                   report::Table::num(row.speedup, 1) + "x",
                   std::to_string(row.reeval),
                   report::Table::num(row.reeval_per_update, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Each update dirties only the changed gate's fanout cone; the\n"
              "re-eval/update column shows the cone size actually visited.\n");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "a");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for append\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"ablation_incremental\",\"updates\":100,\"circuits\":[");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"nodes\":%zu,\"full_s\":%.6g,"
                   "\"incremental_s\":%.6g,\"speedup\":%.3g,"
                   "\"nodes_reevaluated\":%llu,\"reeval_per_update\":%.6g}",
                   i ? "," : "", r.name.c_str(), r.nodes, r.full_s, r.inc_s,
                   r.speedup, static_cast<unsigned long long>(r.reeval),
                   r.reeval_per_update);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("Appended ablation trajectory to %s\n", json_path.c_str());
  }
  return 0;
}
