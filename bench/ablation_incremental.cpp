// Ablation bench: incremental vs from-scratch SSTA under an optimization-
// style update workload — the "efficient, incremental, suitable for
// optimization" property the paper's background claims for block-based
// engines, quantified.

#include <chrono>
#include <cstdio>

#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "ssta/incremental.hpp"
#include "stats/rng.hpp"

namespace {
double seconds(auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main() {
  using namespace spsta;

  std::printf("=== Ablation: incremental vs full SSTA (100 delay updates) ===\n\n");
  report::Table table({"test", "nodes", "full x100 (s)", "incremental (s)", "speedup",
                       "nodes re-eval", "re-eval/update"});

  for (std::string_view name : netlist::paper_circuit_names()) {
    const netlist::Netlist n = netlist::make_paper_circuit(name);
    netlist::DelayModel d = netlist::DelayModel::unit(n);
    const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

    // The update workload: random gate-delay tweaks (as a sizer would do).
    stats::Xoshiro256 rng(2024);
    std::vector<netlist::NodeId> gates;
    for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
      if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
    }
    constexpr int kUpdates = 100;
    std::vector<std::pair<netlist::NodeId, stats::Gaussian>> updates;
    for (int i = 0; i < kUpdates; ++i) {
      updates.emplace_back(gates[rng.uniform_index(gates.size())],
                           stats::Gaussian{rng.uniform(0.5, 2.0), 0.0});
    }

    // Full re-analysis per update.
    netlist::DelayModel d_full = d;
    const double t_full = seconds([&] {
      for (const auto& [id, delay] : updates) {
        d_full.set_delay(id, delay);
        volatile double sink =
            ssta::run_ssta(n, d_full, sc).arrival.back().rise.mean;
        (void)sink;
      }
    });

    // Incremental engine.
    ssta::IncrementalSsta inc(n, d, sc);
    const netlist::NodeId probe = n.timing_endpoints().front();
    const double t_inc = seconds([&] {
      for (const auto& [id, delay] : updates) {
        inc.set_delay(id, delay);
        volatile double sink = inc.arrival(probe).rise.mean;
        (void)sink;
      }
    });

    table.add_row({std::string(name), std::to_string(n.node_count()),
                   report::Table::num(t_full, 4), report::Table::num(t_inc, 4),
                   report::Table::num(t_full / std::max(t_inc, 1e-9), 1) + "x",
                   std::to_string(inc.nodes_reevaluated()),
                   report::Table::num(static_cast<double>(inc.nodes_reevaluated()) /
                                          kUpdates,
                                      1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Each update dirties only the changed gate's fanout cone; the\n"
              "re-eval/update column shows the cone size actually visited.\n");
  return 0;
}
