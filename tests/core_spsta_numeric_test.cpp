// Tests for the numeric (piecewise-density) SPSTA engine: consistency with
// the moment engine, full-shape recovery (paper Fig. 4), and Monte Carlo
// agreement.

#include <cmath>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::core {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(SpstaNumeric, GridCoversSourceAndStructuralSpan) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::SourceStats sc = netlist::scenario_I();
  const SpstaNumericResult r =
      run_spsta_numeric(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_LT(r.grid.t0, -6.0);             // source arrivals minus padding
  EXPECT_GT(r.grid.t_end(), 6.0 + 6.0);   // depth 6 plus padding
}

TEST(SpstaNumeric, MassMatchesProbabilities) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::SourceStats sc = netlist::scenario_I();
  const SpstaNumericResult r =
      run_spsta_numeric(n, netlist::DelayModel::unit(n), std::vector{sc});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(r.node[id].rise.mass(), r.node[id].probs.pr, 5e-3) << n.node(id).name;
    EXPECT_NEAR(r.node[id].fall.mass(), r.node[id].probs.pf, 5e-3) << n.node(id).name;
  }
}

TEST(SpstaNumeric, AgreesWithMomentEngine) {
  const Netlist n = netlist::make_paper_circuit("s344");
  const netlist::SourceStats sc = netlist::scenario_I();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const SpstaResult moment = run_spsta_moment(n, d, std::vector{sc});
  const SpstaNumericResult numeric = run_spsta_numeric(n, d, std::vector{sc});

  for (NodeId ep : n.timing_endpoints()) {
    if (moment.node[ep].rise.mass < 1e-3) continue;
    EXPECT_NEAR(numeric.node[ep].rise.mean(), moment.node[ep].rise.arrival.mean, 0.15)
        << n.node(ep).name;
    EXPECT_NEAR(numeric.node[ep].rise.stddev(), moment.node[ep].rise.arrival.stddev(),
                0.2)
        << n.node(ep).name;
  }
}

TEST(SpstaNumeric, Figure4ShapesMaxSkewedWeightedSumSymmetric) {
  // The paper's Fig. 4 in full: the numeric engine exposes the whole
  // t.o.p. curve, so we can check symmetry properties directly.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);

  netlist::SourceStats sa;
  sa.probs = {0.05, 0.85, 0.1, 0.0};
  sa.rise_arrival = {0.0, 0.25};
  netlist::SourceStats sb = sa;
  sb.rise_arrival = {0.0, 4.0};

  netlist::DelayModel zero_delay(n);
  SpstaOptions opt;
  opt.grid_dt = 0.02;
  const SpstaNumericResult r =
      run_spsta_numeric(n, zero_delay, std::vector{sa, sb}, opt);

  const auto& top = r.node[y].rise;
  const double mu = top.mean();
  EXPECT_NEAR(mu, 0.0, 0.1);  // single-switch terms dominate, centered at 0
  // Near-symmetry of the weighted sum: compare density at mu +- 1.
  const double left = top.value_at(mu - 1.0);
  const double right = top.value_at(mu + 1.0);
  EXPECT_NEAR(left, right, 0.25 * std::max(left, right));

  // Contrast: the pure MAX density is visibly asymmetric.
  const auto na = stats::PiecewiseDensity::from_gaussian(sa.rise_arrival, r.grid);
  const auto nb = stats::PiecewiseDensity::from_gaussian(sb.rise_arrival, r.grid);
  const auto mx = stats::PiecewiseDensity::max_independent(na, nb);
  const double mleft = mx.value_at(mx.mean() - 1.0);
  const double mright = mx.value_at(mx.mean() + 1.0);
  EXPECT_GT(std::abs(mleft - mright), 0.3 * std::max(mleft, mright));
}

TEST(SpstaNumeric, TracksMonteCarloShape) {
  // Beyond moments: the numeric t.o.p. cdf should track the empirical MC
  // arrival distribution at several quantile points.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, c});
  n.mark_output(g2);

  const netlist::SourceStats sc = netlist::scenario_I();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  SpstaOptions opt;
  opt.grid_dt = 0.02;
  const SpstaNumericResult r = run_spsta_numeric(n, d, std::vector{sc}, opt);

  mc::MonteCarloConfig cfg;
  cfg.runs = 200000;
  cfg.seed = 31;
  cfg.histogram_node = g2;
  cfg.histogram_lo = -6.0;
  cfg.histogram_hi = 10.0;
  cfg.histogram_bins = 160;
  const auto mcr = mc::run_monte_carlo(n, d, std::vector{sc}, cfg);
  ASSERT_TRUE(mcr.histogram.has_value());

  // Compare conditional CDFs of the rising arrival at a few time points.
  const auto spsta_pdf = r.node[g2].rise.normalized();
  const auto mc_pdf = mcr.histogram->to_density().normalized();
  for (double t : {0.0, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(spsta_pdf.cdf_at(t), mc_pdf.cdf_at(t), 0.04) << "t=" << t;
  }
}

TEST(SpstaNumeric, GridPointCapRespected) {
  const Netlist n = netlist::make_paper_circuit("s1196");
  SpstaOptions opt;
  opt.grid_dt = 0.001;  // would need tens of thousands of points
  opt.max_grid_points = 512;
  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()}, opt);
  EXPECT_LE(r.grid.n, 512u);
}

TEST(SpstaNumeric, TinyGridPointCapStaysNonDegenerate) {
  // Regression: max_grid_points < 2 used to make the dt recomputation
  // divide by n - 1 == 0, poisoning every density with inf/NaN.
  const Netlist n = netlist::make_s27();
  SpstaOptions opt;
  opt.max_grid_points = 1;
  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()}, opt);
  EXPECT_GE(r.grid.n, 2u);
  EXPECT_LE(r.grid.n, 2u);  // the (clamped) cap is authoritative
  EXPECT_GT(r.grid.dt, 0.0);
  ASSERT_TRUE(std::isfinite(r.grid.dt));
  for (const auto& node : r.node) {
    for (double v : node.rise.values()) ASSERT_TRUE(std::isfinite(v));
    for (double v : node.fall.values()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(SpstaNumeric, DegenerateSpanWidensInsteadOfCollapsing) {
  // Regression: zero-variance sources at one instant plus zero structural
  // delay made hi == lo, so the grid step collapsed to 0 (and with a cap
  // hit, to NaN). The span must widen by one step instead.
  Netlist n;
  const NodeId a = n.add_input("a");
  n.mark_output(n.add_gate(GateType::Buf, "y", {a}));
  netlist::SourceStats st;
  st.probs = {0.25, 0.25, 0.25, 0.25};
  st.rise_arrival = {0.0, 0.0};  // deterministic arrival at t = 0
  st.fall_arrival = {0.0, 0.0};
  const netlist::DelayModel zero_delay(n);  // all-zero delays

  const SpstaNumericResult r =
      run_spsta_numeric(n, zero_delay, std::vector{st});
  EXPECT_GT(r.grid.dt, 0.0);
  ASSERT_TRUE(std::isfinite(r.grid.dt));
  EXPECT_GE(r.grid.n, 2u);
  for (const auto& node : r.node) {
    for (double v : node.rise.values()) ASSERT_TRUE(std::isfinite(v));
    for (double v : node.fall.values()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(SpstaNumeric, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)run_spsta_numeric(n, netlist::DelayModel::unit(n),
                                       std::vector<netlist::SourceStats>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::core
