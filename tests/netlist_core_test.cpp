// Tests for the netlist data model and gate-type traits.

#include "netlist/netlist.hpp"

#include <tuple>

#include <gtest/gtest.h>

namespace spsta::netlist {
namespace {

Netlist tiny() {
  Netlist n("tiny");
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId g = n.add_gate(GateType::And, "g", {a, b});
  n.mark_output(g);
  return n;
}

TEST(GateType, ParseRoundTrip) {
  for (GateType t : {GateType::Buf, GateType::Not, GateType::And, GateType::Nand,
                     GateType::Or, GateType::Nor, GateType::Xor, GateType::Xnor,
                     GateType::Dff, GateType::Input}) {
    EXPECT_EQ(parse_gate_type(to_string(t)), t);
  }
  EXPECT_EQ(parse_gate_type("nand"), GateType::Nand);
  EXPECT_EQ(parse_gate_type("BUF"), GateType::Buf);
  EXPECT_EQ(parse_gate_type("bogus"), std::nullopt);
}

TEST(GateType, ControllingValues) {
  EXPECT_TRUE(has_controlling_value(GateType::And));
  EXPECT_TRUE(has_controlling_value(GateType::Nor));
  EXPECT_FALSE(has_controlling_value(GateType::Xor));
  EXPECT_FALSE(has_controlling_value(GateType::Not));
  EXPECT_FALSE(controlling_value(GateType::And));   // 0 controls AND
  EXPECT_FALSE(controlling_value(GateType::Nand));
  EXPECT_TRUE(controlling_value(GateType::Or));     // 1 controls OR
  EXPECT_TRUE(controlling_value(GateType::Nor));
}

TEST(GateType, InversionFlags) {
  EXPECT_TRUE(is_inverting(GateType::Not));
  EXPECT_TRUE(is_inverting(GateType::Nand));
  EXPECT_TRUE(is_inverting(GateType::Nor));
  EXPECT_TRUE(is_inverting(GateType::Xnor));
  EXPECT_FALSE(is_inverting(GateType::And));
  EXPECT_FALSE(is_inverting(GateType::Buf));
}

// Exhaustive two-input truth tables for every binary gate type.
class GateEval
    : public ::testing::TestWithParam<std::tuple<GateType, bool, bool, bool>> {};

TEST_P(GateEval, TwoInputTruthTable) {
  const auto [type, a, b, expected] = GetParam();
  const bool ins[2] = {a, b};
  EXPECT_EQ(eval_gate(type, ins), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateEval,
    ::testing::Values(
        std::make_tuple(GateType::And, false, false, false),
        std::make_tuple(GateType::And, false, true, false),
        std::make_tuple(GateType::And, true, false, false),
        std::make_tuple(GateType::And, true, true, true),
        std::make_tuple(GateType::Nand, false, false, true),
        std::make_tuple(GateType::Nand, true, true, false),
        std::make_tuple(GateType::Or, false, false, false),
        std::make_tuple(GateType::Or, false, true, true),
        std::make_tuple(GateType::Nor, false, false, true),
        std::make_tuple(GateType::Nor, true, false, false),
        std::make_tuple(GateType::Xor, false, true, true),
        std::make_tuple(GateType::Xor, true, true, false),
        std::make_tuple(GateType::Xnor, true, true, true),
        std::make_tuple(GateType::Xnor, false, true, false)));

TEST(GateType, WideGates) {
  const bool ins[3] = {true, true, false};
  EXPECT_FALSE(eval_gate(GateType::And, ins));
  EXPECT_TRUE(eval_gate(GateType::Or, ins));
  EXPECT_FALSE(eval_gate(GateType::Xor, ins));  // parity of two ones
  const bool all[3] = {true, true, true};
  EXPECT_TRUE(eval_gate(GateType::And, all));
  EXPECT_TRUE(eval_gate(GateType::Xor, all));
}

TEST(Netlist, BuildAndQuery) {
  const Netlist n = tiny();
  EXPECT_EQ(n.node_count(), 3u);
  EXPECT_EQ(n.gate_count(), 1u);
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_NE(n.find("g"), kInvalidNode);
  EXPECT_EQ(n.find("nope"), kInvalidNode);
  EXPECT_EQ(n.node(n.find("g")).fanins.size(), 2u);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, FanoutsMaintained) {
  const Netlist n = tiny();
  const NodeId a = n.find("a");
  ASSERT_EQ(n.node(a).fanouts.size(), 1u);
  EXPECT_EQ(n.node(a).fanouts[0], n.find("g"));
}

TEST(Netlist, RejectsDuplicateNames) {
  Netlist n;
  n.add_input("x");
  EXPECT_THROW(n.add_input("x"), std::invalid_argument);
  EXPECT_THROW(n.declare(GateType::And, "x"), std::invalid_argument);
}

TEST(Netlist, RejectsEmptyName) {
  Netlist n;
  EXPECT_THROW(n.add_input(""), std::invalid_argument);
}

TEST(Netlist, RejectsBadArity) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  EXPECT_THROW(n.add_gate(GateType::Not, "inv", {a, b}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::Dff, "ff", {a, b}), std::invalid_argument);
  EXPECT_NO_THROW(n.add_gate(GateType::Not, "inv", {a}));
}

TEST(Netlist, RejectsBadIds) {
  Netlist n;
  const NodeId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::Buf, "b", {static_cast<NodeId>(99)}),
               std::invalid_argument);
  EXPECT_THROW(n.connect(static_cast<NodeId>(99), {a}), std::invalid_argument);
  EXPECT_THROW(n.mark_output(static_cast<NodeId>(99)), std::invalid_argument);
}

TEST(Netlist, ReconnectReplacesFanins) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId g = n.add_gate(GateType::Buf, "g", {a});
  n.connect(g, {b});
  EXPECT_EQ(n.node(g).fanins[0], b);
  EXPECT_TRUE(n.node(a).fanouts.empty());
  EXPECT_EQ(n.node(b).fanouts.size(), 1u);
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist n;
  const NodeId a = n.add_input("a");
  n.mark_output(a);
  n.mark_output(a);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
}

TEST(Netlist, TimingSourcesAndEndpoints) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId q = n.declare(GateType::Dff, "q");
  const NodeId g = n.add_gate(GateType::And, "g", {a, q});
  n.connect(q, {g});  // feedback through the DFF
  n.mark_output(g);

  const auto sources = n.timing_sources();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], a);
  EXPECT_EQ(sources[1], q);
  EXPECT_TRUE(n.is_timing_source(q));
  EXPECT_FALSE(n.is_timing_source(g));

  // g is both a PO and the DFF's D input: reported once.
  const auto endpoints = n.timing_endpoints();
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_EQ(endpoints[0], g);
}

TEST(Netlist, TypeHistogram) {
  const Netlist n = tiny();
  const auto h = n.type_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::Input)], 2u);
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::And)], 1u);
}

TEST(Netlist, ValidateCatchesUnconnectedGate) {
  Netlist n;
  n.add_input("a");
  n.declare(GateType::And, "g");  // never connected
  EXPECT_THROW(n.validate(), std::logic_error);
}

}  // namespace
}  // namespace spsta::netlist
