// Tests for toggling-rate moment/correlation propagation (paper Eq. 13).

#include "core/toggle_moments.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "netlist/four_value.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::core {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(ToggleMoments, SourcesCarryScenarioMoments) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const ToggleMoments tm = propagate_toggle_moments(
      n, std::vector<double>{0.5}, std::vector<SourceToggle>{{0.5, 0.25}});
  EXPECT_DOUBLE_EQ(tm.mean(a), 0.5);
  EXPECT_DOUBLE_EQ(tm.variance(a), 0.25);
}

TEST(ToggleMoments, BufferChainPreservesMoments) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  const ToggleMoments tm = propagate_toggle_moments(
      n, std::vector<double>{0.5}, std::vector<SourceToggle>{{0.5, 0.25}});
  EXPECT_NEAR(tm.mean(prev), 0.5, 1e-12);
  EXPECT_NEAR(tm.variance(prev), 0.25, 1e-12);
  EXPECT_NEAR(tm.correlation(prev, n.find("a")), 1.0, 1e-12);
}

TEST(ToggleMoments, AndGateEquation13) {
  // y = AND(a, b), P(a)=P(b)=0.5: weights w = 0.5 each.
  // mean  = 0.5*m_a + 0.5*m_b
  // var   = 0.25*v_a + 0.25*v_b (independent sources)
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  const std::vector<SourceToggle> toggles{{0.4, 0.2}, {0.8, 0.1}};
  const ToggleMoments tm =
      propagate_toggle_moments(n, std::vector<double>{0.5}, toggles);
  EXPECT_NEAR(tm.mean(y), 0.5 * 0.4 + 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(tm.variance(y), 0.25 * 0.2 + 0.25 * 0.1, 1e-12);
  // cov(y, a) = w_a * var(a).
  EXPECT_NEAR(tm.covariance(y, a), 0.5 * 0.2, 1e-12);
}

TEST(ToggleMoments, SharedSourceInducesCorrelation) {
  // Two AND gates sharing input a: their toggle rates correlate through a.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId y1 = n.add_gate(GateType::And, "y1", {a, b});
  const NodeId y2 = n.add_gate(GateType::And, "y2", {a, c});
  const ToggleMoments tm = propagate_toggle_moments(
      n, std::vector<double>{0.5}, std::vector<SourceToggle>{{0.5, 0.25}});
  // cov(y1,y2) = w^2 var(a) = 0.25*0.25.
  EXPECT_NEAR(tm.covariance(y1, y2), 0.25 * 0.25, 1e-12);
  EXPECT_NEAR(tm.correlation(y1, y2), 0.5, 1e-12);
  // Disjoint-support gates are uncorrelated.
  const NodeId y3 = n.add_gate(GateType::And, "y3", {b, c});
  const ToggleMoments tm2 = propagate_toggle_moments(
      n, std::vector<double>{0.5}, std::vector<SourceToggle>{{0.5, 0.25}});
  EXPECT_NEAR(tm2.covariance(n.find("y3"), y3), tm2.variance(y3), 1e-12);
}

TEST(ToggleMoments, XorPassesFullDensity) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::Xor, "y", {a, b});
  const ToggleMoments tm = propagate_toggle_moments(
      n, std::vector<double>{0.5}, std::vector<SourceToggle>{{0.3, 0.1}});
  EXPECT_NEAR(tm.mean(y), 0.6, 1e-12);
  EXPECT_NEAR(tm.variance(y), 0.2, 1e-12);
}

TEST(ToggleMoments, ScenarioIIInputsMatchPaper) {
  // The paper's scenario II: 0.1 mean toggling rate, 0.09 variance.
  const Netlist n = netlist::make_s27();
  const netlist::SourceStats sc = netlist::scenario_II();
  const double toggle_mean = sc.probs.toggle_probability();
  const double toggle_var = toggle_mean * (1.0 - toggle_mean);
  const ToggleMoments tm = propagate_toggle_moments(
      n, std::vector<double>{sc.probs.final_one()},
      std::vector<SourceToggle>{{toggle_mean, toggle_var}});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_GE(tm.mean(id), 0.0);
    EXPECT_GE(tm.variance(id), 0.0);
  }
}

TEST(ToggleMoments, MismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)propagate_toggle_moments(n, std::vector<double>{0.5},
                                              std::vector<SourceToggle>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::core
