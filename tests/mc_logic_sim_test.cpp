// Tests for the four-value logic-timing simulator: Table 1 value rules
// plus the MIN/MAX settled-time semantics and glitch filtering.

#include "mc/logic_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::mc {
namespace {

using netlist::FourValue;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using enum netlist::FourValue;

SimValue sv(FourValue v, double t = 0.0) { return {v, t}; }

TEST(EvalGateTimed, AndRiseTakesMax) {
  const SimValue ins[2] = {sv(Rise, 1.0), sv(Rise, 3.0)};
  const SimValue out = eval_gate_timed(GateType::And, ins);
  EXPECT_EQ(out.value, Rise);
  EXPECT_DOUBLE_EQ(out.time, 3.0);
}

TEST(EvalGateTimed, AndFallTakesMin) {
  const SimValue ins[2] = {sv(Fall, 1.0), sv(Fall, 3.0)};
  const SimValue out = eval_gate_timed(GateType::And, ins);
  EXPECT_EQ(out.value, Fall);
  EXPECT_DOUBLE_EQ(out.time, 1.0);
}

TEST(EvalGateTimed, OrRiseTakesMin) {
  const SimValue ins[2] = {sv(Rise, 1.0), sv(Rise, 3.0)};
  const SimValue out = eval_gate_timed(GateType::Or, ins);
  EXPECT_EQ(out.value, Rise);
  EXPECT_DOUBLE_EQ(out.time, 1.0);
}

TEST(EvalGateTimed, OrFallTakesMax) {
  const SimValue ins[2] = {sv(Fall, 1.0), sv(Fall, 3.0)};
  const SimValue out = eval_gate_timed(GateType::Or, ins);
  EXPECT_EQ(out.value, Fall);
  EXPECT_DOUBLE_EQ(out.time, 3.0);
}

TEST(EvalGateTimed, StaticSideInputsPassThrough) {
  const SimValue ins[2] = {sv(One), sv(Rise, 2.0)};
  const SimValue out = eval_gate_timed(GateType::And, ins);
  EXPECT_EQ(out.value, Rise);
  EXPECT_DOUBLE_EQ(out.time, 2.0);

  const SimValue blocked[2] = {sv(Zero), sv(Rise, 2.0)};
  EXPECT_EQ(eval_gate_timed(GateType::And, blocked).value, Zero);
}

TEST(EvalGateTimed, NandInvertsDirections) {
  const SimValue ins[2] = {sv(One), sv(Rise, 2.0)};
  const SimValue out = eval_gate_timed(GateType::Nand, ins);
  EXPECT_EQ(out.value, Fall);
  EXPECT_DOUBLE_EQ(out.time, 2.0);
  // NAND output rise: first falling input decides (MIN).
  const SimValue falls[2] = {sv(Fall, 1.5), sv(Fall, 4.0)};
  const SimValue out2 = eval_gate_timed(GateType::Nand, falls);
  EXPECT_EQ(out2.value, Rise);
  EXPECT_DOUBLE_EQ(out2.time, 1.5);
}

TEST(EvalGateTimed, GlitchFilteredToConstant) {
  // r meets f at an AND: the output pulses (or stays 0) and is reported 0.
  SimRunStats stats;
  const SimValue ins[2] = {sv(Rise, 1.0), sv(Fall, 2.0)};
  const SimValue out = eval_gate_timed(GateType::And, ins, &stats);
  EXPECT_EQ(out.value, Zero);
  EXPECT_EQ(stats.glitching_gates, 1u);  // 1 -> ... -> 0? rise@1, fall@2 pulses
}

TEST(EvalGateTimed, NoGlitchWhenPulseImpossible) {
  // Fall before rise: output never leaves 0 — no glitch recorded.
  SimRunStats stats;
  const SimValue ins[2] = {sv(Rise, 3.0), sv(Fall, 1.0)};
  const SimValue out = eval_gate_timed(GateType::And, ins, &stats);
  EXPECT_EQ(out.value, Zero);
  EXPECT_EQ(stats.glitching_gates, 0u);
}

TEST(EvalGateTimed, XorSettlesAtLastEvent) {
  const SimValue ins[2] = {sv(Rise, 1.0), sv(Zero)};
  EXPECT_EQ(eval_gate_timed(GateType::Xor, ins).value, Rise);

  // Two switching inputs of opposite direction: 0^1=1 ... 1^0=1, constant
  // 1 with a pulse in between (glitch filtered).
  SimRunStats stats;
  const SimValue both[2] = {sv(Rise, 1.0), sv(Fall, 2.0)};
  const SimValue out = eval_gate_timed(GateType::Xor, both, &stats);
  EXPECT_EQ(out.value, One);
  EXPECT_EQ(stats.glitching_gates, 1u);

  // Three rising inputs: parity goes 0 -> 1 -> 0 -> 1; settles at the last.
  const SimValue three[3] = {sv(Rise, 1.0), sv(Rise, 2.0), sv(Rise, 5.0)};
  const SimValue out3 = eval_gate_timed(GateType::Xor, three, &stats);
  EXPECT_EQ(out3.value, Rise);
  EXPECT_DOUBLE_EQ(out3.time, 5.0);
}

TEST(EvalGateTimed, NotAndBuf) {
  const SimValue r[1] = {sv(Rise, 2.5)};
  const SimValue inv = eval_gate_timed(GateType::Not, r);
  EXPECT_EQ(inv.value, Fall);
  EXPECT_DOUBLE_EQ(inv.time, 2.5);
  const SimValue buf = eval_gate_timed(GateType::Buf, r);
  EXPECT_EQ(buf.value, Rise);
}

TEST(EvalGateTimed, ValueAgreesWithFourValueTable) {
  // The timed evaluator's value must equal eval_four_value on every
  // two-input combination for every gate type.
  static constexpr FourValue kAll[4] = {Zero, One, Rise, Fall};
  for (GateType t : {GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                     GateType::Xor, GateType::Xnor}) {
    for (FourValue a : kAll) {
      for (FourValue b : kAll) {
        const SimValue ins[2] = {sv(a, 1.0), sv(b, 2.0)};
        const netlist::FourValue vals[2] = {a, b};
        EXPECT_EQ(eval_gate_timed(t, ins).value, netlist::eval_four_value(t, vals))
            << to_string(t) << "(" << to_string(a) << "," << to_string(b) << ")";
      }
    }
  }
}

TEST(SimulateOnce, ChainWithUnitDelays) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Not, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Not, "b2", {b1});
  n.mark_output(b2);

  const netlist::Levelization lv = netlist::levelize(n);
  const std::vector<SimValue> srcs{sv(Rise, 0.5)};
  const std::vector<double> delays{0.0, 1.0, 1.0};
  const auto value = simulate_once(n, lv, srcs, delays);
  EXPECT_EQ(value[b1].value, Fall);
  EXPECT_DOUBLE_EQ(value[b1].time, 1.5);
  EXPECT_EQ(value[b2].value, Rise);
  EXPECT_DOUBLE_EQ(value[b2].time, 2.5);
}

TEST(SimulateOnce, ValidatesSpans) {
  const Netlist n = netlist::make_s27();
  const netlist::Levelization lv = netlist::levelize(n);
  EXPECT_THROW(
      (void)simulate_once(n, lv, std::vector<SimValue>(2),
                          std::vector<double>(n.node_count(), 1.0)),
      std::invalid_argument);
  EXPECT_THROW((void)simulate_once(n, lv, std::vector<SimValue>(7),
                                   std::vector<double>(3, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::mc
