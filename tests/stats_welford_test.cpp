// Tests for the running-moment accumulators against closed-form references.

#include "stats/welford.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace spsta::stats {
namespace {

TEST(RunningMoments, SmallKnownSample) {
  RunningMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
}

TEST(RunningMoments, SampleVarianceUsesN1) {
  RunningMoments m;
  for (double x : {1.0, 2.0, 3.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.sample_variance(), 1.0);
  EXPECT_DOUBLE_EQ(m.variance(), 2.0 / 3.0);
}

TEST(RunningMoments, DegenerateCases) {
  RunningMoments m;
  EXPECT_EQ(m.variance(), 0.0);
  m.add(5.0);
  EXPECT_EQ(m.mean(), 5.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.skewness(), 0.0);
}

TEST(RunningMoments, SkewnessOfAsymmetricSample) {
  // Exponential-ish data is right-skewed.
  RunningMoments m;
  Xoshiro256 rng(11);
  for (int i = 0; i < 100000; ++i) m.add(-std::log(1.0 - rng.uniform()));
  EXPECT_NEAR(m.mean(), 1.0, 0.02);
  EXPECT_NEAR(m.variance(), 1.0, 0.05);
  EXPECT_NEAR(m.skewness(), 2.0, 0.15);        // exponential skewness = 2
  EXPECT_NEAR(m.excess_kurtosis(), 6.0, 1.0);  // exponential excess kurtosis = 6
}

TEST(RunningMoments, MergeEqualsSequential) {
  Xoshiro256 rng(12);
  std::vector<double> data(5000);
  for (double& x : data) x = rng.normal(3.0, 2.0);

  RunningMoments all;
  for (double x : data) all.add(x);

  RunningMoments left, right;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (i < 1700 ? left : right).add(data[i]);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(left.skewness(), all.skewness(), 1e-8);
  EXPECT_NEAR(left.excess_kurtosis(), all.excess_kurtosis(), 1e-7);
}

TEST(RunningMoments, MergeWithEmpty) {
  RunningMoments a;
  a.add(1.0);
  a.add(3.0);
  RunningMoments empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningMoments b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningCovariance, PerfectlyLinearData) {
  RunningCovariance c;
  for (int i = 0; i < 100; ++i) {
    c.add(i, 2.0 * i + 1.0);
  }
  EXPECT_NEAR(c.correlation(), 1.0, 1e-12);
}

TEST(RunningCovariance, AntiCorrelated) {
  RunningCovariance c;
  for (int i = 0; i < 100; ++i) c.add(i, -3.0 * i);
  EXPECT_NEAR(c.correlation(), -1.0, 1e-12);
}

TEST(RunningCovariance, IndependentNearZero) {
  RunningCovariance c;
  Xoshiro256 rng(13);
  for (int i = 0; i < 200000; ++i) c.add(rng.normal(), rng.normal());
  EXPECT_NEAR(c.correlation(), 0.0, 0.01);
}

TEST(RunningCovariance, KnownCovariance) {
  // y = x + e with var(x)=1, var(e)=1 -> cov(x,y)=1, corr = 1/sqrt(2).
  RunningCovariance c;
  Xoshiro256 rng(14);
  for (int i = 0; i < 400000; ++i) {
    const double x = rng.normal();
    c.add(x, x + rng.normal());
  }
  EXPECT_NEAR(c.covariance(), 1.0, 0.02);
  EXPECT_NEAR(c.correlation(), 1.0 / std::sqrt(2.0), 0.01);
}

}  // namespace
}  // namespace spsta::stats
