// Tests for the batch scheduler and the serve loop: responses strictly in
// request order regardless of thread count, mutating commands as
// barriers, deadline load-shedding, and the stream loop's behavior on
// shutdown / EOF / garbage input.

#include <chrono>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/daemon.hpp"
#include "service/session.hpp"

namespace spsta::service {
namespace {

std::vector<Incoming> lines(std::initializer_list<std::string> texts) {
  std::vector<Incoming> batch;
  for (const std::string& t : texts) batch.push_back({t, std::chrono::steady_clock::now()});
  return batch;
}

TEST(ServiceScheduler, ResponsesComeBackInRequestOrder) {
  AnalysisService service;
  BatchScheduler scheduler(service, 4);

  std::vector<Incoming> batch;
  batch.push_back({R"({"id":0,"cmd":"load","circuit":"s27"})", {}});
  for (int i = 1; i <= 12; ++i) {
    batch.push_back(
        {R"({"id":)" + std::to_string(i) + R"(,"cmd":"ping"})", {}});
  }
  for (Incoming& in : batch) in.enqueued = std::chrono::steady_clock::now();

  const std::vector<Response> responses = scheduler.run(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].ok) << responses[i].to_line();
    EXPECT_EQ(responses[i].id.as_number(), static_cast<double>(i));
  }
}

TEST(ServiceScheduler, MutatingCommandsAreBarriersReadsFormParallelGroups) {
  AnalysisService service;
  BatchScheduler scheduler(service, 4);

  // [ping ping] [load] [ping ping ping] → 2 parallel groups, 1 barrier.
  const auto responses = scheduler.run(lines({
      R"({"id":1,"cmd":"ping"})",
      R"({"id":2,"cmd":"ping"})",
      R"({"id":3,"cmd":"load","circuit":"s27"})",
      R"({"id":4,"cmd":"ping"})",
      R"({"id":5,"cmd":"ping"})",
      R"({"id":6,"cmd":"ping"})",
  }));
  ASSERT_EQ(responses.size(), 6u);
  for (const Response& r : responses) EXPECT_TRUE(r.ok) << r.to_line();

  const SchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.barriers, 1u);
  EXPECT_EQ(stats.parallel_groups, 2u);
}

TEST(ServiceScheduler, GarbageLinesGetASlotAndDoNotPoisonTheBatch) {
  AnalysisService service;
  BatchScheduler scheduler(service, 2);
  const auto responses = scheduler.run(lines({
      R"({"id":1,"cmd":"ping"})",
      "}{ broken",
      R"({"id":3,"cmd":"ping"})",
  }));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_EQ(responses[1].error_code(), "parse_error");
  EXPECT_TRUE(responses[2].ok);
}

TEST(ServiceScheduler, ExpiredDeadlinesAreShedNotExecuted) {
  AnalysisService service;
  BatchScheduler scheduler(service, 2);

  Incoming stale{R"({"id":1,"cmd":"ping","deadline_ms":5})",
                 std::chrono::steady_clock::now() - std::chrono::seconds(10)};
  Incoming fresh{R"({"id":2,"cmd":"ping","deadline_ms":60000})",
                 std::chrono::steady_clock::now()};

  const auto responses = scheduler.run({stale, fresh});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].error_code(), "deadline_exceeded");
  EXPECT_TRUE(responses[1].ok);
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
  // Shed before dispatch — the queue-side counter, not the execute-side.
  EXPECT_EQ(scheduler.stats().deadline_expired_queue, 1u);
  EXPECT_EQ(scheduler.stats().deadline_expired_execute, 0u);
}

TEST(ServiceScheduler, DeadlineIsRecheckedAfterWinningTheSessionMutex) {
  // A request that was fresh at dispatch but burned its whole budget
  // waiting on same-session mutex contention must be shed at execute
  // start, and counted separately from queue-side sheds.
  AnalysisService service;
  BatchScheduler scheduler(service, 2);
  const Response loaded =
      scheduler.run_one(R"({"id":1,"cmd":"load","circuit":"s27"})");
  ASSERT_TRUE(loaded.ok) << loaded.to_line();
  const std::string key = loaded.body.find("session")->as_string();
  const std::shared_ptr<Session> session = service.store().find(key);
  ASSERT_NE(session, nullptr);

  Response contended;
  std::thread runner;
  {
    // The test plays the long-running same-session request by holding the
    // session mutex directly; the analyze below passes the dispatch-time
    // deadline check, then blocks on the mutex past its deadline. The
    // mutex is released only after the deadline has certainly lapsed.
    const std::lock_guard<std::mutex> hold(session->mutex);
    runner = std::thread([&] {
      contended = scheduler.run_one(
          R"({"id":2,"cmd":"analyze","session":")" + key +
          R"(","deadline_ms":400})");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
  }
  runner.join();
  EXPECT_FALSE(contended.ok) << contended.to_line();
  EXPECT_EQ(contended.error_code(), "deadline_exceeded");
  EXPECT_EQ(scheduler.stats().deadline_expired_execute, 1u);
  EXPECT_EQ(scheduler.stats().deadline_expired_queue, 0u);
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
}

TEST(ServiceScheduler, HistogramsArePerInstanceNotProcessGlobal)  {
  // Regression: the scheduler's latency histograms used to be function-
  // local statics, so every scheduler in the process wrote into one
  // shared pair and per-daemon stats were cross-contaminated.
  AnalysisService service_a;
  AnalysisService service_b;
  BatchScheduler active(service_a, 1);
  BatchScheduler idle(service_b, 1);

  (void)active.run_one(R"({"id":1,"cmd":"ping"})");
  (void)active.run_one(R"({"id":2,"cmd":"ping"})");

  EXPECT_EQ(active.execute_histogram().count(), 2u);
  EXPECT_EQ(active.queue_histogram().count(), 2u);
  EXPECT_EQ(idle.execute_histogram().count(), 0u);
  EXPECT_EQ(idle.queue_histogram().count(), 0u);
}

TEST(ServiceScheduler, DeterministicAcrossThreadCounts) {
  // The same batch must produce byte-identical response lines at 1 and 8
  // scheduler threads (the repo-wide determinism contract, applied to the
  // service layer).
  // Wall-clock fields (elapsed_ms) legitimately differ run to run, so the
  // comparison is on the analysis payload, not the raw lines.
  const auto run_at = [](unsigned threads) {
    AnalysisService service;
    BatchScheduler scheduler(service, threads);
    const Response loaded =
        scheduler.run_one(R"({"id":1,"cmd":"load","circuit":"s27"})");
    const std::string key = loaded.body.find("session")->as_string();
    const auto responses = scheduler.run(lines({
        R"({"id":2,"cmd":"analyze","session":")" + key + R"("})",
        R"({"id":3,"cmd":"analyze","session":")" + key + R"(","engine":"ssta"})",
        R"({"id":4,"cmd":"query","session":")" + key + R"(","node":"G17"})",
    }));
    std::vector<std::string> out;
    for (const Response& r : responses) {
      EXPECT_TRUE(r.ok) << r.to_line();
      const Json* payload = r.body.find("endpoints");
      if (payload == nullptr) payload = r.body.find("stats");
      if (payload == nullptr) {
        ADD_FAILURE() << "no payload in " << r.to_line();
        continue;
      }
      out.push_back(payload->dump());
    }
    return out;
  };
  EXPECT_EQ(run_at(1), run_at(8));
}

TEST(ServiceDaemon, ServeHandlesAScriptedSessionOverStreams) {
  std::istringstream in(
      R"({"id":1,"cmd":"load","circuit":"s27"})" "\n"
      "\n"  // blank lines are skipped, not answered
      R"({"id":2,"cmd":"stats"})" "\n"
      "total garbage\n"
      R"({"id":4,"cmd":"shutdown"})" "\n");
  std::ostringstream out;
  AnalysisService service;
  const ServeReport report = serve(in, out, service, {.threads = 2});

  EXPECT_TRUE(report.shutdown);
  EXPECT_EQ(report.requests, 4u);
  EXPECT_TRUE(service.shutdown_requested());

  // One response line per non-blank request line, in order.
  std::vector<std::string> replies;
  std::istringstream echo(out.str());
  for (std::string line; std::getline(echo, line);) replies.push_back(line);
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_NE(replies[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(replies[2].find("parse_error"), std::string::npos);
  EXPECT_NE(replies[3].find("stopping"), std::string::npos);
  // ids echo back in request order.
  EXPECT_NE(replies[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(replies[1].find("\"id\":2"), std::string::npos);
  EXPECT_NE(replies[3].find("\"id\":4"), std::string::npos);
}

TEST(ServiceDaemon, ServeStopsAtShutdownAndLeavesLaterLinesUnread) {
  std::istringstream in(
      R"({"id":1,"cmd":"ping"})" "\n"
      R"({"id":2,"cmd":"shutdown"})" "\n"
      R"({"id":3,"cmd":"ping"})" "\n");
  std::ostringstream out;
  AnalysisService service;
  // One request per batch so the shutdown barrier takes effect before
  // line 3 is ever read.
  const ServeReport report =
      serve(in, out, service, {.threads = 1, .greedy_batch = false});
  EXPECT_TRUE(report.shutdown);
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(out.str().find("\"id\":3"), std::string::npos);
}

TEST(ServiceDaemon, ServeReturnsCleanlyOnEof) {
  std::istringstream in(R"({"id":1,"cmd":"ping"})" "\n");
  std::ostringstream out;
  AnalysisService service;
  const ServeReport report = serve(in, out, service, {.threads = 1});
  EXPECT_FALSE(report.shutdown);
  EXPECT_EQ(report.requests, 1u);
  EXPECT_FALSE(service.shutdown_requested());
}

TEST(ServiceDaemon, EofMidLineStillAnswersThePartialFinalRequest) {
  // A client that dies (or a pipe that closes) after writing a request
  // but before the newline: getline yields the partial-terminated line at
  // EOF and the daemon must still answer it, not drop it.
  std::istringstream in(R"({"id":7,"cmd":"ping"})");  // no trailing \n
  std::ostringstream out;
  AnalysisService service;
  const ServeReport report = serve(in, out, service, {.threads = 1});
  EXPECT_FALSE(report.shutdown);
  EXPECT_EQ(report.requests, 1u);
  EXPECT_NE(out.str().find("\"id\":7"), std::string::npos);
  EXPECT_NE(out.str().find("\"ok\":true"), std::string::npos);
}

TEST(ServiceDaemon, OversizedLineIsRejectedStructurallyNotParsed) {
  // A line beyond kMaxRequestBytes is answered with bad_request before
  // the JSON parser ever allocates for it, and the daemon keeps serving.
  std::string huge = R"({"id":1,"cmd":"ping","pad":")";
  huge.append(kMaxRequestBytes, 'x');
  huge += "\"}\n";
  huge += R"({"id":2,"cmd":"ping"})" "\n";
  std::istringstream in(huge);
  std::ostringstream out;
  AnalysisService service;
  const ServeReport report = serve(in, out, service, {.threads = 1});
  EXPECT_EQ(report.requests, 2u);

  std::vector<std::string> replies;
  std::istringstream echo(out.str());
  for (std::string line; std::getline(echo, line);) replies.push_back(line);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_NE(replies[0].find("bad_request"), std::string::npos) << replies[0];
  EXPECT_NE(replies[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(replies[1].find("\"id\":2"), std::string::npos);
  EXPECT_NE(replies[1].find("\"ok\":true"), std::string::npos);
}

TEST(ServiceDaemon, BlankOnlyInputProducesNoResponsesAndReturnsCleanly) {
  std::istringstream in("\n   \n\t\n\r\n\n");
  std::ostringstream out;
  AnalysisService service;
  const ServeReport report = serve(in, out, service, {.threads = 1});
  EXPECT_FALSE(report.shutdown);
  EXPECT_EQ(report.requests, 0u);
  EXPECT_EQ(report.batches, 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(ServiceDaemon, ShutdownLandingBehindAParallelGroupAnswersEveryRequest) {
  // One greedy batch: [analyze analyze ping] then the shutdown barrier.
  // Every request ahead of the barrier must be answered before the daemon
  // stops — shutdown drains, it does not abandon in-flight work.
  AnalysisService service;
  std::ostringstream out;
  std::string body = R"({"id":0,"cmd":"load","circuit":"s27"})" "\n";
  std::istringstream key_in(body);
  std::ostringstream key_out;
  (void)serve(key_in, key_out, service, {.threads = 2});
  const std::string key_line = key_out.str();
  const std::size_t at = key_line.find("\"session\":\"");
  ASSERT_NE(at, std::string::npos);
  const std::string key = key_line.substr(at + 11, 16);

  std::string run;
  for (int i = 1; i <= 3; ++i) {
    run += R"({"id":)" + std::to_string(i) + R"(,"cmd":"analyze","session":")" +
           key + R"(","engine":"ssta"})" "\n";
  }
  run += R"({"id":4,"cmd":"shutdown"})" "\n";
  std::istringstream in(run);
  const ServeReport report = serve(in, out, service, {.threads = 4});

  EXPECT_TRUE(report.shutdown);
  EXPECT_EQ(report.requests, 4u);
  std::vector<std::string> replies;
  std::istringstream echo(out.str());
  for (std::string line; std::getline(echo, line);) replies.push_back(line);
  ASSERT_EQ(replies.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(replies[static_cast<std::size_t>(i)].find(
                  "\"id\":" + std::to_string(i + 1)),
              std::string::npos);
    EXPECT_NE(replies[static_cast<std::size_t>(i)].find("\"ok\":true"),
              std::string::npos)
        << replies[static_cast<std::size_t>(i)];
  }
}

}  // namespace
}  // namespace spsta::service
