// Tests for incremental SSTA: results must match a from-scratch run after
// any sequence of updates, while visiting only the affected cone.

#include "ssta/incremental.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "stats/rng.hpp"

namespace spsta::ssta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

void expect_same(const std::vector<NodeArrival>& a, const SstaResult& b,
                 const Netlist& n) {
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(a[id].rise.mean, b.arrival[id].rise.mean, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].rise.var, b.arrival[id].rise.var, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].fall.mean, b.arrival[id].fall.mean, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].fall.var, b.arrival[id].fall.var, 1e-12) << n.node(id).name;
  }
}

TEST(IncrementalSsta, InitialStateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSsta inc(n, d, sc);
  expect_same(inc.flush(), run_ssta(n, d, sc), n);
  EXPECT_EQ(inc.nodes_reevaluated(), 0u);  // nothing dirtied yet
}

TEST(IncrementalSsta, DelayUpdateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s344");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSsta inc(n, d, sc);

  // Slow down one mid-circuit gate.
  NodeId target = netlist::kInvalidNode;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type) && !n.node(id).fanouts.empty()) {
      target = id;
      break;
    }
  }
  ASSERT_NE(target, netlist::kInvalidNode);
  inc.set_delay(target, {2.5, 0.09});
  d.set_delay(target, {2.5, 0.09});
  expect_same(inc.flush(), run_ssta(n, d, sc), n);
}

TEST(IncrementalSsta, UpdateVisitsOnlyFanoutCone) {
  const Netlist n = netlist::make_paper_circuit("s1196");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSsta inc(n, d, sc);

  // Change a gate near the outputs: only a small cone should re-evaluate.
  const NodeId deep = n.timing_endpoints().front();
  inc.set_delay(deep, {1.5, 0.0});
  (void)inc.flush();
  EXPECT_GT(inc.nodes_reevaluated(), 0u);
  EXPECT_LT(inc.nodes_reevaluated(), n.node_count() / 4)
      << "incremental update should touch a small fraction of "
      << n.node_count() << " nodes";
}

TEST(IncrementalSsta, NoopUpdateReevaluatesNothing) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSsta inc(n, d, std::vector{netlist::scenario_I()});
  const NodeId some_gate = n.timing_endpoints().front();
  inc.set_delay(some_gate, d.delay(some_gate));  // unchanged value
  (void)inc.flush();
  EXPECT_EQ(inc.nodes_reevaluated(), 0u);
}

TEST(IncrementalSsta, SourceArrivalUpdateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s386");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<netlist::SourceStats> sc(n.timing_sources().size(),
                                       netlist::scenario_I());
  IncrementalSsta inc(n, d, sc);

  inc.set_source_arrival(2, {0.5, 2.0}, {-0.5, 0.5});
  sc[2].rise_arrival = {0.5, 2.0};
  sc[2].fall_arrival = {-0.5, 0.5};
  expect_same(inc.flush(), run_ssta(n, d, sc), n);
}

TEST(IncrementalSsta, RandomUpdateSequenceStaysConsistent) {
  const Netlist n = netlist::make_paper_circuit("s526");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSsta inc(n, d, sc);

  stats::Xoshiro256 rng(606);
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }
  for (int step = 0; step < 25; ++step) {
    const NodeId g = gates[rng.uniform_index(gates.size())];
    const stats::Gaussian delay{rng.uniform(0.5, 2.0), rng.uniform(0.0, 0.1)};
    inc.set_delay(g, delay);
    d.set_delay(g, delay);
    if (step % 5 == 4) {  // interleave queries with updates
      expect_same(inc.flush(), run_ssta(n, d, sc), n);
    }
  }
  expect_same(inc.flush(), run_ssta(n, d, sc), n);
  // The incremental engine must have done less work than 25 full passes.
  EXPECT_LT(inc.nodes_reevaluated(), 25u * n.node_count());
}

TEST(IncrementalSsta, ArrivalQueryTriggersLazyUpdate) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSsta inc(n, d, std::vector{netlist::scenario_I()});
  const NodeId ep = n.timing_endpoints().front();
  const double before = inc.arrival(ep).rise.mean;
  // Make every gate slower through the endpoint's fanin.
  inc.set_delay(ep, {3.0, 0.0});
  const double after = inc.arrival(ep).rise.mean;
  EXPECT_NEAR(after, before + 2.0, 1e-9);
}

TEST(IncrementalSsta, Validation) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSsta inc(n, d, std::vector{netlist::scenario_I()});
  EXPECT_THROW(inc.set_delay(static_cast<NodeId>(9999), {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(inc.set_source_arrival(99, {0.0, 1.0}, {0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((IncrementalSsta(n, d, std::vector<netlist::SourceStats>(3))),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::ssta
