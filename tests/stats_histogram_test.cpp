// Tests for the Monte Carlo histogram.

#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace spsta::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
  EXPECT_THROW((void)h.bin_center(10), std::out_of_range);
}

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.0);  // exactly on the edge goes to the upper bin
  h.add(3.999);
  h.add(-1.0);  // underflow
  h.add(4.0);   // overflow (half-open range)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, DensityIntegratesToInRangeFraction) {
  Histogram h(-4.0, 4.0, 64);
  Xoshiro256 rng(17);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) h.add(rng.normal());
  const PiecewiseDensity d = h.to_density();
  const double in_range =
      static_cast<double>(h.total() - h.underflow() - h.overflow()) / h.total();
  EXPECT_NEAR(d.mass(), in_range, 0.02);
  EXPECT_NEAR(d.mean(), 0.0, 0.02);
  EXPECT_NEAR(d.variance(), 1.0, 0.05);
}

}  // namespace
}  // namespace spsta::stats
