// End-to-end integration tests over the full benchmark suite: the paper's
// qualitative claims must reproduce on the generated ISCAS'89-class
// circuits (DESIGN.md §5 documents the substitution).

#include <cmath>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "report/experiment.hpp"
#include "ssta/path_ssta.hpp"

namespace spsta {
namespace {

// Shared fixture: run the pipeline once per circuit (scenario I, modest
// MC budget to keep the test fast but statistically meaningful).
class SuiteExperiment : public ::testing::TestWithParam<const char*> {
 protected:
  report::CircuitExperiment run(std::uint64_t mc_runs = 4000) {
    report::ExperimentConfig cfg;
    cfg.mc_runs = mc_runs;
    return report::run_paper_experiment(netlist::make_paper_circuit(GetParam()), cfg);
  }
};

TEST_P(SuiteExperiment, AllEnginesProduceFiniteResults) {
  const report::CircuitExperiment e = run(1000);
  for (const report::DirectionRow* row : {&e.rise, &e.fall}) {
    EXPECT_TRUE(std::isfinite(row->spsta_mu));
    EXPECT_TRUE(std::isfinite(row->spsta_sigma));
    EXPECT_TRUE(std::isfinite(row->ssta_mu));
    EXPECT_TRUE(std::isfinite(row->mc_mu));
    EXPECT_GE(row->spsta_p, 0.0);
    EXPECT_LE(row->spsta_p, 1.0);
  }
}

TEST_P(SuiteExperiment, SignalProbabilityWithinPaperBallpark) {
  // The paper reports SPSTA signal probabilities within 14.28% of MC; on
  // our circuits the mean absolute error should be of that order.
  const report::CircuitExperiment e = run(4000);
  EXPECT_LT(e.signal_prob_error, 0.15) << GetParam();
}

TEST_P(SuiteExperiment, SstaIsFasterThanMcAndSpstaIsComparable) {
  const report::CircuitExperiment e = run(4000);
  // 4K MC runs must cost much more than either analytic engine (Table 3's
  // point, scaled down).
  EXPECT_GT(e.runtime.mc_seconds, 3.0 * e.runtime.spsta_seconds) << GetParam();
  EXPECT_GT(e.runtime.mc_seconds, 3.0 * e.runtime.ssta_seconds) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperCircuits, SuiteExperiment,
                         ::testing::Values("s208", "s298", "s344", "s382", "s386",
                                           "s526"));

TEST(SuiteWide, SpstaSigmaBeatsSstaSigmaOverall) {
  // The headline comparison (Table 2 aggregate): across circuits, SPSTA's
  // sigma tracks MC far better than SSTA's, and its mean error is
  // comparable or better.
  std::vector<report::DirectionRow> rows;
  for (const char* name : {"s208", "s298", "s344", "s382", "s526"}) {
    report::ExperimentConfig cfg;
    cfg.mc_runs = 4000;
    const report::CircuitExperiment e =
        report::run_paper_experiment(netlist::make_paper_circuit(name), cfg);
    rows.push_back(e.rise);
    rows.push_back(e.fall);
  }
  const report::ErrorSummary s = summarize_errors(rows);
  ASSERT_GT(s.rows_sigma, 0u);
  EXPECT_LT(s.spsta_sigma, s.ssta_sigma)
      << "SPSTA sigma error " << s.spsta_sigma << " vs SSTA " << s.ssta_sigma;
  EXPECT_LT(s.spsta_mu, 0.25);
  EXPECT_LT(s.spsta_sigma, 0.5);
}

TEST(SuiteWide, ScenarioIIChangesSpstaButNotSsta) {
  // Paper observation 1: SSTA results are independent of input statistics,
  // SPSTA's are not.
  const netlist::Netlist n = netlist::make_paper_circuit("s344");
  report::ExperimentConfig cfg1;
  cfg1.mc_runs = 500;
  report::ExperimentConfig cfg2 = cfg1;
  cfg2.scenario = netlist::scenario_II();
  const report::CircuitExperiment e1 = report::run_paper_experiment(n, cfg1);
  const report::CircuitExperiment e2 = report::run_paper_experiment(n, cfg2);
  EXPECT_DOUBLE_EQ(e1.rise.ssta_mu, e2.rise.ssta_mu);
  EXPECT_DOUBLE_EQ(e1.rise.ssta_sigma, e2.rise.ssta_sigma);
  EXPECT_NE(e1.rise.spsta_p, e2.rise.spsta_p);
}

TEST(SuiteWide, PathSstaCriticalitiesFormDistribution) {
  const netlist::Netlist n = netlist::make_paper_circuit("s386");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const ssta::PathSstaResult r = ssta::run_path_ssta(n, d, {0.0, 1.0}, 5);
  ASSERT_GE(r.paths.size(), 2u);
  double total = 0.0;
  for (const auto& p : r.paths) {
    EXPECT_GE(p.criticality, 0.0);
    EXPECT_LE(p.criticality, 1.0 + 1e-9);
    total += p.criticality;
  }
  EXPECT_NEAR(total, 1.0, 0.05);
  // The max-delay distribution sits at or above every single path mean.
  for (const auto& p : r.paths) {
    EXPECT_GE(r.max_delay.mean, p.delay.mean - 1e-9);
  }
}

}  // namespace
}  // namespace spsta
