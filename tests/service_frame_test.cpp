// Tests for the length-prefixed binary frame codec (DESIGN.md §15):
// encode/decode round trips, bit-exact waveform payloads, the 8 MiB cap
// enforced from the header alone, EOF-mid-frame detection, and recovery
// after malformed frames — a bad frame must never desynchronize the
// stream or kill the decoder.

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/frame.hpp"

namespace spsta::service {
namespace {

void append_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

Frame decode_one(const std::string& wire) {
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::Ready);
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame;
}

TEST(ServiceFrame, JsonFrameRoundTrips) {
  const std::string payload = R"({"id":1,"cmd":"ping"})";
  const Frame frame = decode_one(encode_frame(FrameKind::Json, payload));
  EXPECT_EQ(frame.kind, FrameKind::Json);
  EXPECT_EQ(frame.payload, payload);
}

TEST(ServiceFrame, WaveformRoundTripsBitExactly) {
  // Values chosen to break any text round trip that is not shortest-form:
  // denormals, an exact negative zero, irrational-looking doubles.
  const std::vector<double> samples = {
      0.0, -0.0, 1.0 / 3.0, 6.02214076e23, std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(), -123.45678901234567,
      std::numeric_limits<double>::max()};
  std::string wire;
  append_waveform_frame(wire, samples);
  const Frame frame = decode_one(wire);
  ASSERT_EQ(frame.kind, FrameKind::Waveform);
  const std::vector<double> decoded = decode_waveform(frame.payload);
  ASSERT_EQ(decoded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Bitwise comparison: NaN-safe and distinguishes -0.0 from 0.0.
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &samples[i], sizeof(a));
    std::memcpy(&b, &decoded[i], sizeof(b));
    EXPECT_EQ(a, b) << "sample " << i;
  }
}

TEST(ServiceFrame, ByteByByteFeedingYieldsTheSameFrames) {
  std::string wire;
  append_frame(wire, FrameKind::Json, "first");
  append_waveform_frame(wire, std::vector<double>{1.5, -2.5});
  append_frame(wire, FrameKind::Json, "second");

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : wire) {
    decoder.feed(std::string_view(&byte, 1));
    Frame frame;
    while (decoder.next(frame) == FrameDecoder::Status::Ready) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "first");
  EXPECT_EQ(frames[1].kind, FrameKind::Waveform);
  EXPECT_EQ(decode_waveform(frames[1].payload), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(frames[2].payload, "second");
}

TEST(ServiceFrame, PayloadExactlyAtTheCapIsAccepted) {
  // length = 1 (kind) + payload; the cap applies to the payload.
  const std::string payload(kMaxRequestBytes, 'x');
  const Frame frame = decode_one(encode_frame(FrameKind::Json, payload));
  EXPECT_EQ(frame.payload.size(), kMaxRequestBytes);
}

TEST(ServiceFrame, PayloadOneOverTheCapIsABadFrameAndRecoverable) {
  std::string wire = encode_frame(FrameKind::Json, std::string(kMaxRequestBytes + 1, 'x'));
  append_frame(wire, FrameKind::Json, "after");

  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::BadFrame);
  EXPECT_NE(decoder.error().find("exceeds"), std::string::npos) << decoder.error();
  // The stream stays in sync: the next frame decodes normally.
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::Ready);
  EXPECT_EQ(frame.payload, "after");
}

TEST(ServiceFrame, OversizedFrameIsDiscardedWithoutBuffering) {
  // Feed the oversized frame in chunks: the decoder must never hold more
  // than a chunk — the cap is enforced BEFORE payload allocation.
  const std::uint32_t huge = 64u << 20;  // 64 MiB claimed
  std::string header;
  append_u32_le(header, huge);
  header.push_back('\0');  // kind byte

  FrameDecoder decoder;
  decoder.feed(header);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::NeedMore);
  const std::string chunk(1 << 16, 'z');
  std::uint64_t sent = 1;  // the kind byte counts toward `len`
  while (sent < huge) {
    const std::size_t take = std::min<std::uint64_t>(chunk.size(), huge - sent);
    decoder.feed(std::string_view(chunk).substr(0, take));
    sent += take;
    EXPECT_LE(decoder.buffered(), chunk.size());
    if (sent < huge) {
      EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::NeedMore);
    }
  }
  // Fully consumed: exactly one BadFrame, then clean.
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::BadFrame);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::NeedMore);
  decoder.feed(encode_frame(FrameKind::Json, "ok"));
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::Ready);
  EXPECT_EQ(frame.payload, "ok");
}

TEST(ServiceFrame, ZeroLengthFrameIsABadFrame) {
  std::string wire(4, '\0');  // length 0: no kind byte, invalid
  append_frame(wire, FrameKind::Json, "next");
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::BadFrame);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::Ready);
  EXPECT_EQ(frame.payload, "next");
}

TEST(ServiceFrame, UnknownKindIsABadFrameAndRecoverable) {
  std::string wire;
  append_u32_le(wire, 3);
  wire.push_back(0x7f);  // unknown kind
  wire.append("ab");
  append_frame(wire, FrameKind::Json, "next");
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::BadFrame);
  EXPECT_NE(decoder.error().find("kind"), std::string::npos) << decoder.error();
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::Ready);
  EXPECT_EQ(frame.payload, "next");
}

TEST(ServiceFrame, WaveformPayloadMustBeAMultipleOf8) {
  std::string wire;
  append_u32_le(wire, 1 + 7);  // kind + 7 payload bytes
  wire.push_back(0x01);
  wire.append(7, 'q');
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::BadFrame);
}

TEST(ServiceFrame, EofMidFrameIsObservable) {
  const std::string wire = encode_frame(FrameKind::Json, "truncated payload");
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.mid_frame());
  decoder.feed(std::string_view(wire).substr(0, wire.size() - 3));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::NeedMore);
  // Header seen, payload incomplete: an EOF now means the peer died
  // mid-frame, which transports report differently from a clean close.
  EXPECT_TRUE(decoder.mid_frame());
  decoder.feed(std::string_view(wire).substr(wire.size() - 3));
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::Ready);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(ServiceFrame, EmptyWaveformIsValid) {
  std::string wire;
  append_waveform_frame(wire, std::vector<double>{});
  const Frame frame = decode_one(wire);
  EXPECT_EQ(frame.kind, FrameKind::Waveform);
  EXPECT_TRUE(decode_waveform(frame.payload).empty());
}

}  // namespace
}  // namespace spsta::service
