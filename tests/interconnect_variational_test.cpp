// Tests for variational Elmore delay: canonical sensitivities vs direct
// perturbation and Monte Carlo sampling of wire-width variation.

#include "interconnect/variational_elmore.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::interconnect {
namespace {

TEST(VariationalElmore, NominalMatchesElmore) {
  const RcTree wire = uniform_wire(1000.0, 2e-12, 8, 1e-12);
  const RcNodeId sink = static_cast<RcNodeId>(wire.node_count() - 1);
  const auto form = variational_elmore(wire, sink, WireVariation{});
  EXPECT_DOUBLE_EQ(form.nominal(), wire.elmore_delay(sink));
}

TEST(VariationalElmore, SharedParameterMatchesScaledTree) {
  // With one shared parameter, evaluating the form at dW = x must match
  // the Elmore delay of the tree with R,C scaled accordingly (first
  // order: exact for Elmore since T is bilinear and we perturb linearly;
  // second-order term is r_sens*c_sens*x^2, small for small x).
  WireVariation v;
  v.r_sensitivity = -0.08;
  v.c_sensitivity = 0.12;
  const RcTree wire = uniform_wire(500.0, 1e-12, 6);
  const RcNodeId sink = static_cast<RcNodeId>(wire.node_count() - 1);
  const auto form = variational_elmore(wire, sink, v);

  const double x = 0.5;
  RcTree scaled = wire;
  for (RcNodeId i = 1; i < wire.node_count(); ++i) {
    scaled.set_resistance(i, wire.resistance(i) * (1.0 + v.r_sensitivity * x));
    scaled.set_capacitance(i, wire.capacitance(i) * (1.0 + v.c_sensitivity * x));
  }
  const std::vector<double> at{x};
  const double second_order = std::abs(v.r_sensitivity * v.c_sensitivity) * x * x *
                              wire.elmore_delay(sink);
  EXPECT_NEAR(form.evaluate(at), scaled.elmore_delay(sink), second_order * 1.1 + 1e-18);
}

TEST(VariationalElmore, WiderWireTradeoff) {
  // With |c_sens| > |r_sens| a global width increase slows the wire.
  WireVariation v;
  v.r_sensitivity = -0.05;
  v.c_sensitivity = 0.15;
  const RcTree wire = uniform_wire(100.0, 1e-12, 4);
  const RcNodeId sink = static_cast<RcNodeId>(wire.node_count() - 1);
  const auto form = variational_elmore(wire, sink, v);
  EXPECT_GT(form.sensitivity(0), 0.0);
}

TEST(VariationalElmore, PerSegmentVarianceSmallerThanShared) {
  // Independent per-segment variation partially cancels: sigma is smaller
  // than the fully correlated (shared) case with the same local sigmas.
  WireVariation shared;
  shared.per_segment = false;
  WireVariation local = shared;
  local.per_segment = true;

  const RcTree wire = uniform_wire(1000.0, 2e-12, 10);
  const RcNodeId sink = static_cast<RcNodeId>(wire.node_count() - 1);
  const auto f_shared = variational_elmore(wire, sink, shared);
  const auto f_local = variational_elmore(wire, sink, local);
  EXPECT_LT(f_local.variance(), f_shared.variance());
  EXPECT_GT(f_local.variance(), 0.0);
  EXPECT_DOUBLE_EQ(f_local.nominal(), f_shared.nominal());
}

TEST(VariationalElmore, MatchesMonteCarloSampling) {
  WireVariation v;
  v.r_sensitivity = -0.1;
  v.c_sensitivity = 0.15;
  v.per_segment = true;
  const RcTree wire = uniform_wire(800.0, 1.5e-12, 5, 0.5e-12);
  const RcNodeId sink = static_cast<RcNodeId>(wire.node_count() - 1);
  const auto form = variational_elmore(wire, sink, v);

  stats::Xoshiro256 rng(123);
  stats::RunningMoments mom;
  for (int run = 0; run < 60000; ++run) {
    RcTree sample = wire;
    for (RcNodeId i = 1; i < wire.node_count(); ++i) {
      const double dw = rng.normal();
      sample.set_resistance(
          i, std::max(0.0, wire.resistance(i) * (1.0 + v.r_sensitivity * dw)));
      sample.set_capacitance(
          i, std::max(0.0, wire.capacitance(i) * (1.0 + v.c_sensitivity * dw)));
    }
    mom.add(sample.elmore_delay(sink));
  }
  // First-order form: mean matches to the (small) second-order bias, and
  // sigma to a few percent.
  EXPECT_NEAR(form.mean(), mom.mean(), 0.02 * form.mean());
  EXPECT_NEAR(std::sqrt(form.variance()), mom.stddev(), 0.05 * mom.stddev());
}

}  // namespace
}  // namespace spsta::interconnect
