// Tests for netlist transformations, each validated by BDD equivalence
// checking against the original design.

#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include "bdd/equivalence.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"

namespace spsta::netlist {
namespace {

void expect_equivalent(const Netlist& a, const Netlist& b) {
  const bdd::EquivalenceResult r = bdd::check_equivalence(a, b);
  EXPECT_TRUE(r.failure_reason.empty()) << r.failure_reason;
  EXPECT_TRUE(r.equivalent) << "mismatch at output " << r.counterexample_output;
}

Netlist wide_gate_circuit() {
  Netlist n("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(n.add_input("i" + std::to_string(i)));
  const NodeId a = n.add_gate(GateType::Nand, "wide_nand", ins);
  std::vector<NodeId> more{a};
  for (int i = 0; i < 6; ++i) more.push_back(ins[i]);
  const NodeId b = n.add_gate(GateType::Xor, "wide_xor", more);
  n.mark_output(b);
  return n;
}

TEST(Decompose, RespectsFaninLimitAndPreservesFunction) {
  const Netlist original = wide_gate_circuit();
  TransformStats stats;
  const Netlist reduced = decompose_wide_gates(original, 3, &stats);
  EXPECT_GT(stats.gates_added, 0u);
  for (NodeId id = 0; id < reduced.node_count(); ++id) {
    EXPECT_LE(reduced.node(id).fanins.size(), 3u) << reduced.node(id).name;
  }
  expect_equivalent(original, reduced);
}

TEST(Decompose, BinaryLimit) {
  const Netlist original = wide_gate_circuit();
  const Netlist reduced = decompose_wide_gates(original, 2);
  for (NodeId id = 0; id < reduced.node_count(); ++id) {
    EXPECT_LE(reduced.node(id).fanins.size(), 2u);
  }
  expect_equivalent(original, reduced);
}

TEST(Decompose, NoopWhenAlreadyNarrow) {
  const Netlist original = make_s27();
  TransformStats stats;
  const Netlist copy = decompose_wide_gates(original, 4, &stats);
  EXPECT_EQ(stats.gates_added, 0u);
  EXPECT_EQ(copy.node_count(), original.node_count());
  expect_equivalent(original, copy);
}

TEST(Decompose, RejectsBadLimit) {
  EXPECT_THROW((void)decompose_wide_gates(make_s27(), 1), std::invalid_argument);
}

TEST(Decompose, SequentialCircuitPreserved) {
  const Netlist original = make_paper_circuit("s298");
  const Netlist reduced = decompose_wide_gates(original, 2);
  expect_equivalent(original, reduced);
  EXPECT_EQ(reduced.dffs().size(), original.dffs().size());
}

TEST(SweepBuffers, RemovesBuffersKeepsFunction) {
  Netlist n("bufs");
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Buf, "b2", {b1});
  const NodeId inv1 = n.add_gate(GateType::Not, "inv1", {b});
  const NodeId inv2 = n.add_gate(GateType::Not, "inv2", {inv1});
  const NodeId y = n.add_gate(GateType::And, "y", {b2, inv2});
  n.mark_output(y);

  TransformStats stats;
  const Netlist swept = sweep_buffers(n, &stats);
  EXPECT_EQ(stats.gates_bypassed, 3u);  // b1, b2, inv2(-inv1 pair)
  EXPECT_EQ(swept.find("b1"), kInvalidNode);
  EXPECT_EQ(swept.find("inv2"), kInvalidNode);
  // y now consumes a and... inv1 still exists but y uses b directly.
  const NodeId sy = swept.find("y");
  ASSERT_NE(sy, kInvalidNode);
  EXPECT_EQ(swept.node(sy).fanins[0], swept.find("a"));
  EXPECT_EQ(swept.node(sy).fanins[1], swept.find("b"));
  expect_equivalent(n, swept);
}

TEST(SweepBuffers, KeepsPrimaryOutputBuffers) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId buf = n.add_gate(GateType::Buf, "obuf", {a});
  n.mark_output(buf);
  const Netlist swept = sweep_buffers(n);
  EXPECT_NE(swept.find("obuf"), kInvalidNode);
  expect_equivalent(n, swept);
}

TEST(SweepBuffers, SuiteCircuitEquivalent) {
  const Netlist original = make_paper_circuit("s344");
  TransformStats stats;
  const Netlist swept = sweep_buffers(original, &stats);
  EXPECT_GT(stats.gates_bypassed, 0u);  // the generator emits buffers
  EXPECT_LT(swept.node_count(), original.node_count());
  expect_equivalent(original, swept);
}

TEST(PropagateConstants, FoldsThroughGates) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId one = n.add_gate(GateType::Const1, "one", {});
  const NodeId zero = n.add_gate(GateType::Const0, "zero", {});
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, one});       // = a
  const NodeId g2 = n.add_gate(GateType::And, "g2", {b, zero});      // = 0
  const NodeId g3 = n.add_gate(GateType::Or, "g3", {g1, g2});        // = a
  const NodeId g4 = n.add_gate(GateType::Xor, "g4", {g3, one});      // = !a
  n.mark_output(g4);

  TransformStats stats;
  const Netlist folded = propagate_constants(n, &stats);
  EXPECT_GT(stats.constants_folded, 0u);
  expect_equivalent(n, folded);
  // g4 reduced to an inverter of a.
  const NodeId fg4 = folded.find("g4");
  ASSERT_NE(fg4, kInvalidNode);
  EXPECT_EQ(folded.node(fg4).type, GateType::Not);
}

TEST(PropagateConstants, ConstantOutputMaterialized) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId zero = n.add_gate(GateType::Const0, "zero", {});
  const NodeId y = n.add_gate(GateType::And, "y", {a, zero});
  n.mark_output(y);
  const Netlist folded = propagate_constants(n);
  const NodeId fy = folded.find("y");
  ASSERT_NE(fy, kInvalidNode);
  EXPECT_EQ(folded.node(fy).type, GateType::Const0);
  expect_equivalent(n, folded);
}

TEST(PropagateConstants, NoConstantsIsIdentity) {
  const Netlist original = make_s27();
  TransformStats stats;
  const Netlist folded = propagate_constants(original, &stats);
  EXPECT_EQ(stats.constants_folded, 0u);
  EXPECT_EQ(folded.node_count(), original.node_count());
  expect_equivalent(original, folded);
}

TEST(Equivalence, DetectsRealDifferenceWithCounterexample) {
  Netlist a("m");
  const NodeId x = a.add_input("x");
  const NodeId y = a.add_input("y");
  a.mark_output(a.add_gate(GateType::And, "out", {x, y}));

  Netlist b("m");
  const NodeId x2 = b.add_input("x");
  const NodeId y2 = b.add_input("y");
  b.mark_output(b.add_gate(GateType::Or, "out", {x2, y2}));

  const bdd::EquivalenceResult r = bdd::check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.counterexample_output, "out");
  ASSERT_TRUE(r.counterexample.has_value());
  // The counterexample must actually distinguish AND from OR.
  const auto& cex = *r.counterexample;
  ASSERT_EQ(cex.size(), 2u);
  const bool and_val = cex[0] && cex[1];
  const bool or_val = cex[0] || cex[1];
  EXPECT_NE(and_val, or_val);
}

TEST(Equivalence, RejectsIncomparableDesigns) {
  Netlist a;
  a.add_input("x");
  Netlist b;
  b.add_input("different");
  const bdd::EquivalenceResult r = bdd::check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(Equivalence, RoundTripPipelines) {
  // bench -> verilog -> bench keeps every function (uses the generator so
  // the circuit has nontrivial structure).
  GeneratorSpec spec;
  spec.name = "pipe";
  spec.num_inputs = 5;
  spec.num_outputs = 3;
  spec.num_dffs = 2;
  spec.num_gates = 40;
  spec.target_depth = 5;
  spec.seed = 31;
  const Netlist original = generate_circuit(spec);
  const Netlist chained =
      decompose_wide_gates(sweep_buffers(original), 2);
  expect_equivalent(original, chained);
}

}  // namespace
}  // namespace spsta::netlist
