// Tests for RC trees and Elmore/second-moment delay metrics, against
// closed forms for ladders and hand-computed trees.

#include "interconnect/rc_tree.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace spsta::interconnect {
namespace {

TEST(RcTree, SingleLumpRc) {
  RcTree t;
  const RcNodeId n1 = t.add_node(0, "n1", 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.elmore_delay(n1), 100.0 * 1e-12);
  EXPECT_DOUBLE_EQ(t.total_capacitance(), 1e-12);
}

TEST(RcTree, TwoSectionLadderHandComputed) {
  // drv -R1- n1(C1) -R2- n2(C2):
  //   T(n1) = R1*(C1+C2);  T(n2) = R1*(C1+C2) + R2*C2.
  RcTree t;
  const RcNodeId n1 = t.add_node(0, "n1", 1.0, 2.0);
  const RcNodeId n2 = t.add_node(n1, "n2", 3.0, 4.0);
  EXPECT_DOUBLE_EQ(t.elmore_delay(n1), 1.0 * (2.0 + 4.0));
  EXPECT_DOUBLE_EQ(t.elmore_delay(n2), 1.0 * 6.0 + 3.0 * 4.0);
}

TEST(RcTree, BranchingSharedResistance) {
  //        +- n2 (C=1)
  // drv -R=2- n1 (C=0)
  //        +- n3 (C=5)
  RcTree t;
  const RcNodeId n1 = t.add_node(0, "n1", 2.0, 0.0);
  const RcNodeId n2 = t.add_node(n1, "n2", 1.0, 1.0);
  const RcNodeId n3 = t.add_node(n1, "n3", 4.0, 5.0);
  // T(n2) = 2*(1+5) + 1*1 = 13; the sibling's C loads only shared R.
  EXPECT_DOUBLE_EQ(t.elmore_delay(n2), 13.0);
  EXPECT_DOUBLE_EQ(t.elmore_delay(n3), 2.0 * 6.0 + 4.0 * 5.0);
}

TEST(RcTree, UniformWireQuadraticScaling) {
  // Distributed RC: Elmore at the end of an n-section ladder of total
  // R, C approaches RC/2 * (1 + 1/n); exact: sum_{i=1..n} (iR/n)(C/n)
  // = RC (n+1)/(2n).
  for (std::size_t sections : {1u, 4u, 16u, 64u}) {
    const RcTree t = uniform_wire(1000.0, 2e-12, sections);
    const RcNodeId sink = static_cast<RcNodeId>(t.node_count() - 1);
    const double n = static_cast<double>(sections);
    const double expected = 1000.0 * 2e-12 * (n + 1.0) / (2.0 * n);
    EXPECT_NEAR(t.elmore_delay(sink), expected, 1e-18) << sections;
  }
}

TEST(RcTree, LoadCapAddsLinearly) {
  const RcTree bare = uniform_wire(100.0, 1e-12, 8);
  const RcTree loaded = uniform_wire(100.0, 1e-12, 8, 3e-12);
  const RcNodeId sink = static_cast<RcNodeId>(bare.node_count() - 1);
  // The extra load sees the full wire resistance.
  EXPECT_NEAR(loaded.elmore_delay(sink) - bare.elmore_delay(sink), 100.0 * 3e-12,
              1e-18);
}

TEST(RcTree, SecondMomentAndD2m) {
  // Single lump: m1 = RC, m2 = (RC)^2, D2M = ln2 * RC — the exact 50%
  // delay of a single-pole response.
  RcTree t;
  const RcNodeId n1 = t.add_node(0, "n1", 2.0, 3.0);
  const double rc = 6.0;
  EXPECT_DOUBLE_EQ(t.second_moment(n1), rc * rc);
  EXPECT_NEAR(t.d2m_delay(n1), M_LN2 * rc, 1e-12);
  // Distributed wire, far sink: the true 50% delay is ~0.38 RC; Elmore's
  // 0.5 RC overestimates and D2M should land near the truth.
  const RcTree wire = uniform_wire(1000.0, 2e-12, 64);
  const RcNodeId sink = static_cast<RcNodeId>(wire.node_count() - 1);
  const double rc_total = 1000.0 * 2e-12;
  EXPECT_LT(wire.d2m_delay(sink), wire.elmore_delay(sink));
  EXPECT_NEAR(wire.d2m_delay(sink), 0.38 * rc_total, 0.02 * rc_total);
}

TEST(RcTree, ElmoreSensitivitiesMatchFiniteDifference) {
  RcTree t;
  const RcNodeId n1 = t.add_node(0, "n1", 2.0, 1.0);
  const RcNodeId n2 = t.add_node(n1, "n2", 1.0, 2.0);
  const RcNodeId n3 = t.add_node(n1, "n3", 4.0, 0.5);
  (void)n3;

  const auto sens = t.elmore_sensitivities(n2);
  const double base = t.elmore_delay(n2);
  const double h = 1e-7;

  RcTree tr = t;
  tr.set_resistance(n1, 2.0 + h);
  EXPECT_NEAR(sens.d_dr[n1], (tr.elmore_delay(n2) - base) / h, 1e-4);

  RcTree tc = t;
  tc.set_capacitance(n3, 0.5 + h);
  EXPECT_NEAR(sens.d_dc[n3], (tc.elmore_delay(n2) - base) / h, 1e-4);
  // Off-path resistance has zero sensitivity.
  EXPECT_EQ(sens.d_dr[n3], 0.0);
}

TEST(RcTree, Validation) {
  RcTree t;
  EXPECT_THROW((void)t.add_node(99, "x", 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_node(0, "x", -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)t.elmore_delay(42), std::invalid_argument);
  EXPECT_THROW((void)uniform_wire(1.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace spsta::interconnect
