// Tests for topological levelization, including DFF loop breaking and
// combinational cycle detection.

#include "netlist/levelize.hpp"

#include <gtest/gtest.h>

namespace spsta::netlist {
namespace {

TEST(Levelize, ChainDepth) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 5; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  const Levelization lv = levelize(n);
  EXPECT_EQ(lv.depth, 5u);
  EXPECT_EQ(lv.order.size(), 6u);
  EXPECT_EQ(lv.level[n.find("a")], 0u);
  EXPECT_EQ(lv.level[n.find("b4")], 5u);
}

TEST(Levelize, FaninsPrecedeInOrder) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, a});
  const Levelization lv = levelize(n);
  std::vector<std::size_t> pos(n.node_count());
  for (std::size_t i = 0; i < lv.order.size(); ++i) pos[lv.order[i]] = i;
  EXPECT_LT(pos[a], pos[g1]);
  EXPECT_LT(pos[b], pos[g1]);
  EXPECT_LT(pos[g1], pos[g2]);
}

TEST(Levelize, LevelIsMaxFaninPlusOne) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Buf, "b2", {b1});
  const NodeId g = n.add_gate(GateType::And, "g", {a, b2});
  const Levelization lv = levelize(n);
  EXPECT_EQ(lv.level[g], 3u);  // 1 + max(0, 2)
}

TEST(Levelize, DffBreaksSequentialLoop) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId q = n.declare(GateType::Dff, "q");
  const NodeId g = n.add_gate(GateType::Nand, "g", {a, q});
  n.connect(q, {g});
  const Levelization lv = levelize(n);
  EXPECT_EQ(lv.level[q], 0u);  // DFF output is a source
  EXPECT_EQ(lv.level[g], 1u);
  EXPECT_EQ(lv.depth, 1u);
}

TEST(Levelize, DetectsCombinationalCycle) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g1 = n.declare(GateType::And, "g1");
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, a});
  n.connect(g1, {g2, a});  // g1 <-> g2 combinational loop
  EXPECT_THROW(levelize(n), std::logic_error);
}

TEST(Levelize, ConstantsAreSources) {
  Netlist n;
  const NodeId c = n.add_gate(GateType::Const1, "one", {});
  const NodeId b = n.add_gate(GateType::Buf, "b", {c});
  const Levelization lv = levelize(n);
  EXPECT_EQ(lv.level[c], 0u);
  EXPECT_EQ(lv.level[b], 1u);
}

TEST(Levelize, EmptyNetlist) {
  Netlist n;
  const Levelization lv = levelize(n);
  EXPECT_TRUE(lv.order.empty());
  EXPECT_EQ(lv.depth, 0u);
}

}  // namespace
}  // namespace spsta::netlist
