// Tests for timing-yield computation from SPSTA t.o.p. densities,
// validated against the Monte Carlo empirical yield.

#include "core/yield.hpp"

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::core {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Yield, MonotoneAndBounded) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const SpstaNumericResult r =
      run_spsta_numeric(n, d, std::vector{netlist::scenario_I()});

  double prev = -1.0;
  for (const YieldPoint& p : yield_curve(n, r, -2.0, 15.0, 35)) {
    EXPECT_GE(p.yield, 0.0);
    EXPECT_LE(p.yield, 1.0);
    EXPECT_GE(p.yield, prev - 1e-9) << "yield must not decrease with period";
    prev = p.yield;
  }
  // Large enough period: every transition met -> yield 1.
  EXPECT_NEAR(timing_yield(n, r, 100.0), 1.0, 1e-6);
}

TEST(Yield, QuietEndpointAlwaysMeetsTiming) {
  // Inputs that never transition: unit yield at any period.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  n.mark_output(n.add_gate(GateType::And, "y", {a, b}));
  netlist::SourceStats quiet;
  quiet.probs = {0.5, 0.5, 0.0, 0.0};
  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{quiet});
  EXPECT_NEAR(timing_yield(n, r, -100.0), 1.0, 1e-9);
}

TEST(Yield, MatchesMonteCarloOnTreeCircuit) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId y = n.add_gate(GateType::Or, "y", {g1, c});
  n.mark_output(y);

  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  SpstaOptions opt;
  opt.grid_dt = 0.02;
  const SpstaNumericResult r = run_spsta_numeric(n, d, sc, opt);

  mc::MonteCarloConfig cfg;
  cfg.runs = 100000;
  cfg.seed = 42;
  cfg.track_circuit_max = true;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, sc, cfg);

  for (double period : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    EXPECT_NEAR(timing_yield(n, r, period), mcr.empirical_yield(period), 0.02)
        << "period " << period;
  }
}

TEST(Yield, PeriodForYieldInvertsCurve) {
  const Netlist n = netlist::make_paper_circuit("s344");
  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  const double t95 = period_for_yield(n, r, 0.95, -2.0, 30.0);
  EXPECT_GE(timing_yield(n, r, t95), 0.95 - 1e-6);
  EXPECT_LT(timing_yield(n, r, t95 - 0.2), 0.97);
  // Unreachable target returns the upper bound.
  EXPECT_EQ(period_for_yield(n, r, 2.0, -2.0, 30.0), 30.0);
}

TEST(MonteCarlo, CircuitMaxTracking) {
  const Netlist n = netlist::make_s27();
  mc::MonteCarloConfig cfg;
  cfg.runs = 5000;
  cfg.seed = 3;
  cfg.track_circuit_max = true;
  const mc::MonteCarloResult r = mc::run_monte_carlo(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()}, cfg);
  EXPECT_EQ(r.circuit_max.count() + r.quiet_runs, cfg.runs);
  EXPECT_TRUE(std::is_sorted(r.circuit_max_samples.begin(),
                             r.circuit_max_samples.end()));
  EXPECT_EQ(r.empirical_yield(1e9), 1.0);
  EXPECT_NEAR(r.empirical_yield(-1e9),
              static_cast<double>(r.quiet_runs) / cfg.runs, 1e-12);
}

}  // namespace
}  // namespace spsta::core
