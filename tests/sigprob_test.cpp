// Tests for two-value signal probability engines: independent topological
// propagation (paper Eq. 5), exact BDD evaluation, and the divergence
// between them on reconvergent logic.

#include "sigprob/signal_prob.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "sigprob/exact_bdd.hpp"
#include "stats/rng.hpp"

namespace spsta::sigprob {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(GateProbability, ClosedForms) {
  const std::vector<double> p{0.3, 0.5};
  EXPECT_NEAR(gate_output_probability(GateType::And, p), 0.15, 1e-12);
  EXPECT_NEAR(gate_output_probability(GateType::Nand, p), 0.85, 1e-12);
  EXPECT_NEAR(gate_output_probability(GateType::Or, p), 0.65, 1e-12);
  EXPECT_NEAR(gate_output_probability(GateType::Nor, p), 0.35, 1e-12);
  EXPECT_NEAR(gate_output_probability(GateType::Xor, p), 0.5, 1e-12);
  EXPECT_NEAR(gate_output_probability(GateType::Not, std::vector<double>{0.3}), 0.7, 1e-12);
  EXPECT_NEAR(gate_output_probability(GateType::Const1, {}), 1.0, 1e-12);
}

// Closed forms must match brute-force enumeration for every gate type and
// random input probabilities.
class GateProbabilitySweep
    : public ::testing::TestWithParam<std::tuple<GateType, std::size_t, std::uint64_t>> {};

TEST_P(GateProbabilitySweep, ClosedFormEqualsEnumeration) {
  const auto [type, fanin, seed] = GetParam();
  stats::Xoshiro256 rng(seed);
  std::vector<double> p(fanin);
  for (double& x : p) x = rng.uniform();
  EXPECT_NEAR(gate_output_probability(type, p),
              gate_output_probability_enumerated(type, p), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateProbabilitySweep,
    ::testing::Combine(::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor),
                       ::testing::Values<std::size_t>(1, 2, 3, 5, 8),
                       ::testing::Values<std::uint64_t>(3, 7, 11)));

TEST(SignalProbability, TreePropagation) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, c});
  const std::vector<double> src{0.5, 0.5, 0.5};
  const std::vector<double> p = propagate_signal_probabilities(n, src);
  EXPECT_NEAR(p[g1], 0.25, 1e-12);
  EXPECT_NEAR(p[g2], 0.25 + 0.5 - 0.125, 1e-12);
}

TEST(SignalProbability, BroadcastSingleSource) {
  const Netlist n = netlist::make_s27();
  const std::vector<double> one{0.5};
  const std::vector<double> p = propagate_signal_probabilities(n, one);
  EXPECT_EQ(p.size(), n.node_count());
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_GE(p[id], 0.0);
    EXPECT_LE(p[id], 1.0);
  }
}

TEST(SignalProbability, SourceCountMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)propagate_signal_probabilities(n, std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

TEST(SignalProbability, IndependentMatchesExactOnTrees) {
  // Without reconvergence the independence assumption is exact.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId d = n.add_input("d");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Nor, "g2", {c, d});
  const NodeId g3 = n.add_gate(GateType::Xor, "g3", {g1, g2});
  n.mark_output(g3);

  const std::vector<double> src{0.2, 0.7, 0.4, 0.9};
  const std::vector<double> approx = propagate_signal_probabilities(n, src);
  const ExactSignalProbabilities exact = exact_signal_probabilities(n, src);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    ASSERT_TRUE(exact.probability[id].has_value());
    EXPECT_NEAR(approx[id], *exact.probability[id], 1e-12) << n.node(id).name;
  }
}

TEST(SignalProbability, IndependentDivergesOnReconvergence) {
  // y = a AND (NOT a) is identically 0, but independent propagation says
  // P = p(1-p) > 0. The exact engine must get 0.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  const NodeId y = n.add_gate(GateType::And, "y", {a, inv});
  n.mark_output(y);

  const std::vector<double> src{0.5};
  const std::vector<double> approx = propagate_signal_probabilities(n, src);
  const ExactSignalProbabilities exact = exact_signal_probabilities(n, src);
  EXPECT_NEAR(approx[y], 0.25, 1e-12);
  ASSERT_TRUE(exact.probability[y].has_value());
  EXPECT_NEAR(*exact.probability[y], 0.0, 1e-12);
}

TEST(SignalProbability, ExactMatchesEnumerationOnS27) {
  const Netlist n = netlist::make_s27();
  const auto sources = n.timing_sources();
  stats::Xoshiro256 rng(5);
  std::vector<double> src(sources.size());
  for (double& p : src) p = rng.uniform(0.1, 0.9);

  const ExactSignalProbabilities exact = exact_signal_probabilities(n, src);

  // Brute force over all 2^7 source assignments using the BDD-free path:
  // reuse the independent engine on *deterministic* inputs (0/1 sources),
  // where independence is trivially exact.
  std::vector<double> expected(n.node_count(), 0.0);
  for (std::size_t mask = 0; mask < (1u << 7); ++mask) {
    std::vector<double> point(sources.size());
    double w = 1.0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const bool one = (mask >> i) & 1u;
      point[i] = one ? 1.0 : 0.0;
      w *= one ? src[i] : 1.0 - src[i];
    }
    const std::vector<double> val = propagate_signal_probabilities(n, point);
    for (NodeId id = 0; id < n.node_count(); ++id) expected[id] += w * val[id];
  }
  for (NodeId id = 0; id < n.node_count(); ++id) {
    ASSERT_TRUE(exact.probability[id].has_value());
    EXPECT_NEAR(*exact.probability[id], expected[id], 1e-10) << n.node(id).name;
  }
}

}  // namespace
}  // namespace spsta::sigprob
