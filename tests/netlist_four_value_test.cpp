// Tests for the four-value logic: the paper's Table 1 must fall out of the
// initial/final evaluation semantics, including glitch filtering.

#include "netlist/four_value.hpp"

#include <tuple>

#include <gtest/gtest.h>

namespace spsta::netlist {
namespace {

using enum FourValue;

TEST(FourValue, InitialFinalDecomposition) {
  EXPECT_FALSE(initial_value(Zero));
  EXPECT_FALSE(final_value(Zero));
  EXPECT_TRUE(initial_value(One));
  EXPECT_TRUE(final_value(One));
  EXPECT_FALSE(initial_value(Rise));
  EXPECT_TRUE(final_value(Rise));
  EXPECT_TRUE(initial_value(Fall));
  EXPECT_FALSE(final_value(Fall));
  for (FourValue v : {Zero, One, Rise, Fall}) {
    EXPECT_EQ(from_initial_final(initial_value(v), final_value(v)), v);
  }
}

// Paper Table 1, AND column-by-column.
class AndTable : public ::testing::TestWithParam<std::tuple<FourValue, FourValue, FourValue>> {};

TEST_P(AndTable, MatchesPaper) {
  const auto [a, b, expected] = GetParam();
  const FourValue ins[2] = {a, b};
  EXPECT_EQ(eval_four_value(GateType::And, ins), expected);
  // AND is symmetric.
  const FourValue swapped[2] = {b, a};
  EXPECT_EQ(eval_four_value(GateType::And, swapped), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AndTable,
    ::testing::Values(std::make_tuple(Zero, Zero, Zero), std::make_tuple(Zero, One, Zero),
                      std::make_tuple(Zero, Rise, Zero), std::make_tuple(Zero, Fall, Zero),
                      std::make_tuple(One, One, One), std::make_tuple(One, Rise, Rise),
                      std::make_tuple(One, Fall, Fall),
                      std::make_tuple(Rise, Rise, Rise),   // r AND r = r (MAX timing)
                      std::make_tuple(Rise, Fall, Zero),   // glitch filtered to 0
                      std::make_tuple(Fall, Fall, Fall))); // f AND f = f (MIN timing)

// Paper Table 1, OR.
class OrTable : public ::testing::TestWithParam<std::tuple<FourValue, FourValue, FourValue>> {};

TEST_P(OrTable, MatchesPaper) {
  const auto [a, b, expected] = GetParam();
  const FourValue ins[2] = {a, b};
  EXPECT_EQ(eval_four_value(GateType::Or, ins), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, OrTable,
    ::testing::Values(std::make_tuple(Zero, Zero, Zero), std::make_tuple(Zero, One, One),
                      std::make_tuple(Zero, Rise, Rise), std::make_tuple(Zero, Fall, Fall),
                      std::make_tuple(One, One, One), std::make_tuple(One, Rise, One),
                      std::make_tuple(One, Fall, One),
                      std::make_tuple(Rise, Rise, Rise),
                      std::make_tuple(Rise, Fall, One),   // glitch filtered to 1
                      std::make_tuple(Fall, Fall, Fall)));

TEST(FourValue, InvertingGatesSwapDirections) {
  const FourValue one_rise[2] = {One, Rise};
  EXPECT_EQ(eval_four_value(GateType::Nand, one_rise), Fall);
  const FourValue zero_rise[2] = {Zero, Rise};
  EXPECT_EQ(eval_four_value(GateType::Nor, zero_rise), Fall);
  const FourValue rise[1] = {Rise};
  EXPECT_EQ(eval_four_value(GateType::Not, rise), Fall);
  EXPECT_EQ(eval_four_value(GateType::Buf, rise), Rise);
}

TEST(FourValue, XorSemantics) {
  const FourValue rr[2] = {Rise, Rise};
  EXPECT_EQ(eval_four_value(GateType::Xor, rr), Zero);  // 0^0 -> 1^1: pulse filtered
  const FourValue rf[2] = {Rise, Fall};
  EXPECT_EQ(eval_four_value(GateType::Xor, rf), One);   // 0^1 -> 1^0: stays 1
  const FourValue r0[2] = {Rise, Zero};
  EXPECT_EQ(eval_four_value(GateType::Xor, r0), Rise);
  const FourValue r1[2] = {Rise, One};
  EXPECT_EQ(eval_four_value(GateType::Xor, r1), Fall);
}

TEST(FourValue, ThreeInputAnd) {
  const FourValue ins[3] = {One, Rise, Rise};
  EXPECT_EQ(eval_four_value(GateType::And, ins), Rise);
  const FourValue mixed[3] = {One, Rise, Fall};
  EXPECT_EQ(eval_four_value(GateType::And, mixed), Zero);
}

TEST(FourValueProbs, HelpersAndValidity) {
  const FourValueProbs p{0.75, 0.15, 0.02, 0.08};
  EXPECT_TRUE(p.is_valid());
  EXPECT_DOUBLE_EQ(p.signal_probability(), 0.17);   // final-one convention
  EXPECT_DOUBLE_EQ(p.average_one(), 0.20);          // the paper's 0.2
  EXPECT_DOUBLE_EQ(p.toggle_probability(), 0.10);   // the paper's 0.1
  EXPECT_DOUBLE_EQ(p.initial_one(), 0.23);
  EXPECT_DOUBLE_EQ(p.prob(FourValue::Rise), 0.02);
}

TEST(FourValueProbs, InvalidDetected) {
  EXPECT_FALSE((FourValueProbs{0.5, 0.5, 0.5, 0.5}.is_valid()));
  EXPECT_FALSE((FourValueProbs{-0.1, 0.6, 0.3, 0.2}.is_valid()));
}

TEST(FourValueProbs, NormalizedClampsAndScales) {
  const FourValueProbs p = FourValueProbs{-0.5, 2.0, 1.0, 1.0}.normalized();
  EXPECT_TRUE(p.is_valid(1e-12));
  EXPECT_DOUBLE_EQ(p.p0, 0.0);
  EXPECT_DOUBLE_EQ(p.p1, 0.5);
  // All-zero input degrades to uniform.
  const FourValueProbs u = FourValueProbs{0.0, 0.0, 0.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(u.p0, 0.25);
}

TEST(Scenarios, MatchThePaper) {
  const SourceStats s1 = scenario_I();
  EXPECT_DOUBLE_EQ(s1.probs.p0, 0.25);
  EXPECT_DOUBLE_EQ(s1.probs.toggle_probability(), 0.5);
  EXPECT_DOUBLE_EQ(s1.probs.average_one(), 0.5);
  EXPECT_DOUBLE_EQ(s1.rise_arrival.mean, 0.0);
  EXPECT_DOUBLE_EQ(s1.rise_arrival.var, 1.0);

  const SourceStats s2 = scenario_II();
  EXPECT_DOUBLE_EQ(s2.probs.p0, 0.75);
  EXPECT_DOUBLE_EQ(s2.probs.p1, 0.15);
  EXPECT_DOUBLE_EQ(s2.probs.pr, 0.02);
  EXPECT_DOUBLE_EQ(s2.probs.pf, 0.08);
  EXPECT_DOUBLE_EQ(s2.probs.toggle_probability(), 0.1);
  // The paper: "0.2 signal probability, 0.1 mean toggling rate, 0.09
  // variance of toggling rate".
  EXPECT_DOUBLE_EQ(s2.probs.average_one(), 0.2);
  const double toggle_var = s2.probs.toggle_probability() * (1.0 - s2.probs.toggle_probability());
  EXPECT_DOUBLE_EQ(toggle_var, 0.09);
}

}  // namespace
}  // namespace spsta::netlist
