// Analyzer facade contract (spsta_api.hpp): request validation rejects
// options the selected engine cannot honor (instead of silently ignoring
// them — the old SpstaOptions doc/behavior mismatch), typed report
// accessors reject wrong-engine access, every engine dispatched through
// the facade is bit-identical to its legacy entry point, and ECO edits
// invalidate the compiled plan exactly when they must.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "spsta_api.hpp"

namespace spsta {
namespace {

using netlist::NodeId;

netlist::Netlist test_circuit() {
  netlist::GeneratorSpec spec;
  spec.name = "api";
  spec.num_inputs = 10;
  spec.num_outputs = 4;
  spec.num_gates = 80;
  spec.target_depth = 6;
  spec.seed = 7;
  return netlist::generate_circuit(spec);
}

TEST(SpstaApi, EngineNamesRoundTrip) {
  for (const Engine e : {Engine::SpstaMoment, Engine::SpstaNumeric,
                         Engine::Canonical, Engine::Ssta, Engine::Mc}) {
    const std::optional<Engine> parsed = parse_engine(to_string(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
  EXPECT_FALSE(parse_engine("bogus").has_value());
  EXPECT_FALSE(parse_engine("").has_value());
}

// Satellite of the doc/behavior mismatch fix: the moment engine used to
// silently ignore the grid fields of SpstaOptions; through the facade a
// request that sets an option its engine cannot honor is an error.
TEST(SpstaApi, ValidateRejectsOptionsTheEngineCannotHonor) {
  AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  request.grid_dt = 0.1;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::Ssta;
  request.grid_pad_sigma = 4.0;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::Canonical;
  request.max_grid_points = 512;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::Ssta;
  request.runs = 1000;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::SpstaNumeric;
  request.seed = 3;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::SpstaMoment;
  request.track_circuit_max = true;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  // The same options on their own engines are fine; threads everywhere.
  request = {};
  request.engine = Engine::SpstaNumeric;
  request.grid_dt = 0.1;
  request.grid_pad_sigma = 4.0;
  request.max_grid_points = 512;
  request.threads = 4;
  EXPECT_NO_THROW(Analyzer::validate(request));

  request = {};
  request.engine = Engine::Mc;
  request.runs = 1000;
  request.seed = 3;
  request.track_circuit_max = true;
  EXPECT_NO_THROW(Analyzer::validate(request));
}

TEST(SpstaApi, ValidateRejectsOutOfRangeValues) {
  AnalysisRequest request;
  request.engine = Engine::SpstaNumeric;
  request.grid_dt = 0.0;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::SpstaNumeric;
  request.grid_pad_sigma = -1.0;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);

  request = {};
  request.engine = Engine::SpstaNumeric;
  request.max_grid_points = 1;
  EXPECT_THROW(Analyzer::validate(request), std::invalid_argument);
}

// run() validates before dispatch, so a bad request never runs an engine.
TEST(SpstaApi, RunRejectsInvalidRequests) {
  Analyzer analyzer(test_circuit());
  AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  request.grid_dt = 0.1;
  EXPECT_THROW((void)analyzer.run(request), std::invalid_argument);
}

TEST(SpstaApi, ReportAccessorsRejectWrongEngine) {
  Analyzer analyzer(test_circuit());
  AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const AnalysisReport report = analyzer.run(request);

  EXPECT_EQ(report.engine, Engine::SpstaMoment);
  EXPECT_NO_THROW((void)report.moment());
  EXPECT_THROW((void)report.numeric(), std::logic_error);
  EXPECT_THROW((void)report.canonical(), std::logic_error);
  EXPECT_THROW((void)report.ssta(), std::logic_error);
  EXPECT_THROW((void)report.monte_carlo(), std::logic_error);
}

// Every engine through the facade must match its legacy entry point bit
// for bit: the facade is plumbing, never a result change.
TEST(SpstaApi, EveryEngineMatchesLegacyEntryPoint) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};
  Analyzer analyzer(n, d, sources);

  AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  {
    const AnalysisReport report = analyzer.run(request);
    const core::SpstaResult& got = report.moment();
    const core::SpstaResult want = core::run_spsta_moment(n, d, sources);
    ASSERT_EQ(got.node.size(), want.node.size());
    for (std::size_t id = 0; id < got.node.size(); ++id) {
      ASSERT_EQ(got.node[id].probs.pr, want.node[id].probs.pr);
      ASSERT_EQ(got.node[id].rise.mass, want.node[id].rise.mass);
      ASSERT_EQ(got.node[id].rise.arrival.mean, want.node[id].rise.arrival.mean);
      ASSERT_EQ(got.node[id].rise.arrival.var, want.node[id].rise.arrival.var);
      ASSERT_EQ(got.node[id].rise.third_central, want.node[id].rise.third_central);
      ASSERT_EQ(got.node[id].fall.arrival.mean, want.node[id].fall.arrival.mean);
    }
  }

  request.engine = Engine::SpstaNumeric;
  {
    const AnalysisReport report = analyzer.run(request);
    const core::SpstaNumericResult& got = report.numeric();
    const core::SpstaNumericResult want = core::run_spsta_numeric(n, d, sources);
    ASSERT_EQ(got.grid, want.grid);
    ASSERT_EQ(got.node.size(), want.node.size());
    for (std::size_t id = 0; id < got.node.size(); ++id) {
      const std::span<const double> gv = got.node[id].rise.values();
      const std::span<const double> wv = want.node[id].rise.values();
      ASSERT_EQ(std::vector<double>(gv.begin(), gv.end()),
                std::vector<double>(wv.begin(), wv.end()));
    }
  }

  request.engine = Engine::Canonical;
  {
    const AnalysisReport report = analyzer.run(request);
    const core::SpstaCanonicalResult& got = report.canonical();
    const core::SpstaCanonicalResult want = core::run_spsta_canonical(n, d, sources);
    ASSERT_EQ(got.num_params, want.num_params);
    ASSERT_EQ(got.node.size(), want.node.size());
    for (std::size_t id = 0; id < got.node.size(); ++id) {
      ASSERT_EQ(got.node[id].rise.mass, want.node[id].rise.mass);
      ASSERT_EQ(got.node[id].rise.arrival.nominal(),
                want.node[id].rise.arrival.nominal());
      ASSERT_EQ(got.node[id].rise.arrival.residual(),
                want.node[id].rise.arrival.residual());
    }
  }

  request.engine = Engine::Ssta;
  {
    const AnalysisReport report = analyzer.run(request);
    const ssta::SstaResult& got = report.ssta();
    const ssta::SstaResult want = ssta::run_ssta(n, d, sources);
    ASSERT_EQ(got.arrival.size(), want.arrival.size());
    for (std::size_t id = 0; id < got.arrival.size(); ++id) {
      ASSERT_EQ(got.arrival[id].rise.mean, want.arrival[id].rise.mean);
      ASSERT_EQ(got.arrival[id].rise.var, want.arrival[id].rise.var);
      ASSERT_EQ(got.arrival[id].fall.mean, want.arrival[id].fall.mean);
      ASSERT_EQ(got.arrival[id].fall.var, want.arrival[id].fall.var);
    }
  }

  request.engine = Engine::Mc;
  request.runs = 2000;
  request.seed = 11;
  request.track_circuit_max = true;
  {
    const AnalysisReport report = analyzer.run(request);
    const mc::MonteCarloResult& got = report.monte_carlo();
    mc::MonteCarloConfig cfg;
    cfg.runs = 2000;
    cfg.seed = 11;
    cfg.track_circuit_max = true;
    const mc::MonteCarloResult want = mc::run_monte_carlo(n, d, sources, cfg);
    ASSERT_EQ(got.node.size(), want.node.size());
    for (std::size_t id = 0; id < got.node.size(); ++id) {
      for (int v = 0; v < 4; ++v) {
        ASSERT_EQ(got.node[id].count[v], want.node[id].count[v]);
      }
      ASSERT_EQ(got.node[id].raw_edges, want.node[id].raw_edges);
      ASSERT_EQ(got.node[id].rise_time.mean(), want.node[id].rise_time.mean());
    }
    ASSERT_EQ(got.circuit_max_samples, want.circuit_max_samples);
    ASSERT_EQ(got.critical_count, want.critical_count);
  }
}

// set_delay recompiles the plan (content hash moves, results track the
// new delays); set_source does not (source stats are run inputs, not part
// of the plan) but results still track the new statistics.
TEST(SpstaApi, EcoEditsInvalidateExactlyWhenTheyMust) {
  const netlist::Netlist n = test_circuit();
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  Analyzer analyzer(n, d, {netlist::scenario_I()});

  const std::uint64_t hash_before = analyzer.content_hash();

  NodeId gate = netlist::kInvalidNode;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (!n.node(id).fanins.empty() && !n.is_timing_source(id)) {
      gate = id;
      break;
    }
  }
  ASSERT_NE(gate, netlist::kInvalidNode);

  const stats::Gaussian new_delay{3.0, 0.04};
  analyzer.set_delay(gate, new_delay);
  EXPECT_NE(analyzer.content_hash(), hash_before);

  d.set_delay(gate, new_delay);
  AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  {
    const AnalysisReport report = analyzer.run(request);
    const core::SpstaResult& got = report.moment();
    const std::vector sources{netlist::scenario_I()};
    const core::SpstaResult want = core::run_spsta_moment(n, d, sources);
    ASSERT_EQ(got.node.size(), want.node.size());
    for (std::size_t id = 0; id < got.node.size(); ++id) {
      ASSERT_EQ(got.node[id].rise.arrival.mean, want.node[id].rise.arrival.mean);
      ASSERT_EQ(got.node[id].rise.arrival.var, want.node[id].rise.arrival.var);
    }
  }

  // set_source: hash stays (the plan survives), results move. A single
  // broadcast entry is expanded so per-source edits address real indices.
  const std::uint64_t hash_after_delay = analyzer.content_hash();
  analyzer.set_source(1, netlist::scenario_II());
  EXPECT_EQ(analyzer.content_hash(), hash_after_delay);
  ASSERT_EQ(analyzer.sources().size(), n.timing_sources().size());
  {
    std::vector sources(n.timing_sources().size(), netlist::scenario_I());
    sources[1] = netlist::scenario_II();
    const AnalysisReport report = analyzer.run(request);
    const core::SpstaResult& got = report.moment();
    const core::SpstaResult want = core::run_spsta_moment(n, d, sources);
    for (std::size_t id = 0; id < got.node.size(); ++id) {
      ASSERT_EQ(got.node[id].probs.pr, want.node[id].probs.pr);
      ASSERT_EQ(got.node[id].rise.arrival.mean, want.node[id].rise.arrival.mean);
    }
  }

  EXPECT_THROW(analyzer.set_source(n.timing_sources().size(), netlist::scenario_I()),
               std::invalid_argument);
  EXPECT_THROW(analyzer.set_delay(static_cast<NodeId>(n.node_count()), new_delay),
               std::invalid_argument);
}

// Construction guards: the delay model and source list must match the
// netlist they claim to describe.
TEST(SpstaApi, ConstructorRejectsMismatchedInputs) {
  const netlist::Netlist n = test_circuit();

  netlist::GeneratorSpec small;
  small.num_inputs = 2;
  small.num_gates = 4;
  small.target_depth = 2;
  const netlist::Netlist other = netlist::generate_circuit(small);

  EXPECT_THROW(Analyzer(n, netlist::DelayModel::unit(other), {netlist::scenario_I()}),
               std::invalid_argument);
  EXPECT_THROW(Analyzer(n, netlist::DelayModel::unit(n),
                        std::vector<netlist::SourceStats>(3, netlist::scenario_I())),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta
