// Tests for the steady-state sequential fixpoint over flip-flop statistics.

#include "core/sequential.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::core {
namespace {

using netlist::FourValueProbs;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Sequential, PureCombinationalConvergesImmediately) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  n.mark_output(n.add_gate(GateType::And, "y", {a, b}));
  const SequentialResult r = solve_sequential_fixpoint(n);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_EQ(r.residual, 0.0);
}

TEST(Sequential, InverterLoopSettlesAtHalf) {
  // q' = NOT(q): whatever the start, the stationary final-one probability
  // of the D pin oscillates toward the fixpoint p* with p* = symmetric
  // 0.5 under damping.
  Netlist n;
  const NodeId q = n.declare(GateType::Dff, "q");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {q});
  n.connect(q, {inv});
  n.mark_output(inv);

  SequentialConfig cfg;
  cfg.ff_initial.probs = {0.7, 0.1, 0.1, 0.1};
  cfg.damping = 0.5;  // undamped, a toggle FF oscillates
  cfg.max_iterations = 200;
  const SequentialResult r = solve_sequential_fixpoint(n, cfg);
  EXPECT_TRUE(r.converged);
  const std::size_t q_index = 0;  // only source
  EXPECT_NEAR(r.source_stats[q_index].probs.final_one(), 0.5, 1e-6);
}

TEST(Sequential, SelfLoopBufferIsAbsorbing) {
  // q' = q AND a: once the register reaches 0 it stays 0, so the
  // stationary one-probability is 0 for P(a=1) < 1.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId q = n.declare(GateType::Dff, "q");
  const NodeId g = n.add_gate(GateType::And, "g", {a, q});
  n.connect(q, {g});
  n.mark_output(g);

  SequentialConfig cfg;
  cfg.input_stats = netlist::scenario_I();
  cfg.max_iterations = 500;
  cfg.tolerance = 1e-12;
  const SequentialResult r = solve_sequential_fixpoint(n, cfg);
  // Source order: [a, q].
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.source_stats[1].probs.p1, 0.0, 1e-6);
}

TEST(Sequential, FixpointIsSelfConsistent) {
  // Re-propagating with the converged FF stats must reproduce the D-pin
  // distributions the FF stats were derived from.
  const Netlist n = netlist::make_s27();
  SequentialConfig cfg;
  cfg.tolerance = 1e-12;
  cfg.max_iterations = 500;
  cfg.damping = 0.7;
  const SequentialResult r = solve_sequential_fixpoint(n, cfg);
  ASSERT_TRUE(r.converged);

  for (NodeId q : n.dffs()) {
    const NodeId d_pin = n.node(q).fanins[0];
    const double p1_d = r.node_probs[d_pin].final_one();
    // The FF output one-probability equals P(D final 1)^2 + cross terms:
    // final_one(out) = p1 + pr = p1_d^2 + (1-p1_d) p1_d = p1_d.
    const std::size_t idx = [&] {
      const auto sources = n.timing_sources();
      for (std::size_t i = 0; i < sources.size(); ++i) {
        if (sources[i] == q) return i;
      }
      return SIZE_MAX;
    }();
    ASSERT_NE(idx, SIZE_MAX);
    EXPECT_NEAR(r.source_stats[idx].probs.final_one(), p1_d, 1e-6)
        << n.node(q).name;
  }
}

TEST(Sequential, ConvergesOnSuiteCircuits) {
  for (std::string_view name : {"s298", "s344", "s526"}) {
    SequentialConfig cfg;
    cfg.damping = 0.7;
    // Long feedback loops through many registers mix slowly (spectral
    // radius near 1: s298's residual decays ~0.999x per iteration), so
    // use a probability-scale tolerance rather than the strict default.
    cfg.max_iterations = 5000;
    cfg.tolerance = 1e-5;
    const SequentialResult r =
        solve_sequential_fixpoint(netlist::make_paper_circuit(name), cfg);
    EXPECT_TRUE(r.converged) << name << " residual " << r.residual;
    for (const netlist::SourceStats& st : r.source_stats) {
      EXPECT_TRUE(st.probs.is_valid(1e-6));
    }
  }
}

TEST(Sequential, ClockArrivalAppliedToFfOutputs) {
  const Netlist n = netlist::make_s27();
  SequentialConfig cfg;
  cfg.clock_arrival = {0.3, 0.04};
  const SequentialResult r = solve_sequential_fixpoint(n, cfg);
  const auto sources = n.timing_sources();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (n.node(sources[i]).type == GateType::Dff) {
      EXPECT_EQ(r.source_stats[i].rise_arrival.mean, 0.3);
      EXPECT_EQ(r.source_stats[i].rise_arrival.var, 0.04);
    } else {
      EXPECT_EQ(r.source_stats[i].rise_arrival.mean, 0.0);  // inputs untouched
    }
  }
}

}  // namespace
}  // namespace spsta::core
