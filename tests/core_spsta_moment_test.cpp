// Tests for the moment-based SPSTA engine (paper Sec. 3.3/3.4): the
// WEIGHTED SUM semantics on single gates (Fig. 4), mass/probability
// consistency, and agreement with Monte Carlo.

#include <cmath>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"
#include "sigprob/four_value_prop.hpp"

namespace spsta::core {
namespace {

using netlist::FourValueProbs;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(SpstaMoment, SourcesCarryScenario) {
  Netlist n;
  const NodeId a = n.add_input("a");
  netlist::SourceStats sc = netlist::scenario_II();
  sc.rise_arrival = {1.0, 2.0};
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_EQ(r.node[a].probs, sc.probs);
  EXPECT_NEAR(r.node[a].rise.mass, 0.02, 1e-12);
  EXPECT_EQ(r.node[a].rise.arrival.mean, 1.0);
  EXPECT_NEAR(r.node[a].fall.mass, 0.08, 1e-12);
}

TEST(SpstaMoment, MassEqualsFourValueProbabilities) {
  // The WEIGHTED SUM masses must equal Pr/Pf from the closed-form
  // propagation at every node (the paper's t.o.p. integral identity).
  const Netlist n = netlist::make_paper_circuit("s344");
  const netlist::SourceStats sc = netlist::scenario_I();
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(r.node[id].rise.mass, r.node[id].probs.pr, 1e-9) << n.node(id).name;
    EXPECT_NEAR(r.node[id].fall.mass, r.node[id].probs.pf, 1e-9) << n.node(id).name;
  }
}

TEST(SpstaMoment, ProbsMatchStandaloneFourValueEngine) {
  const Netlist n = netlist::make_s27();
  const netlist::SourceStats sc = netlist::scenario_II();
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});
  const auto probs = sigprob::propagate_four_value(n, std::vector{sc.probs});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(r.node[id].probs.pr, probs[id].pr, 1e-12);
    EXPECT_NEAR(r.node[id].probs.p1, probs[id].p1, 1e-12);
  }
}

TEST(SpstaMoment, Figure4WeightedSumStaysSymmetricCentered) {
  // Paper Fig. 4: AND gate, both inputs signal probability 0.9, arrivals
  // with the same mean but different deviations. The MAX operation skews
  // the result upward; the WEIGHTED SUM keeps the mean at the input mean
  // plus a small multiple-switching correction.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);

  // Signal probability 0.9 split between static one and transitions.
  netlist::SourceStats sa;
  sa.probs = {0.1, 0.8, 0.1, 0.0};  // mostly 1, sometimes rising
  sa.rise_arrival = {5.0, 0.25};
  netlist::SourceStats sb = sa;
  sb.rise_arrival = {5.0, 4.0};  // same mean, larger deviation

  netlist::DelayModel zero_delay(n);  // isolate the operation itself
  const SpstaResult r = run_spsta_moment(n, zero_delay, std::vector{sa, sb});

  // MAX-based SSTA-style result for comparison.
  const stats::Gaussian max_result =
      stats::clark_max(sa.rise_arrival, sb.rise_arrival).moments;

  // Weighted sum: single-switching scenarios dominate (0.8 weight each of
  // the total 0.8*0.1*2 + 0.1*0.1), so the mean stays near 5.0...
  EXPECT_NEAR(r.node[y].rise.arrival.mean, 5.0, 0.2);
  // ...while the MAX skews clearly above the common mean.
  EXPECT_GT(max_result.mean, 5.5);
  // Occurrence probability is far below 1 - only 0.17 of cycles transition.
  EXPECT_NEAR(r.node[y].rise.mass, 0.8 * 0.1 * 2 + 0.1 * 0.1, 1e-10);
}

TEST(SpstaMoment, BufferChainShiftsMean) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  const netlist::SourceStats sc = netlist::scenario_I();
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_NEAR(r.node[prev].rise.arrival.mean, 4.0, 1e-9);
  EXPECT_NEAR(r.node[prev].rise.arrival.var, 1.0, 1e-9);
  EXPECT_NEAR(r.node[prev].rise.mass, 0.25, 1e-12);
}

TEST(SpstaMoment, InverterSwapsTops) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  netlist::SourceStats sc;
  sc.probs = {0.1, 0.2, 0.3, 0.4};
  sc.rise_arrival = {1.0, 1.0};
  sc.fall_arrival = {2.0, 4.0};
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_NEAR(r.node[inv].rise.mass, 0.4, 1e-12);  // from input falls
  EXPECT_NEAR(r.node[inv].rise.arrival.mean, 3.0, 1e-12);
  EXPECT_NEAR(r.node[inv].fall.mass, 0.3, 1e-12);
  EXPECT_NEAR(r.node[inv].fall.arrival.mean, 2.0, 1e-12);
}

TEST(SpstaMoment, MatchesMonteCarloOnTreeCircuit) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId d = n.add_input("d");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Nor, "g2", {c, d});
  const NodeId g3 = n.add_gate(GateType::Or, "g3", {g1, g2});
  n.mark_output(g3);

  const netlist::SourceStats sc = netlist::scenario_I();
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});

  mc::MonteCarloConfig cfg;
  cfg.runs = 100000;
  cfg.seed = 29;
  const auto mcr =
      mc::run_monte_carlo(n, netlist::DelayModel::unit(n), std::vector{sc}, cfg);

  for (NodeId id : {g1, g2, g3}) {
    EXPECT_NEAR(r.node[id].rise.mass, mcr.node[id].rise_probability(), 0.01)
        << n.node(id).name;
    EXPECT_NEAR(r.node[id].rise.arrival.mean, mcr.node[id].rise_time.mean(), 0.05)
        << n.node(id).name;
    EXPECT_NEAR(r.node[id].rise.arrival.stddev(), mcr.node[id].rise_time.stddev(), 0.06)
        << n.node(id).name;
    EXPECT_NEAR(r.node[id].fall.arrival.mean, mcr.node[id].fall_time.mean(), 0.05)
        << n.node(id).name;
  }
}

TEST(SpstaMoment, ZeroMassDirectionIsEmpty) {
  // Inputs that never fall: an AND output never falls either.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  netlist::SourceStats sc;
  sc.probs = {0.2, 0.5, 0.3, 0.0};
  const SpstaResult r =
      run_spsta_moment(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_EQ(r.node[y].fall.mass, 0.0);
  EXPECT_GT(r.node[y].rise.mass, 0.0);
}

TEST(SpstaMoment, ThirdMomentTracksNumericSkewness) {
  // On a mixed-depth merge the output t.o.p. is a visibly skewed mixture;
  // the moment engine's third central moment should agree with the
  // numeric engine's full-density skewness and with MC.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  NodeId deep = a;
  for (int i = 0; i < 3; ++i) {
    deep = n.add_gate(GateType::Buf, "d" + std::to_string(i), {deep});
  }
  const NodeId y = n.add_gate(GateType::Or, "y", {deep, b});
  n.mark_output(y);

  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const SpstaResult moment = run_spsta_moment(n, d, sc);
  SpstaOptions opt;
  opt.grid_dt = 0.02;
  const SpstaNumericResult numeric = run_spsta_numeric(n, d, sc, opt);

  const double skew_moment = moment.node[y].rise.skewness();
  const double skew_numeric = numeric.node[y].rise.skewness();
  EXPECT_GT(std::abs(skew_numeric), 0.2) << "setup should actually be skewed";
  EXPECT_NEAR(skew_moment, skew_numeric, 0.25);

  mc::MonteCarloConfig cfg;
  cfg.runs = 150000;
  cfg.seed = 21;
  const auto mcr = mc::run_monte_carlo(n, d, sc, cfg);
  EXPECT_NEAR(skew_moment, mcr.node[y].rise_time.skewness(), 0.3);
}

TEST(SpstaMoment, SymmetricSetupHasNearZeroThirdMoment) {
  Netlist n;
  NodeId prev = n.add_input("a");
  prev = n.add_gate(GateType::Buf, "b0", {prev});
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const SpstaResult r = run_spsta_moment(n, d, std::vector{netlist::scenario_I()});
  EXPECT_NEAR(r.node[prev].rise.third_central, 0.0, 1e-12);
  EXPECT_NEAR(r.node[prev].rise.skewness(), 0.0, 1e-12);
}

TEST(SpstaMoment, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)run_spsta_moment(n, netlist::DelayModel::unit(n),
                                      std::vector<netlist::SourceStats>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::core
