// Tests for the observability layer: counter/gauge/histogram semantics,
// the runtime enable switch, registry snapshots, the RAII stage timer,
// and the JSON-lines trace writer.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/json.hpp"

namespace spsta::obs {
namespace {

/// Restores the global enable switch (tests toggle it).
class EnabledGuard {
 public:
  EnabledGuard() : was_(enabled()) {}
  ~EnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

TEST(ObsMetrics, CounterCountsOnlyWhileEnabled) {
  const EnabledGuard guard;
  Counter c;
  set_enabled(true);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), kCompiledIn ? 42u : 0u);
  set_enabled(false);
  c.add(1000);
  EXPECT_EQ(c.value(), kCompiledIn ? 42u : 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeHoldsLastWrite) {
  const EnabledGuard guard;
  set_enabled(true);
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-17.25);
  if (kCompiledIn) EXPECT_EQ(g.value(), -17.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsAreLog2Microseconds) {
  const EnabledGuard guard;
  set_enabled(true);
  LatencyHistogram h;
  h.record_ns(400);          // 0 µs -> bucket 0
  h.record_ns(1'000);        // 1 µs -> bucket 1
  h.record_ns(1'500);        // 1 µs -> bucket 1
  h.record_ns(3'000);        // 3 µs -> bucket 2
  h.record_ns(1'000'000);    // 1000 µs -> bucket 10
  h.record_ns(3'600'000'000);  // 3.6 s -> overflow bucket
  if (!kCompiledIn) {
    EXPECT_EQ(h.count(), 0u);
    return;
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.total_ns(), 400u + 1'000 + 1'500 + 3'000 + 1'000'000 + 3'600'000'000);
  EXPECT_EQ(h.max_ns(), 3'600'000'000u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(0), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(3), 8u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(LatencyHistogram::kBuckets - 1),
            UINT64_MAX);
}

TEST(ObsMetrics, RegistryReturnsStableReferencesAndSnapshots) {
  const EnabledGuard guard;
  set_enabled(true);
  Counter& c1 = registry().counter("test.registry.counter");
  Counter& c2 = registry().counter("test.registry.counter");
  EXPECT_EQ(&c1, &c2);  // same name, same metric
  c1.reset();
  c1.add(7);
  registry().gauge("test.registry.gauge").set(1.5);
  registry().histogram("test.registry.hist").record_ns(2'000'000);

  const Snapshot snap = registry().snapshot();
  EXPECT_EQ(snap.enabled, enabled());
  EXPECT_EQ(snap.counter_value("test.registry.counter"), kCompiledIn ? 7u : 0u);
  EXPECT_EQ(snap.counter_value("no.such.counter"), 0u);
  if (kCompiledIn) {
    EXPECT_GE(snap.histogram_total_ms("test.registry.hist"), 2.0);
  }
  EXPECT_EQ(snap.histogram_total_ms("no.such.hist"), 0.0);

  // reset_values zeroes values but keeps registrations (and addresses).
  registry().reset_values();
  EXPECT_EQ(c1.value(), 0u);
  EXPECT_EQ(&registry().counter("test.registry.counter"), &c1);
}

TEST(ObsMetrics, StageTimerRecordsItsScope) {
  const EnabledGuard guard;
  set_enabled(true);
  LatencyHistogram h;
  {
    const StageTimer timer(h);
  }
  EXPECT_EQ(h.count(), kCompiledIn ? 1u : 0u);

  // A timer constructed while disabled records nothing, even if recording
  // is re-enabled before its scope closes (enabled-ness is sampled once).
  set_enabled(false);
  {
    const StageTimer timer(h);
    set_enabled(true);
  }
  EXPECT_EQ(h.count(), kCompiledIn ? 1u : 0u);
}

TEST(ObsTrace, TraceLineIsValidJsonWithSpanFields) {
  const std::string line =
      trace_line({.trace_id = 7,
                  .cmd = "analyze",
                  .ok = true,
                  .queue_ms = 0.25,
                  .execute_ms = 12.5,
                  .serialize_ms = 0.125});
  const service::Json v = service::Json::parse(line);
  EXPECT_EQ(v.find("trace_id")->as_string(), "t-7");
  EXPECT_EQ(v.find("cmd")->as_string(), "analyze");
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("queue_ms")->as_number(), 0.25);
  EXPECT_EQ(v.find("execute_ms")->as_number(), 12.5);
  EXPECT_EQ(v.find("serialize_ms")->as_number(), 0.125);

  // Commands are attacker-controlled text; quoting must survive it.
  const std::string hostile = trace_line({.cmd = "a\"b\\c\n"});
  EXPECT_EQ(service::Json::parse(hostile).find("cmd")->as_string(), "a\"b\\c\n");
}

TEST(ObsTrace, TraceLogAppendsOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "spsta_trace_test.jsonl";
  std::remove(path.c_str());
  {
    TraceLog log(path);
    ASSERT_TRUE(log.ok());
    log.write({.trace_id = 1, .cmd = "ping", .ok = true});
    log.write({.trace_id = 2, .cmd = "analyze", .ok = false});
    EXPECT_EQ(log.events_written(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(4096, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());

  // Two parseable lines, ids in write order.
  const std::size_t newline = content.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const service::Json first = service::Json::parse(content.substr(0, newline));
  EXPECT_EQ(first.find("trace_id")->as_string(), "t-1");
  const std::string rest = content.substr(newline + 1);
  ASSERT_FALSE(rest.empty());
  EXPECT_EQ(rest.back(), '\n');
  const service::Json second = service::Json::parse(rest.substr(0, rest.size() - 1));
  EXPECT_EQ(second.find("trace_id")->as_string(), "t-2");

  // A path that cannot open yields an inert log, not a crash.
  TraceLog bad("/nonexistent-dir-for-spsta-test/trace.jsonl");
  EXPECT_FALSE(bad.ok());
  bad.write({.trace_id = 3});
  EXPECT_EQ(bad.events_written(), 0u);
}

}  // namespace
}  // namespace spsta::obs
