// Service-layer tests for hierarchical sessions: loading "hier" format
// designs, analyzing them by block-model composition, the shared block
// caches surfaced in `stats`, and the structured rejections for commands
// hierarchical sessions do not support.

#include <string>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/hier_bench_io.hpp"
#include "service/service.hpp"

namespace spsta::service {
namespace {

constexpr const char* kHierText =
    "BLOCK(cell)\n"
    "INPUT(a)\n"
    "INPUT(b)\n"
    "OUTPUT(y)\n"
    "OUTPUT(z)\n"
    "n1 = NAND(a, b)\n"
    "y = NOT(n1)\n"
    "z = OR(n1, b)\n"
    "END\n"
    "INPUT(x0)\n"
    "INPUT(x1)\n"
    "INPUT(x2)\n"
    "OUTPUT(u2.y)\n"
    "OUTPUT(u2.z)\n"
    "u0 = INSTANCE(cell, x0, x1)\n"
    "u1 = INSTANCE(cell, x2, u0.y)\n"
    "u2 = INSTANCE(cell, u0.z, u1.y)\n";

Json expect_ok(AnalysisService& service, const std::string& line) {
  const Response r = service.execute_line(line);
  EXPECT_TRUE(r.ok) << line << " -> " << r.to_line();
  return r.body;
}

void expect_error(AnalysisService& service, const std::string& line,
                  std::string_view code) {
  const Response r = service.execute_line(line);
  EXPECT_FALSE(r.ok) << line;
  EXPECT_EQ(r.error_code(), code) << line << " -> " << r.to_line();
}

std::string hier_load_line() {
  Json req = Json::object();
  req.set("cmd", Json("load"));
  req.set("format", Json("hier"));
  req.set("text", Json(std::string(kHierText)));
  return req.dump();
}

TEST(ServiceHier, LoadReportsHierShape) {
  AnalysisService service;
  const Json loaded = expect_ok(service, hier_load_line());
  EXPECT_TRUE(loaded.find("hier")->as_bool());
  EXPECT_EQ(loaded.find("blocks")->as_number(), 1.0);
  EXPECT_EQ(loaded.find("instances")->as_number(), 3.0);
  EXPECT_EQ(loaded.find("expanded_gates")->as_number(), 9.0);
  EXPECT_EQ(loaded.find("outputs")->as_number(), 2.0);
  // Identical content reloads the same session.
  const Json again = expect_ok(service, hier_load_line());
  EXPECT_EQ(again.find("session")->as_string(), loaded.find("session")->as_string());
  EXPECT_TRUE(again.find("reloaded")->as_bool());
}

TEST(ServiceHier, AnalyzeComposesAndCaches) {
  AnalysisService service;
  const Json loaded = expect_ok(service, hier_load_line());
  const std::string session = loaded.find("session")->as_string();
  const std::string analyze =
      R"({"cmd":"analyze","session":")" + session + R"(","engine":"spsta_moment"})";

  const Json first = expect_ok(service, analyze);
  EXPECT_TRUE(first.find("hier")->as_bool());
  EXPECT_FALSE(first.find("cached")->as_bool());
  EXPECT_GT(first.find("models_extracted")->as_number(), 0.0);
  ASSERT_NE(first.find("endpoints"), nullptr);
  EXPECT_EQ(first.find("endpoints")->as_array().size(), 2u);
  ASSERT_NE(first.find("worst"), nullptr);
  EXPECT_GT(first.find("worst")->find("mean")->as_number(), 0.0);

  const Json second = expect_ok(service, analyze);
  EXPECT_TRUE(second.find("cached")->as_bool());
  // Cached replay reports the same worst endpoint bit-for-bit.
  EXPECT_EQ(second.find("worst")->find("mean")->as_number(),
            first.find("worst")->find("mean")->as_number());
}

TEST(ServiceHier, ComposedEndpointsMatchFlatAnalysisOfTheSameContent) {
  AnalysisService service;
  const Json hier_loaded = expect_ok(service, hier_load_line());
  const std::string hier_session = hier_loaded.find("session")->as_string();

  // Load the flattened equivalent as a plain bench session.
  const netlist::HierDesign design = netlist::parse_hier_bench(kHierText);
  const netlist::Netlist flat = design.flatten();
  Json req = Json::object();
  req.set("cmd", Json("load"));
  req.set("format", Json("bench"));
  req.set("text", Json(netlist::write_bench(flat)));
  const Json flat_loaded = expect_ok(service, req.dump());
  const std::string flat_session = flat_loaded.find("session")->as_string();

  const auto worst_of = [&](const std::string& session) {
    const Json r = expect_ok(service, R"({"cmd":"analyze","session":")" + session +
                                          R"(","engine":"spsta_moment"})");
    return *r.find("worst");
  };
  const Json hier_worst = worst_of(hier_session);
  const Json flat_worst = worst_of(flat_session);
  EXPECT_NEAR(hier_worst.find("mean")->as_number(),
              flat_worst.find("mean")->as_number(), 1e-9);
  EXPECT_NEAR(hier_worst.find("std")->as_number(),
              flat_worst.find("std")->as_number(), 1e-9);
  EXPECT_NEAR(hier_worst.find("p")->as_number(), flat_worst.find("p")->as_number(),
              1e-12);
}

TEST(ServiceHier, RejectsEcoAndQueryOnHierSessions) {
  AnalysisService service;
  const Json loaded = expect_ok(service, hier_load_line());
  const std::string session = loaded.find("session")->as_string();
  expect_error(service,
               R"({"cmd":"query","session":")" + session + R"(","node":"u2.y"})",
               "bad_params");
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session +
                   R"(","node":"u0.y","mean":2})",
               "bad_params");
  // The batched/probe forms go through the same guard: a hier session has
  // no warm incremental engine to transact against.
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session +
                   R"(","edits":[{"node":"u0.y","mean":2}]})",
               "bad_params");
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session +
                   R"(","probe":true,"edits":[{"node":"u0.y","mean":2}]})",
               "bad_params");
  expect_error(service,
               R"({"cmd":"set_source","session":")" + session + R"(","source":0})",
               "bad_params");
  // Engines without block models are rejected as bad params, not crashes.
  expect_error(service,
               R"({"cmd":"analyze","session":")" + session + R"(","engine":"mc"})",
               "bad_params");
}

TEST(ServiceHier, RejectsMalformedHierText) {
  AnalysisService service;
  Json req = Json::object();
  req.set("cmd", Json("load"));
  req.set("format", Json("hier"));
  req.set("text", Json(std::string("INPUT(a)\ny = AND(a, a)\n")));
  expect_error(service, req.dump(), "bad_params");
}

TEST(ServiceHier, StatsSurfaceBlockCaches) {
  AnalysisService service;
  const Json loaded = expect_ok(service, hier_load_line());
  const std::string session = loaded.find("session")->as_string();
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session +
                               R"(","engine":"spsta_moment"})");

  const Json stats = expect_ok(service, R"({"cmd":"stats"})");
  const Json* plan_cache = stats.find("plan_cache");
  ASSERT_NE(plan_cache, nullptr);
  const Json* models = plan_cache->find("block_models");
  ASSERT_NE(models, nullptr);
  EXPECT_GT(models->find("entries")->as_number(), 0.0);
  EXPECT_GT(models->find("approx_bytes")->as_number(), 0.0);
  const Json* library = plan_cache->find("block_library");
  ASSERT_NE(library, nullptr);
  EXPECT_EQ(library->find("entries")->as_number(), 1.0);

  // Per-session stats take the hierarchical branch.
  const Json per = expect_ok(
      service, R"({"cmd":"stats","session":")" + session + R"("})");
  const Json* s = per.find("session");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->find("hier")->as_bool());
  EXPECT_EQ(s->find("instances")->as_number(), 3.0);
  EXPECT_EQ(s->find("expanded_gates")->as_number(), 9.0);
}

TEST(ServiceHier, StoreBudgetAlsoCapsTheModelCache) {
  AnalysisService service;
  service.set_store_budget({4, 1u << 20});
  EXPECT_EQ(service.block_models().budget().max_bytes, 1u << 20);
  const Json loaded = expect_ok(service, hier_load_line());
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" +
                               loaded.find("session")->as_string() +
                               R"(","engine":"spsta_moment"})");
  EXPECT_GT(service.block_models().size(), 0u);
}

}  // namespace
}  // namespace spsta::service
