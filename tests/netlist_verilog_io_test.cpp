// Tests for the structural-Verilog reader/writer.

#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::netlist {
namespace {

constexpr const char* kSmall = R"(
// a tiny module
module demo (a, b, y);
  input a, b;
  output y;
  wire w1, w2;
  and  g1 (w1, a, b);
  not  g2 (w2, w1);
  nand g3 (y, w2, a);
endmodule
)";

TEST(VerilogParser, ParsesSmallModule) {
  const Netlist n = parse_verilog(kSmall);
  EXPECT_EQ(n.name(), "demo");
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_EQ(n.gate_count(), 3u);
  const NodeId y = n.find("y");
  ASSERT_NE(y, kInvalidNode);
  EXPECT_EQ(n.node(y).type, GateType::Nand);
  ASSERT_EQ(n.node(y).fanins.size(), 2u);
  EXPECT_EQ(n.node(n.node(y).fanins[0]).name, "w2");
}

TEST(VerilogParser, BlockCommentsAndAnonymousInstances) {
  const Netlist n = parse_verilog(R"(
module m (a, y);
  input a;
  output y;
  /* block
     comment */ buf (y, a);
endmodule
)");
  EXPECT_EQ(n.gate_count(), 1u);
  EXPECT_EQ(n.node(n.find("y")).type, GateType::Buf);
}

TEST(VerilogParser, DffPrimitive) {
  const Netlist n = parse_verilog(R"(
module seq (clk_unused, d_in, q_out);
  input clk_unused, d_in;
  output q_out;
  wire q;
  dff ff (q, d_in);
  buf b (q_out, q);
endmodule
)");
  EXPECT_EQ(n.dffs().size(), 1u);
  EXPECT_EQ(n.node(n.find("q")).type, GateType::Dff);
}

TEST(VerilogParser, ForwardReferencesAllowed) {
  const Netlist n = parse_verilog(R"(
module fw (a, y);
  input a;
  output y;
  wire w;
  not g1 (y, w);
  buf g2 (w, a);
endmodule
)");
  EXPECT_EQ(n.node(n.find("y")).fanins[0], n.find("w"));
}

TEST(VerilogParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_verilog("module m (a);\n  input a;\n  frob g (a, a);\nendmodule\n");
    FAIL() << "expected VerilogParseError";
  } catch (const VerilogParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(VerilogParser, RejectsDoubleDriver) {
  EXPECT_THROW((void)parse_verilog(R"(
module m (a, y);
  input a;
  output y;
  buf g1 (y, a);
  not g2 (y, a);
endmodule
)"),
               VerilogParseError);
}

TEST(VerilogParser, RejectsUndrivenSignals) {
  EXPECT_THROW((void)parse_verilog(R"(
module m (a, y);
  input a;
  output y;
  and g (y, a, ghost);
endmodule
)"),
               VerilogParseError);
  EXPECT_THROW((void)parse_verilog(R"(
module m (y);
  output y;
endmodule
)"),
               VerilogParseError);
}

TEST(VerilogParser, RejectsMalformedStructure) {
  EXPECT_THROW((void)parse_verilog("module m a, y);\nendmodule\n"), VerilogParseError);
  EXPECT_THROW((void)parse_verilog("module m (a);\n  input a\nendmodule\n"),
               VerilogParseError);
  EXPECT_THROW((void)parse_verilog("module m (a);\n  input a; /* unterminated\n"),
               VerilogParseError);
}

TEST(VerilogWriter, RoundTripS27) {
  const Netlist original = make_s27();
  const std::string text = write_verilog(original);
  const Netlist reparsed = parse_verilog(text);

  EXPECT_EQ(reparsed.name(), original.name());
  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.dffs().size(), original.dffs().size());
  for (NodeId id = 0; id < original.node_count(); ++id) {
    const Node& a = original.node(id);
    const NodeId rid = reparsed.find(a.name);
    ASSERT_NE(rid, kInvalidNode) << a.name;
    const Node& b = reparsed.node(rid);
    EXPECT_EQ(a.type, b.type) << a.name;
    ASSERT_EQ(a.fanins.size(), b.fanins.size()) << a.name;
    for (std::size_t i = 0; i < a.fanins.size(); ++i) {
      EXPECT_EQ(original.node(a.fanins[i]).name, reparsed.node(b.fanins[i]).name);
    }
  }
}

TEST(VerilogWriter, RoundTripGeneratedSuiteCircuit) {
  const Netlist original = make_paper_circuit("s298");
  const Netlist reparsed = parse_verilog(write_verilog(original));
  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.primary_outputs().size(), original.primary_outputs().size());
}

}  // namespace
}  // namespace spsta::netlist
