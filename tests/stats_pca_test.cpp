// Tests for the Jacobi eigendecomposition and covariance PCA.

#include "stats/pca.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace spsta::stats {
namespace {

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  SymmetricMatrix m(3);
  m.set(0, 0, 3.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 2.0);
  const EigenDecomposition e = jacobi_eigen(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1)/sqrt2,
  // (1,-1)/sqrt2.
  SymmetricMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(1, 1, 2.0);
  m.set(0, 1, 1.0);
  const EigenDecomposition e = jacobi_eigen(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(e.vector(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(e.vector(1, 0)), inv_sqrt2, 1e-10);
}

TEST(Jacobi, ReconstructsMatrix) {
  SymmetricMatrix m(4);
  const double vals[4][4] = {{4.0, 1.0, 0.5, 0.2},
                             {1.0, 3.0, 0.3, 0.1},
                             {0.5, 0.3, 2.0, 0.4},
                             {0.2, 0.1, 0.4, 1.0}};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 4; ++j) m.set(i, j, vals[i][j]);
  }
  const EigenDecomposition e = jacobi_eigen(m);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double rebuilt = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        rebuilt += e.vector(i, k) * e.values[k] * e.vector(j, k);
      }
      EXPECT_NEAR(rebuilt, vals[i][j], 1e-10) << i << "," << j;
    }
  }
}

TEST(Jacobi, EigenvectorsAreOrthonormal) {
  SymmetricMatrix m(3);
  m.set(0, 0, 2.0);
  m.set(1, 1, 2.0);
  m.set(2, 2, 2.0);
  m.set(0, 1, 0.8);
  m.set(1, 2, 0.3);
  m.set(0, 2, -0.5);
  const EigenDecomposition e = jacobi_eigen(m);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 3; ++i) dot += e.vector(i, a) * e.vector(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Pca, LoadingsReproduceCovariance) {
  // cov = L L^T must hold when loadings scale eigenvectors by sqrt(lambda).
  SymmetricMatrix cov(3);
  cov.set(0, 0, 2.0);
  cov.set(1, 1, 1.5);
  cov.set(2, 2, 1.0);
  cov.set(0, 1, 0.7);
  cov.set(1, 2, 0.2);
  cov.set(0, 2, 0.4);
  const Pca p = pca_from_covariance(cov);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double rebuilt = 0.0;
      for (std::size_t k = 0; k < 3; ++k) rebuilt += p.loading(i, k) * p.loading(j, k);
      EXPECT_NEAR(rebuilt, cov(i, j), 1e-10);
    }
  }
}

TEST(Pca, RankDeficientCovarianceClampedToZero) {
  // Perfectly correlated pair: one zero eigenvalue.
  SymmetricMatrix cov(2);
  cov.set(0, 0, 1.0);
  cov.set(1, 1, 1.0);
  cov.set(0, 1, 1.0);
  const Pca p = pca_from_covariance(cov);
  EXPECT_NEAR(p.eigen.values[0], 2.0, 1e-12);
  EXPECT_NEAR(p.eigen.values[1], 0.0, 1e-12);
  EXPECT_NEAR(p.loading(0, 1), 0.0, 1e-10);
}

}  // namespace
}  // namespace spsta::stats
