// Determinism contract of the parallel execution layer: the Monte Carlo
// driver and both SPSTA engines must produce BIT-IDENTICAL results at any
// thread count (see DESIGN.md §"Threading and determinism"). Every
// comparison below is exact double equality, not a tolerance.

#include <vector>

#include <gtest/gtest.h>

#include "core/incremental_spsta.hpp"
#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "spsta_api.hpp"
#include "stats/conv_kernels.hpp"
#include "stats/simd.hpp"
#include "stats/workspace.hpp"

namespace spsta {
namespace {

using netlist::NodeId;

/// An ISCAS-scale generated circuit with reconvergent fanout and
/// variational delays — enough structure to exercise multi-level parallel
/// dispatch and multi-chunk Monte Carlo sharding.
netlist::Netlist test_circuit() {
  netlist::GeneratorSpec spec;
  spec.name = "det";
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 120;
  spec.target_depth = 8;
  spec.seed = 42;
  return netlist::generate_circuit(spec);
}

void expect_same_mc(const mc::MonteCarloResult& a, const mc::MonteCarloResult& b) {
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t id = 0; id < a.node.size(); ++id) {
    for (int v = 0; v < 4; ++v) ASSERT_EQ(a.node[id].count[v], b.node[id].count[v]);
    ASSERT_EQ(a.node[id].raw_edges, b.node[id].raw_edges);
    ASSERT_EQ(a.node[id].rise_time.count(), b.node[id].rise_time.count());
    ASSERT_EQ(a.node[id].rise_time.mean(), b.node[id].rise_time.mean());
    ASSERT_EQ(a.node[id].rise_time.variance(), b.node[id].rise_time.variance());
    ASSERT_EQ(a.node[id].fall_time.mean(), b.node[id].fall_time.mean());
    ASSERT_EQ(a.node[id].fall_time.variance(), b.node[id].fall_time.variance());
  }
  ASSERT_EQ(a.glitching_gates, b.glitching_gates);
  ASSERT_EQ(a.quiet_runs, b.quiet_runs);
  ASSERT_EQ(a.circuit_max.count(), b.circuit_max.count());
  ASSERT_EQ(a.circuit_max.mean(), b.circuit_max.mean());
  ASSERT_EQ(a.circuit_max.variance(), b.circuit_max.variance());
  ASSERT_EQ(a.circuit_max_samples, b.circuit_max_samples);
  ASSERT_EQ(a.critical_count, b.critical_count);
}

TEST(Determinism, MonteCarloIsThreadCountInvariant) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.08);
  const std::vector sources{netlist::scenario_I()};

  mc::MonteCarloConfig cfg;
  cfg.runs = 3000;  // > 8 chunks at the 256-run floor
  cfg.seed = 2026;
  cfg.track_circuit_max = true;

  mc::MonteCarloConfig cfg2 = cfg;
  cfg2.threads = 2;
  mc::MonteCarloConfig cfg8 = cfg;
  cfg8.threads = 8;

  const auto r1 = mc::run_monte_carlo(n, d, sources, cfg);
  const auto r2 = mc::run_monte_carlo(n, d, sources, cfg2);
  const auto r8 = mc::run_monte_carlo(n, d, sources, cfg8);
  expect_same_mc(r1, r2);
  expect_same_mc(r1, r8);
}

TEST(Determinism, MonteCarloIsRerunStable) {
  // Same (seed, runs) twice at a high thread count: the per-run stream
  // seeding makes the draw sequence a pure function of (seed, run index).
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.08);
  const std::vector sources{netlist::scenario_I()};
  mc::MonteCarloConfig cfg;
  cfg.runs = 1500;
  cfg.seed = 7;
  cfg.threads = 8;
  cfg.track_circuit_max = true;
  expect_same_mc(mc::run_monte_carlo(n, d, sources, cfg),
                 mc::run_monte_carlo(n, d, sources, cfg));
}

void expect_same_numeric(const core::SpstaNumericResult& a,
                         const core::SpstaNumericResult& b) {
  ASSERT_EQ(a.grid, b.grid);
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t id = 0; id < a.node.size(); ++id) {
    ASSERT_EQ(a.node[id].probs.p0, b.node[id].probs.p0);
    ASSERT_EQ(a.node[id].probs.p1, b.node[id].probs.p1);
    ASSERT_EQ(a.node[id].probs.pr, b.node[id].probs.pr);
    ASSERT_EQ(a.node[id].probs.pf, b.node[id].probs.pf);
    const auto rise_a = a.node[id].rise.values();
    const auto rise_b = b.node[id].rise.values();
    const auto fall_a = a.node[id].fall.values();
    const auto fall_b = b.node[id].fall.values();
    ASSERT_EQ(std::vector(rise_a.begin(), rise_a.end()),
              std::vector(rise_b.begin(), rise_b.end()));
    ASSERT_EQ(std::vector(fall_a.begin(), fall_a.end()),
              std::vector(fall_b.begin(), fall_b.end()));
  }
}

TEST(Determinism, NumericEngineIsThreadCountInvariant) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};

  core::SpstaOptions o1;  // threads = 1 default
  core::SpstaOptions o2 = o1;
  o2.threads = 2;
  core::SpstaOptions o8 = o1;
  o8.threads = 8;

  const auto r1 = core::run_spsta_numeric(n, d, sources, o1);
  expect_same_numeric(r1, core::run_spsta_numeric(n, d, sources, o2));
  expect_same_numeric(r1, core::run_spsta_numeric(n, d, sources, o8));
}

TEST(Determinism, NumericEngineFftPathIsThreadCountInvariant) {
  // Force the kernel layer onto the FFT path (tiny crossover) on a dense
  // grid with truly stochastic delays: the kernel choice is a pure
  // function of sizes, so results stay bit-identical at any thread count.
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.12);
  const std::vector sources{netlist::scenario_I()};

  stats::set_conv_crossover(32);
  core::SpstaOptions o1;
  o1.grid_dt = 0.002;
  o1.max_grid_points = 1 << 14;
  core::SpstaOptions o2 = o1;
  o2.threads = 2;
  core::SpstaOptions o8 = o1;
  o8.threads = 8;

  const auto r1 = core::run_spsta_numeric(n, d, sources, o1);
  expect_same_numeric(r1, core::run_spsta_numeric(n, d, sources, o2));
  expect_same_numeric(r1, core::run_spsta_numeric(n, d, sources, o8));
  stats::set_conv_crossover(0);

  // Different crossover => possibly different kernels; results must still
  // agree to discretization accuracy (spot-check total mass per node).
  const auto r_direct = core::run_spsta_numeric(n, d, sources, o1);
  ASSERT_EQ(r1.node.size(), r_direct.node.size());
  for (std::size_t id = 0; id < r1.node.size(); ++id) {
    EXPECT_NEAR(r1.node[id].rise.mass(), r_direct.node[id].rise.mass(), 1e-7);
    EXPECT_NEAR(r1.node[id].fall.mass(), r_direct.node[id].fall.mass(), 1e-7);
  }
}

TEST(Determinism, NumericEngineSimdTierIsBitTransparent) {
  // The SIMD dispatch contract (stats/simd.hpp): every tier computes the
  // identical per-element operation DAG, so the engine's results must be
  // bit-identical between the auto-detected tier and the forced-scalar
  // reference — at any thread count, on both the direct and FFT kernel
  // paths. On hardware with no vector tier this degenerates to rerun
  // stability, which is still a meaningful check.
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.12);
  const std::vector sources{netlist::scenario_I()};

  core::SpstaOptions dense;  // dense grid => FFT path engages
  dense.grid_dt = 0.002;
  dense.max_grid_points = 1 << 14;

  for (const unsigned threads : {1u, 2u, 8u}) {
    core::SpstaOptions opt = dense;
    opt.threads = threads;
    stats::simd::set_force_scalar(false);
    const auto vec = core::run_spsta_numeric(n, d, sources, opt);
    stats::simd::set_force_scalar(true);
    const auto scalar = core::run_spsta_numeric(n, d, sources, opt);
    stats::simd::set_force_scalar(false);
    expect_same_numeric(vec, scalar);
  }
}

TEST(Determinism, NumericEngineLevelLoopDoesNotAllocateWhenWarm) {
  // threads = 1 dispatches inline on this thread, so the engine's scratch
  // is this thread's Workspace: after one warm run, further identical runs
  // must not grow any buffer (the "zero steady-state allocation" probe).
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};
  const core::SpstaOptions opts;  // threads = 1

  const auto warm = core::run_spsta_numeric(n, d, sources, opts);
  stats::Workspace& ws = stats::Workspace::local();
  const std::uint64_t grows = ws.grows();
  const auto again = core::run_spsta_numeric(n, d, sources, opts);
  EXPECT_EQ(ws.grows(), grows);
  EXPECT_GT(ws.reuses(), 0u);
  expect_same_numeric(warm, again);
}

TEST(Determinism, PatternCacheIsTransparentAtExactKeys) {
  // With the default quantum of 0 the cache keys on exact bit patterns, so
  // cached and uncached runs are bitwise identical.
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector sources{netlist::scenario_I()};

  core::SpstaOptions cached;
  cached.threads = 4;
  cached.use_pattern_cache = true;
  core::SpstaOptions uncached;
  uncached.threads = 4;
  uncached.use_pattern_cache = false;
  expect_same_numeric(core::run_spsta_numeric(n, d, sources, cached),
                      core::run_spsta_numeric(n, d, sources, uncached));
}

TEST(Determinism, MomentEngineIsThreadCountInvariant) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};

  const core::SpstaResult base = core::run_spsta_moment(n, d, sources);
  for (unsigned threads : {2u, 8u}) {
    core::SpstaOptions opt;
    opt.threads = threads;
    const core::SpstaResult r = core::run_spsta_moment(n, d, sources, opt);
    ASSERT_EQ(r.node.size(), base.node.size());
    for (std::size_t id = 0; id < r.node.size(); ++id) {
      ASSERT_EQ(r.node[id].probs.pr, base.node[id].probs.pr);
      ASSERT_EQ(r.node[id].probs.pf, base.node[id].probs.pf);
      ASSERT_EQ(r.node[id].rise.mass, base.node[id].rise.mass);
      ASSERT_EQ(r.node[id].rise.arrival.mean, base.node[id].rise.arrival.mean);
      ASSERT_EQ(r.node[id].rise.arrival.var, base.node[id].rise.arrival.var);
      ASSERT_EQ(r.node[id].rise.third_central, base.node[id].rise.third_central);
      ASSERT_EQ(r.node[id].fall.mass, base.node[id].fall.mass);
      ASSERT_EQ(r.node[id].fall.arrival.mean, base.node[id].fall.arrival.mean);
      ASSERT_EQ(r.node[id].fall.arrival.var, base.node[id].fall.arrival.var);
      ASSERT_EQ(r.node[id].fall.third_central, base.node[id].fall.third_central);
    }
  }
}

TEST(Determinism, MetricsRecordingDoesNotPerturbAnyEngine) {
  // The observability layer is write-only from the engines' perspective:
  // stage timers and counters must not change a single result bit,
  // whether recording is on or off.
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};
  core::SpstaOptions opt;
  opt.threads = 4;
  mc::MonteCarloConfig cfg;
  cfg.runs = 1000;
  cfg.seed = 11;
  cfg.threads = 4;

  obs::set_enabled(true);
  const core::SpstaResult moment_on = core::run_spsta_moment(n, d, sources, opt);
  const core::SpstaNumericResult numeric_on =
      core::run_spsta_numeric(n, d, sources, opt);
  const mc::MonteCarloResult mc_on = mc::run_monte_carlo(n, d, sources, cfg);

  obs::set_enabled(false);
  const core::SpstaResult moment_off = core::run_spsta_moment(n, d, sources, opt);
  const core::SpstaNumericResult numeric_off =
      core::run_spsta_numeric(n, d, sources, opt);
  const mc::MonteCarloResult mc_off = mc::run_monte_carlo(n, d, sources, cfg);
  obs::set_enabled(true);

  expect_same_numeric(numeric_on, numeric_off);
  expect_same_mc(mc_on, mc_off);
  ASSERT_EQ(moment_on.node.size(), moment_off.node.size());
  for (std::size_t id = 0; id < moment_on.node.size(); ++id) {
    ASSERT_EQ(moment_on.node[id].rise.arrival.mean,
              moment_off.node[id].rise.arrival.mean);
    ASSERT_EQ(moment_on.node[id].rise.arrival.var,
              moment_off.node[id].rise.arrival.var);
    ASSERT_EQ(moment_on.node[id].fall.arrival.mean,
              moment_off.node[id].fall.arrival.mean);
    ASSERT_EQ(moment_on.node[id].fall.arrival.var,
              moment_off.node[id].fall.arrival.var);
  }
}

TEST(Determinism, AnalyzerMatchesLegacyAtOneAndManyThreads) {
  // The acceptance criterion of the unified API: results through the
  // Analyzer facade (compiled plan, shared pattern cache, shared pool)
  // are bit-identical to the legacy engine entry points at 1 and N
  // threads. Repeated runs over the same warm plan must not drift either.
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};

  const core::SpstaResult legacy_moment = core::run_spsta_moment(n, d, sources);
  const core::SpstaNumericResult legacy_numeric =
      core::run_spsta_numeric(n, d, sources);
  mc::MonteCarloConfig cfg;
  cfg.runs = 1500;
  cfg.seed = 7;
  cfg.track_circuit_max = true;
  const mc::MonteCarloResult legacy_mc = mc::run_monte_carlo(n, d, sources, cfg);

  Analyzer analyzer(n, d, sources);
  for (const unsigned threads : {1u, 8u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      AnalysisRequest request;
      request.threads = threads;

      request.engine = Engine::SpstaMoment;
      const AnalysisReport moment_report = analyzer.run(request);
      const core::SpstaResult& moment = moment_report.moment();
      ASSERT_EQ(moment.node.size(), legacy_moment.node.size());
      for (std::size_t id = 0; id < moment.node.size(); ++id) {
        ASSERT_EQ(moment.node[id].probs.pr, legacy_moment.node[id].probs.pr);
        ASSERT_EQ(moment.node[id].rise.mass, legacy_moment.node[id].rise.mass);
        ASSERT_EQ(moment.node[id].rise.arrival.mean,
                  legacy_moment.node[id].rise.arrival.mean);
        ASSERT_EQ(moment.node[id].rise.arrival.var,
                  legacy_moment.node[id].rise.arrival.var);
        ASSERT_EQ(moment.node[id].rise.third_central,
                  legacy_moment.node[id].rise.third_central);
        ASSERT_EQ(moment.node[id].fall.arrival.mean,
                  legacy_moment.node[id].fall.arrival.mean);
        ASSERT_EQ(moment.node[id].fall.arrival.var,
                  legacy_moment.node[id].fall.arrival.var);
      }

      request.engine = Engine::SpstaNumeric;
      const AnalysisReport numeric_report = analyzer.run(request);
      expect_same_numeric(numeric_report.numeric(), legacy_numeric);

      request.engine = Engine::Mc;
      request.runs = cfg.runs;
      request.seed = cfg.seed;
      request.track_circuit_max = true;
      const AnalysisReport mc_report = analyzer.run(request);
      expect_same_mc(mc_report.monte_carlo(), legacy_mc);
    }
  }
}

TEST(Determinism, EcoTransactionsProbesAndQueriesAreThreadCountInvariant) {
  // The incremental engine's level-parallel wave (DESIGN.md §17): an
  // interleaved sequence of batched transactions, what-if probes and point
  // queries must be bit-identical at 1/2/8 threads AND to a fresh full run
  // over the final delay model — probes included, since they propagate
  // through the same parallel wave before their undo log rolls them back.
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel unit = netlist::DelayModel::unit(n);
  const std::vector sources{netlist::scenario_I()};
  const std::vector<NodeId> endpoints = n.timing_endpoints();

  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }

  // One deterministic interleaved script, replayed per thread count.
  const auto run_script = [&](unsigned threads) {
    core::IncrementalSpsta inc(n, unit, sources, /*settle_eps=*/0.0);
    inc.set_threads(threads);
    std::vector<core::NodeTop> probed;   // every probe answer, in order
    std::vector<core::NodeTop> queried;  // every point query, in order
    for (int round = 0; round < 6; ++round) {
      inc.begin_eco();
      for (int k = 0; k < 8; ++k) {
        const std::size_t g = (round * 37 + k * 11) % gates.size();
        inc.set_delay(gates[g], {1.0 + 0.1 * static_cast<double>(k + round), 0.0});
      }
      (void)inc.commit();
      const core::IncrementalSpsta::EcoEdit what_if =
          core::IncrementalSpsta::EcoEdit::delay_edit(
              gates[(round * 13) % gates.size()], {0.6, 0.0});
      const NodeId target = endpoints[round % endpoints.size()];
      const auto probe = inc.probe({&what_if, 1}, {&target, 1});
      probed.push_back(probe.tops.front());
      queried.push_back(inc.node(endpoints[(round * 5) % endpoints.size()]));
    }
    std::vector<core::NodeTop> state = inc.flush();
    return std::tuple(std::move(state), std::move(probed), std::move(queried));
  };

  const auto expect_tops_equal = [](const std::vector<core::NodeTop>& a,
                                    const std::vector<core::NodeTop>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].probs.pr, b[i].probs.pr);
      ASSERT_EQ(a[i].probs.pf, b[i].probs.pf);
      ASSERT_EQ(a[i].rise.mass, b[i].rise.mass);
      ASSERT_EQ(a[i].rise.arrival.mean, b[i].rise.arrival.mean);
      ASSERT_EQ(a[i].rise.arrival.var, b[i].rise.arrival.var);
      ASSERT_EQ(a[i].rise.third_central, b[i].rise.third_central);
      ASSERT_EQ(a[i].fall.mass, b[i].fall.mass);
      ASSERT_EQ(a[i].fall.arrival.mean, b[i].fall.arrival.mean);
      ASSERT_EQ(a[i].fall.arrival.var, b[i].fall.arrival.var);
      ASSERT_EQ(a[i].fall.third_central, b[i].fall.third_central);
    }
  };

  const auto [state1, probed1, queried1] = run_script(1);
  for (const unsigned threads : {2u, 8u}) {
    const auto [state, probed, queried] = run_script(threads);
    expect_tops_equal(state, state1);
    expect_tops_equal(probed, probed1);
    expect_tops_equal(queried, queried1);
  }

  // Fresh full run over the final committed delays (probes must not have
  // left a trace): replay only the committed edits into a plain model.
  netlist::DelayModel final_delays = unit;
  for (int round = 0; round < 6; ++round) {
    for (int k = 0; k < 8; ++k) {
      const std::size_t g = (round * 37 + k * 11) % gates.size();
      final_delays.set_delay(gates[g],
                             {1.0 + 0.1 * static_cast<double>(k + round), 0.0});
    }
  }
  core::IncrementalSpsta fresh(n, final_delays, sources, /*settle_eps=*/0.0);
  expect_tops_equal(state1, fresh.flush());
}

}  // namespace
}  // namespace spsta
