// Tests for Boolean-difference probabilities and Najm transition-density
// propagation (paper Sec. 2.2.2, Eq. 6/7), cross-checked against the BDD
// engine and Monte Carlo toggle counts.

#include "power/transition_density.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"

namespace spsta::power {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(BooleanDifference, PerGateFormulas) {
  const std::vector<double> p{0.3, 0.5};
  // d(AND)/dx_i = product of the other inputs' one-probabilities.
  const auto and_diff = boolean_difference_probabilities(GateType::And, p);
  EXPECT_NEAR(and_diff[0], 0.5, 1e-12);
  EXPECT_NEAR(and_diff[1], 0.3, 1e-12);
  // NAND sensitization is identical to AND.
  const auto nand_diff = boolean_difference_probabilities(GateType::Nand, p);
  EXPECT_NEAR(nand_diff[0], 0.5, 1e-12);
  // OR: product of the other inputs' zero-probabilities.
  const auto or_diff = boolean_difference_probabilities(GateType::Or, p);
  EXPECT_NEAR(or_diff[0], 0.5, 1e-12);
  EXPECT_NEAR(or_diff[1], 0.7, 1e-12);
  // XOR always sensitizes.
  const auto xor_diff = boolean_difference_probabilities(GateType::Xor, p);
  EXPECT_NEAR(xor_diff[0], 1.0, 1e-12);
  EXPECT_NEAR(xor_diff[1], 1.0, 1e-12);
  // Inverters pass everything through.
  const auto not_diff =
      boolean_difference_probabilities(GateType::Not, std::vector<double>{0.3});
  EXPECT_NEAR(not_diff[0], 1.0, 1e-12);
}

TEST(BooleanDifference, ThreeInputAnd) {
  const std::vector<double> p{0.5, 0.4, 0.8};
  const auto diff = boolean_difference_probabilities(GateType::And, p);
  EXPECT_NEAR(diff[0], 0.32, 1e-12);
  EXPECT_NEAR(diff[1], 0.40, 1e-12);
  EXPECT_NEAR(diff[2], 0.20, 1e-12);
}

TEST(TransitionDensity, NajmAndGateExample) {
  // Classic example: 2-input AND, both inputs p=0.5, density rho.
  // rho_y = 0.5*rho1 + 0.5*rho2.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  const std::vector<double> probs{0.5};
  const std::vector<double> dens{0.5};
  const TransitionDensities td = propagate_transition_density(n, probs, dens);
  EXPECT_NEAR(td.density[y], 0.5, 1e-12);
  EXPECT_NEAR(td.signal_probability[y], 0.25, 1e-12);
}

TEST(TransitionDensity, XorDoublesDensity) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::Xor, "y", {a, b});
  const std::vector<double> probs{0.5};
  const std::vector<double> dens{0.3};
  const TransitionDensities td = propagate_transition_density(n, probs, dens);
  EXPECT_NEAR(td.density[y], 0.6, 1e-12);
}

TEST(TransitionDensity, BufferChainPreservesDensity) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = n.add_gate(i % 2 ? GateType::Buf : GateType::Not, "g" + std::to_string(i),
                      {prev});
  }
  const TransitionDensities td = propagate_transition_density(
      n, std::vector<double>{0.5}, std::vector<double>{0.7});
  EXPECT_NEAR(td.density[prev], 0.7, 1e-12);
}

TEST(TransitionDensity, ExactBddMatchesIndependentOnTree) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, c});
  n.mark_output(g2);

  const std::vector<double> probs{0.5};
  const std::vector<double> dens{0.5};
  const TransitionDensities indep =
      propagate_transition_density(n, probs, dens, DensityMethod::Independent);
  const TransitionDensities exact =
      propagate_transition_density(n, probs, dens, DensityMethod::ExactBdd);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(indep.density[id], exact.density[id], 1e-9) << n.node(id).name;
  }
}

TEST(TransitionDensity, ApproximatesMonteCarloRawEdgeRate) {
  // Transition density predicts *pre-glitch-filter* edge counts, so the
  // right MC reference is the raw edge rate, not the filtered four-value
  // toggle probability. The density model still ignores correlation and
  // downstream pulse propagation, hence the moderate tolerance.
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::SourceStats sc = netlist::scenario_I();

  const TransitionDensities td = propagate_transition_density(
      n, std::vector<double>{sc.probs.final_one()},
      std::vector<double>{sc.probs.toggle_probability()});

  mc::MonteCarloConfig cfg;
  cfg.runs = 4000;
  cfg.seed = 5;
  const auto mc_result = mc::run_monte_carlo(n, netlist::DelayModel::unit(n),
                                             std::vector{sc}, cfg);
  const netlist::Levelization lv = netlist::levelize(n);
  double l1_density = 0.0, l1_raw = 0.0;
  double mean_density = 0.0, mean_raw = 0.0, mean_filtered = 0.0;
  std::size_t l1_count = 0, count = 0;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (!netlist::is_combinational(n.node(id).type)) continue;
    mean_density += td.density[id];
    mean_raw += mc_result.node[id].raw_edge_rate();
    mean_filtered += mc_result.node[id].probs().toggle_probability();
    ++count;
    if (lv.level[id] == 1) {  // fed directly by sources: density is exact
      l1_density += td.density[id];
      l1_raw += mc_result.node[id].raw_edge_rate();
      ++l1_count;
    }
  }
  ASSERT_GT(l1_count, 0u);
  EXPECT_NEAR(l1_density / l1_count, l1_raw / l1_count, 0.05 * l1_raw / l1_count + 0.01);

  mean_density /= static_cast<double>(count);
  mean_raw /= static_cast<double>(count);
  mean_filtered /= static_cast<double>(count);
  // Deeper in the circuit the density model propagates unfiltered edge
  // rates, so it sits above the filtered substrate but within a small
  // factor of the raw edge rate.
  EXPECT_GT(mean_density, mean_filtered);
  EXPECT_NEAR(mean_density, mean_raw, 0.6 * mean_raw);
  EXPECT_LT(mean_filtered, mean_raw + 1e-12);
}

TEST(DynamicPower, ScalesLinearly) {
  TransitionDensities td;
  td.density = {0.5, 0.25, 0.25};
  const double p = dynamic_power(td, 1.0, 1e9, 1e-15);
  EXPECT_NEAR(p, 0.5 * 1.0 * 1e9 * 1e-15 * 1.0, 1e-18);
  EXPECT_NEAR(dynamic_power(td, 2.0, 1e9, 1e-15), 4.0 * p, 1e-15);
}

TEST(TransitionDensity, SourceSpanMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)propagate_transition_density(n, std::vector<double>{0.5, 0.5},
                                                  std::vector<double>{0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::power
