// Tests for the deterministic RNG stack: reproducibility and the
// distributional properties the Monte Carlo engine relies on.

#include "stats/rng.hpp"

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "stats/welford.hpp"

namespace spsta::stats {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    m.add(u);
  }
  EXPECT_NEAR(m.mean(), 0.5, 0.005);
  EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.002);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformIndexCoversRangeWithoutBias) {
  Xoshiro256 rng(5);
  std::array<int, 7> counts{};
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t k = rng.uniform_index(7);
    ASSERT_LT(k, 7u);
    ++counts[k];
  }
  for (int c : counts) EXPECT_NEAR(c, kDraws / 7.0, 400.0);
}

TEST(Xoshiro256, NormalMoments) {
  Xoshiro256 rng(6);
  RunningMoments m;
  for (int i = 0; i < 400000; ++i) m.add(rng.normal());
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.02);
  EXPECT_NEAR(m.skewness(), 0.0, 0.02);
  EXPECT_NEAR(m.excess_kurtosis(), 0.0, 0.05);
}

TEST(Xoshiro256, NormalShiftScale) {
  Xoshiro256 rng(7);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(m.mean(), 10.0, 0.05);
  EXPECT_NEAR(m.stddev(), 3.0, 0.05);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(8);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro256, CategoricalMatchesWeights) {
  Xoshiro256 rng(9);
  const std::vector<double> weights{1.0, 2.0, 1.0};  // 25% / 50% / 25%
  std::array<int, 3> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.50, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.25, 0.01);
}

TEST(Xoshiro256, JumpIsDeterministicAndDiverges) {
  Xoshiro256 a(11), b(11), stay(11);
  a.jump();
  b.jump();
  int same_as_jumped = 0, same_as_start = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a();
    if (va == b()) ++same_as_jumped;
    if (va == stay()) ++same_as_start;
  }
  EXPECT_EQ(same_as_jumped, 64);  // jump is a pure function of state
  EXPECT_LT(same_as_start, 2);    // ... 2^128 steps away from the start
}

TEST(Xoshiro256, LongJumpDiffersFromJump) {
  Xoshiro256 a(11), b(11);
  a.jump();
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, JumpDropsCachedNormal) {
  // Box-Muller caches the second deviate; a jumped generator must draw
  // from the post-jump state, not hand out the pre-jump leftover.
  Xoshiro256 replay(12);
  (void)replay.normal();
  const double stale_second = replay.normal();  // the cached deviate

  Xoshiro256 jumped(12);
  (void)jumped.normal();  // caches the same second deviate
  jumped.jump();
  EXPECT_NE(jumped.normal(), stale_second);
}

TEST(Xoshiro256, ForStreamIsAPureFunctionOfSeedAndStream) {
  Xoshiro256 a = Xoshiro256::for_stream(99, 5);
  Xoshiro256 b = Xoshiro256::for_stream(99, 5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DistinctStreamsDiverge) {
  Xoshiro256 s0 = Xoshiro256::for_stream(99, 0);
  Xoshiro256 s1 = Xoshiro256::for_stream(99, 1);
  Xoshiro256 other_seed = Xoshiro256::for_stream(100, 0);
  int same01 = 0, same_seed = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = s0();
    if (v == s1()) ++same01;
    if (v == other_seed()) ++same_seed;
  }
  EXPECT_LT(same01, 2);
  EXPECT_LT(same_seed, 2);
}

TEST(Xoshiro256, CategoricalZeroWeightNeverDrawn) {
  Xoshiro256 rng(10);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

}  // namespace
}  // namespace spsta::stats
