// Tests for statistical crosstalk aggressor alignment — the paper's
// motivating example. Closed form vs Monte Carlo vs the numeric t.o.p.
// variant.

#include "interconnect/crosstalk.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::interconnect {
namespace {

TEST(Crosstalk, PerfectDeterministicAlignment) {
  const CouplingModel cm{0.5, 1.0};
  const CrosstalkPush p =
      analyze_crosstalk({2.0, 0.0}, {2.0, 0.0}, 1.0, cm);
  EXPECT_DOUBLE_EQ(p.alignment_probability, 1.0);
  EXPECT_DOUBLE_EQ(p.mean_push, 0.5);  // peak kernel at u = 0
  EXPECT_DOUBLE_EQ(p.worst_case_push, 0.5);
}

TEST(Crosstalk, DeterministicMiss) {
  const CouplingModel cm{0.5, 1.0};
  const CrosstalkPush p =
      analyze_crosstalk({0.0, 0.0}, {5.0, 0.0}, 1.0, cm);
  EXPECT_DOUBLE_EQ(p.alignment_probability, 0.0);
  EXPECT_DOUBLE_EQ(p.mean_push, 0.0);
  // Worst-case analysis still charges the full push — the pessimism the
  // paper criticizes.
  EXPECT_DOUBLE_EQ(p.worst_case_push, 0.5);
}

TEST(Crosstalk, QuietAggressorContributesNothing) {
  const CouplingModel cm{0.5, 1.0};
  const CrosstalkPush p =
      analyze_crosstalk({0.0, 1.0}, {0.0, 1.0}, 0.0, cm);
  EXPECT_DOUBLE_EQ(p.alignment_probability, 0.0);
  EXPECT_DOUBLE_EQ(p.mean_push, 0.0);
  EXPECT_DOUBLE_EQ(p.worst_case_push, 0.0);
}

TEST(Crosstalk, SwitchProbabilityScalesLinearly) {
  const CouplingModel cm{1.0, 2.0};
  const CrosstalkPush full =
      analyze_crosstalk({0.0, 1.0}, {0.5, 1.0}, 1.0, cm);
  const CrosstalkPush tenth =
      analyze_crosstalk({0.0, 1.0}, {0.5, 1.0}, 0.1, cm);
  EXPECT_NEAR(tenth.alignment_probability, 0.1 * full.alignment_probability, 1e-12);
  EXPECT_NEAR(tenth.mean_push, 0.1 * full.mean_push, 1e-12);
}

class CrosstalkVsMc : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CrosstalkVsMc, ClosedFormMatchesSampling) {
  const auto [mu_offset, sigma, window] = GetParam();
  const CouplingModel cm{0.8, window};
  const stats::Gaussian vic{0.0, 1.0};
  const stats::Gaussian agg{mu_offset, sigma * sigma};
  const CrosstalkPush p = analyze_crosstalk(vic, agg, 0.6, cm);

  stats::Xoshiro256 rng(99);
  stats::RunningMoments push;
  int aligned = 0;
  constexpr int kRuns = 400000;
  for (int i = 0; i < kRuns; ++i) {
    if (!rng.bernoulli(0.6)) {
      push.add(0.0);
      continue;
    }
    const double u = rng.normal(mu_offset, std::sqrt(sigma * sigma + 1.0));
    if (std::abs(u) <= window) {
      ++aligned;
      push.add(0.8 * (1.0 - std::abs(u) / window));
    } else {
      push.add(0.0);
    }
  }
  EXPECT_NEAR(p.alignment_probability, static_cast<double>(aligned) / kRuns, 0.005);
  EXPECT_NEAR(p.mean_push, push.mean(), 0.005);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CrosstalkVsMc,
                         ::testing::Values(std::make_tuple(0.0, 1.0, 1.0),
                                           std::make_tuple(1.5, 0.5, 1.0),
                                           std::make_tuple(-2.0, 2.0, 3.0),
                                           std::make_tuple(0.0, 0.2, 0.5),
                                           std::make_tuple(4.0, 1.0, 1.0)));

TEST(Crosstalk, NumericVariantMatchesClosedForm) {
  const CouplingModel cm{0.7, 1.5};
  const stats::Gaussian vic{1.0, 0.8};
  const stats::Gaussian agg{1.6, 1.2};
  const double p_switch = 0.35;

  const CrosstalkPush closed = analyze_crosstalk(vic, agg, p_switch, cm);

  const auto vic_pdf = stats::PiecewiseDensity::from_gaussian_auto(vic, 8.0, 1001);
  const auto agg_top =
      stats::PiecewiseDensity::from_gaussian_auto(agg, 8.0, 1001, p_switch);
  const CrosstalkPush numeric = analyze_crosstalk(vic_pdf, agg_top, cm);

  EXPECT_NEAR(numeric.alignment_probability, closed.alignment_probability, 0.01);
  EXPECT_NEAR(numeric.mean_push, closed.mean_push, 0.01);
}

TEST(Crosstalk, WorstCaseExceedsStatisticalPush) {
  // The paper's point: SSTA's always-aligned assumption overstates the
  // push whenever alignment is uncertain.
  const CouplingModel cm{1.0, 0.5};
  const CrosstalkPush p =
      analyze_crosstalk({0.0, 1.0}, {0.0, 1.0}, 0.5, cm);
  EXPECT_GT(p.worst_case_push, 3.0 * p.mean_push);
  EXPECT_LT(p.alignment_probability, 0.25);
}

}  // namespace
}  // namespace spsta::interconnect
