// Tests for four-value probability propagation (paper Eq. 9/10): closed
// forms versus exact enumeration, the paper's literal AND formulas, and
// netlist-wide invariants.

#include "sigprob/four_value_prop.hpp"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "sigprob/signal_prob.hpp"
#include "stats/rng.hpp"

namespace spsta::sigprob {
namespace {

using netlist::FourValueProbs;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

FourValueProbs random_probs(stats::Xoshiro256& rng) {
  FourValueProbs p{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
  return p.normalized();
}

void expect_probs_near(const FourValueProbs& a, const FourValueProbs& b, double tol) {
  EXPECT_NEAR(a.p0, b.p0, tol);
  EXPECT_NEAR(a.p1, b.p1, tol);
  EXPECT_NEAR(a.pr, b.pr, tol);
  EXPECT_NEAR(a.pf, b.pf, tol);
}

TEST(FourValueGate, PaperEquation10ForAnd) {
  // The paper's Eq. 10 closed forms for a 2-input AND.
  const FourValueProbs x1{0.1, 0.4, 0.3, 0.2};
  const FourValueProbs x2{0.25, 0.25, 0.25, 0.25};
  const FourValueProbs y = gate_four_value(GateType::And, std::vector{x1, x2});

  const double p1 = x1.p1 * x2.p1;
  const double pr = (x1.p1 + x1.pr) * (x2.p1 + x2.pr) - p1;
  const double pf = (x1.p1 + x1.pf) * (x2.p1 + x2.pf) - p1;
  EXPECT_NEAR(y.p1, p1, 1e-12);
  EXPECT_NEAR(y.pr, pr, 1e-12);
  EXPECT_NEAR(y.pf, pf, 1e-12);
  EXPECT_NEAR(y.p0, 1.0 - p1 - pr - pf, 1e-12);
}

TEST(FourValueGate, NotSwapsZeroOneAndRiseFall) {
  const FourValueProbs x{0.1, 0.2, 0.3, 0.4};
  const FourValueProbs y = gate_four_value(GateType::Not, std::vector{x});
  EXPECT_DOUBLE_EQ(y.p0, 0.2);
  EXPECT_DOUBLE_EQ(y.p1, 0.1);
  EXPECT_DOUBLE_EQ(y.pr, 0.4);
  EXPECT_DOUBLE_EQ(y.pf, 0.3);
}

TEST(FourValueGate, Constants) {
  const FourValueProbs c0 = gate_four_value(GateType::Const0, {});
  EXPECT_DOUBLE_EQ(c0.p0, 1.0);
  const FourValueProbs c1 = gate_four_value(GateType::Const1, {});
  EXPECT_DOUBLE_EQ(c1.p1, 1.0);
}

TEST(FourValueGate, GlitchMassGoesToConstants) {
  // Inputs always switching in opposite directions: AND output is always
  // 0 (the glitch is filtered), never a transition.
  const FourValueProbs rise_only{0.0, 0.0, 1.0, 0.0};
  const FourValueProbs fall_only{0.0, 0.0, 0.0, 1.0};
  const FourValueProbs y =
      gate_four_value(GateType::And, std::vector{rise_only, fall_only});
  EXPECT_NEAR(y.p0, 1.0, 1e-12);
  EXPECT_NEAR(y.pr + y.pf, 0.0, 1e-12);
}

// Closed form vs exact enumeration for every gate type, fanin and seed.
class FourValueSweep
    : public ::testing::TestWithParam<std::tuple<GateType, std::size_t, std::uint64_t>> {};

TEST_P(FourValueSweep, ClosedFormEqualsEnumeration) {
  const auto [type, fanin, seed] = GetParam();
  stats::Xoshiro256 rng(seed);
  std::vector<FourValueProbs> inputs(fanin);
  for (auto& p : inputs) p = random_probs(rng);
  const FourValueProbs closed = gate_four_value(type, inputs);
  const FourValueProbs exact = gate_four_value_enumerated(type, inputs);
  expect_probs_near(closed, exact, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, FourValueSweep,
    ::testing::Combine(::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor,
                                         GateType::Not, GateType::Buf),
                       ::testing::Values<std::size_t>(1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 9, 42)));

TEST(FourValuePropagation, AllNodesValidOnSuiteCircuit) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const std::vector<FourValueProbs> src{netlist::scenario_I().probs};
  const auto probs = propagate_four_value(n, src);
  ASSERT_EQ(probs.size(), n.node_count());
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_TRUE(probs[id].is_valid(1e-9)) << n.node(id).name;
  }
}

TEST(FourValuePropagation, StationaryInputsStayStationary) {
  // With cycle-stationary sources (initial-one prob == final-one prob),
  // every internal net is stationary too: P(initial 1) == P(final 1).
  const Netlist n = netlist::make_s27();
  const std::vector<FourValueProbs> src{netlist::scenario_I().probs};
  const auto probs = propagate_four_value(n, src);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(probs[id].initial_one(), probs[id].final_one(), 1e-12)
        << n.node(id).name;
  }
}

TEST(FourValuePropagation, FinalOneMatchesTwoValueEngine) {
  // P(final = 1) from the four-value engine must equal the classical
  // signal probability computed on the final-value marginals.
  const Netlist n = netlist::make_paper_circuit("s344");
  const netlist::SourceStats sc = netlist::scenario_II();
  const std::vector<FourValueProbs> src{sc.probs};
  const auto probs = propagate_four_value(n, src);

  const std::vector<double> final_probs =
      sigprob::propagate_signal_probabilities(n, std::vector<double>{sc.probs.final_one()});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(probs[id].final_one(), final_probs[id], 1e-9) << n.node(id).name;
  }
}

TEST(FourValuePropagation, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  std::vector<FourValueProbs> two(2, netlist::scenario_I().probs);
  EXPECT_THROW((void)propagate_four_value(n, two), std::invalid_argument);
}

TEST(FourValueEnumeration, RejectsWideGates) {
  std::vector<FourValueProbs> wide(13, netlist::scenario_I().probs);
  EXPECT_THROW((void)gate_four_value_enumerated(GateType::And, wide),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::sigprob
