// Tests for the correlation-aware canonical-form SPSTA engine: it must
// agree with the plain moment engine on trees and *beat* it on
// reconvergent logic, where the plain engine's independence assumption
// inflates the MAX (the residual error the paper's observation 5 names).

#include "core/spsta_canonical.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::core {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(SpstaCanonical, SourcesCarryParameters) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  (void)b;
  netlist::SourceStats sc = netlist::scenario_I();
  sc.rise_arrival = {1.0, 4.0};
  const SpstaCanonicalResult r =
      run_spsta_canonical(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_EQ(r.num_params, 4u);
  EXPECT_DOUBLE_EQ(r.node[a].rise.arrival.nominal(), 1.0);
  EXPECT_DOUBLE_EQ(r.node[a].rise.arrival.sensitivity(0), 2.0);
  EXPECT_DOUBLE_EQ(r.node[a].rise.arrival.sensitivity(1), 0.0);
  EXPECT_DOUBLE_EQ(r.node[a].rise.arrival.residual(), 0.0);
}

TEST(SpstaCanonical, MatchesMomentEngineOnTree) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, c});
  n.mark_output(g2);

  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const SpstaResult plain = run_spsta_moment(n, d, sc);
  const SpstaCanonicalResult canon = run_spsta_canonical(n, d, sc);

  for (NodeId id : {g1, g2}) {
    EXPECT_NEAR(canon.node[id].rise.mass, plain.node[id].rise.mass, 1e-12);
    EXPECT_NEAR(canon.node[id].rise.arrival.mean(), plain.node[id].rise.arrival.mean,
                1e-9)
        << n.node(id).name;
    EXPECT_NEAR(canon.node[id].rise.arrival.variance(), plain.node[id].rise.arrival.var,
                1e-9)
        << n.node(id).name;
  }
}

// The discriminating case: y = AND(buf(a), buf(a)) with always-rising a.
// The true output arrival is a + 2 exactly; the plain engine MAXes two
// "independent" copies and inflates mean and deflates variance.
TEST(SpstaCanonical, ReconvergenceExactWherePlainEngineIsNot) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Buf, "b2", {a});
  const NodeId y = n.add_gate(GateType::And, "y", {b1, b2});
  n.mark_output(y);

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};  // always rising
  sc.rise_arrival = {0.0, 1.0};
  const netlist::DelayModel d = netlist::DelayModel::unit(n);

  const SpstaCanonicalResult canon = run_spsta_canonical(n, d, std::vector{sc});
  const SpstaResult plain = run_spsta_moment(n, d, std::vector{sc});

  // Exact answer: y rises at a + 2 ~ N(2, 1).
  EXPECT_NEAR(canon.node[y].rise.arrival.mean(), 2.0, 1e-9);
  EXPECT_NEAR(canon.node[y].rise.arrival.variance(), 1.0, 1e-9);
  // Full correlation with the source is retained.
  EXPECT_NEAR(canon.arrival_correlation(y, true, a, true), 1.0, 1e-9);

  // The plain engine, blind to the shared source, shifts the mean up and
  // shrinks the variance (exactly the Clark-on-iid artifacts).
  EXPECT_GT(plain.node[y].rise.arrival.mean, 2.3);
  EXPECT_LT(plain.node[y].rise.arrival.var, 0.8);
}

TEST(SpstaCanonical, TracksMonteCarloOnReconvergentCircuit) {
  // A wider diamond: two different-depth paths from the same source.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId p1 = n.add_gate(GateType::Buf, "p1", {a});
  const NodeId p2a = n.add_gate(GateType::Buf, "p2a", {a});
  const NodeId p2b = n.add_gate(GateType::Buf, "p2b", {p2a});
  const NodeId y = n.add_gate(GateType::And, "y", {p1, p2b, b});
  n.mark_output(y);

  netlist::SourceStats sc;
  sc.probs = {0.05, 0.25, 0.6, 0.1};
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const SpstaCanonicalResult canon = run_spsta_canonical(n, d, std::vector{sc});
  const SpstaResult plain = run_spsta_moment(n, d, std::vector{sc});

  mc::MonteCarloConfig cfg;
  cfg.runs = 200000;
  cfg.seed = 77;
  const auto mcr = mc::run_monte_carlo(n, d, std::vector{sc}, cfg);

  const double mc_mu = mcr.node[y].rise_time.mean();
  const double mc_sig = mcr.node[y].rise_time.stddev();
  const double canon_mu_err = std::abs(canon.node[y].rise.arrival.mean() - mc_mu);
  const double plain_mu_err = std::abs(plain.node[y].rise.arrival.mean - mc_mu);
  const double canon_sig_err =
      std::abs(std::sqrt(canon.node[y].rise.arrival.variance()) - mc_sig);
  const double plain_sig_err =
      std::abs(plain.node[y].rise.arrival.stddev() - mc_sig);

  EXPECT_LE(canon_mu_err, plain_mu_err + 1e-9);
  EXPECT_LE(canon_sig_err, plain_sig_err + 1e-9);
  // Residual error stays: canonical forms capture arrival-time correlation,
  // but switching-scenario *weights* still assume value independence (the
  // paper's Sec. 3.5 exact-probability territory).
  EXPECT_LT(canon_mu_err, 0.25);
}

TEST(SpstaCanonical, ImprovesSigmaOnSuiteCircuit) {
  // Aggregate check on a real reconvergent benchmark: canonical sigma at
  // exercised endpoints is at least as close to MC as the plain engine's,
  // on average.
  const Netlist n = netlist::make_paper_circuit("s526");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  const SpstaCanonicalResult canon = run_spsta_canonical(n, d, sc);
  const SpstaResult plain = run_spsta_moment(n, d, sc);
  mc::MonteCarloConfig cfg;
  cfg.runs = 30000;
  cfg.seed = 5;
  const auto mcr = mc::run_monte_carlo(n, d, sc, cfg);

  double canon_err = 0.0, plain_err = 0.0;
  std::size_t count = 0;
  for (NodeId ep : n.timing_endpoints()) {
    if (mcr.node[ep].rise_time.count() < 200) continue;
    const double mc_sig = mcr.node[ep].rise_time.stddev();
    canon_err += std::abs(std::sqrt(canon.node[ep].rise.arrival.variance()) - mc_sig);
    plain_err += std::abs(plain.node[ep].rise.arrival.stddev() - mc_sig);
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_LE(canon_err, plain_err * 1.05 + 1e-6)
      << "canonical " << canon_err / count << " vs plain " << plain_err / count;
}

TEST(SpstaCanonical, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)run_spsta_canonical(n, netlist::DelayModel::unit(n),
                                         std::vector<netlist::SourceStats>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::core
