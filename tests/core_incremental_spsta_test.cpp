// Tests for incremental SPSTA: consistency with the batch engine under
// arbitrary update sequences, and cone-limited work.

#include "core/incremental_spsta.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "stats/rng.hpp"

namespace spsta::core {
namespace {

using netlist::Netlist;
using netlist::NodeId;

void expect_same(const std::vector<NodeTop>& a, const SpstaResult& b, const Netlist& n) {
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(a[id].probs.pr, b.node[id].probs.pr, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].rise.mass, b.node[id].rise.mass, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].rise.arrival.mean, b.node[id].rise.arrival.mean, 1e-12)
        << n.node(id).name;
    EXPECT_NEAR(a[id].fall.arrival.var, b.node[id].fall.arrival.var, 1e-12)
        << n.node(id).name;
  }
}

TEST(IncrementalSpsta, InitialStateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc);
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
  EXPECT_EQ(inc.nodes_reevaluated(), 0u);
}

TEST(IncrementalSpsta, DelayUpdateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s344");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc);

  const NodeId target = n.timing_endpoints().front();
  inc.set_delay(target, {2.0, 0.04});
  d.set_delay(target, {2.0, 0.04});
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
}

TEST(IncrementalSpsta, SourceStatsUpdateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s386");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<netlist::SourceStats> sc(n.timing_sources().size(),
                                       netlist::scenario_I());
  IncrementalSpsta inc(n, d, sc);

  // Flip one input to scenario II statistics.
  sc[3] = netlist::scenario_II();
  inc.set_source_stats(3, sc[3]);
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
}

TEST(IncrementalSpsta, ProbabilityChangePropagatesOnlyWhereItMatters) {
  const Netlist n = netlist::make_paper_circuit("s1238");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc);

  // A delay change at one endpoint gate touches only its (shallow) cone.
  const NodeId ep = n.timing_endpoints().front();
  inc.set_delay(ep, {1.7, 0.0});
  (void)inc.flush();
  EXPECT_GT(inc.nodes_reevaluated(), 0u);
  EXPECT_LT(inc.nodes_reevaluated(), n.node_count() / 4);
}

TEST(IncrementalSpsta, RandomUpdateSequenceStaysConsistent) {
  const Netlist n = netlist::make_paper_circuit("s526");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<netlist::SourceStats> sc(n.timing_sources().size(),
                                       netlist::scenario_I());
  IncrementalSpsta inc(n, d, sc);

  stats::Xoshiro256 rng(808);
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }
  for (int step = 0; step < 20; ++step) {
    if (step % 4 == 3) {
      const std::size_t si = rng.uniform_index(sc.size());
      netlist::SourceStats st = rng.bernoulli(0.5) ? netlist::scenario_II()
                                                   : netlist::scenario_I();
      st.rise_arrival = {rng.uniform(-1.0, 1.0), rng.uniform(0.5, 2.0)};
      sc[si] = st;
      inc.set_source_stats(si, st);
    } else {
      const NodeId g = gates[rng.uniform_index(gates.size())];
      const stats::Gaussian delay{rng.uniform(0.5, 2.0), rng.uniform(0.0, 0.05)};
      d.set_delay(g, delay);
      inc.set_delay(g, delay);
    }
    if (step % 5 == 4) expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
  }
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
}

TEST(IncrementalSpsta, Validation) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSpsta inc(n, d, std::vector{netlist::scenario_I()});
  EXPECT_THROW(inc.set_delay(static_cast<NodeId>(9999), {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(inc.set_source_stats(99, netlist::scenario_I()), std::invalid_argument);
}

}  // namespace
}  // namespace spsta::core
