// Tests for incremental SPSTA: consistency with the batch engine under
// arbitrary update sequences, and cone-limited work.

#include "core/incremental_spsta.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "netlist/iscas89.hpp"
#include "stats/rng.hpp"

namespace spsta::core {
namespace {

using netlist::Netlist;
using netlist::NodeId;

void expect_same(const std::vector<NodeTop>& a, const SpstaResult& b, const Netlist& n) {
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(a[id].probs.pr, b.node[id].probs.pr, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].rise.mass, b.node[id].rise.mass, 1e-12) << n.node(id).name;
    EXPECT_NEAR(a[id].rise.arrival.mean, b.node[id].rise.arrival.mean, 1e-12)
        << n.node(id).name;
    EXPECT_NEAR(a[id].fall.arrival.var, b.node[id].fall.arrival.var, 1e-12)
        << n.node(id).name;
  }
}

TEST(IncrementalSpsta, InitialStateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc);
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
  EXPECT_EQ(inc.nodes_reevaluated(), 0u);
}

TEST(IncrementalSpsta, DelayUpdateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s344");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc);

  const NodeId target = n.timing_endpoints().front();
  inc.set_delay(target, {2.0, 0.04});
  d.set_delay(target, {2.0, 0.04});
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
}

TEST(IncrementalSpsta, SourceStatsUpdateMatchesBatch) {
  const Netlist n = netlist::make_paper_circuit("s386");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<netlist::SourceStats> sc(n.timing_sources().size(),
                                       netlist::scenario_I());
  IncrementalSpsta inc(n, d, sc);

  // Flip one input to scenario II statistics.
  sc[3] = netlist::scenario_II();
  inc.set_source_stats(3, sc[3]);
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
}

TEST(IncrementalSpsta, ProbabilityChangePropagatesOnlyWhereItMatters) {
  const Netlist n = netlist::make_paper_circuit("s1238");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc);

  // A delay change at one endpoint gate touches only its (shallow) cone.
  const NodeId ep = n.timing_endpoints().front();
  inc.set_delay(ep, {1.7, 0.0});
  (void)inc.flush();
  EXPECT_GT(inc.nodes_reevaluated(), 0u);
  EXPECT_LT(inc.nodes_reevaluated(), n.node_count() / 4);
}

TEST(IncrementalSpsta, RandomUpdateSequenceStaysConsistent) {
  const Netlist n = netlist::make_paper_circuit("s526");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<netlist::SourceStats> sc(n.timing_sources().size(),
                                       netlist::scenario_I());
  IncrementalSpsta inc(n, d, sc);

  stats::Xoshiro256 rng(808);
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }
  for (int step = 0; step < 20; ++step) {
    if (step % 4 == 3) {
      const std::size_t si = rng.uniform_index(sc.size());
      netlist::SourceStats st = rng.bernoulli(0.5) ? netlist::scenario_II()
                                                   : netlist::scenario_I();
      st.rise_arrival = {rng.uniform(-1.0, 1.0), rng.uniform(0.5, 2.0)};
      sc[si] = st;
      inc.set_source_stats(si, st);
    } else {
      const NodeId g = gates[rng.uniform_index(gates.size())];
      const stats::Gaussian delay{rng.uniform(0.5, 2.0), rng.uniform(0.0, 0.05)};
      d.set_delay(g, delay);
      inc.set_delay(g, delay);
    }
    if (step % 5 == 4) expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
  }
  expect_same(inc.flush(), run_spsta_moment(n, d, sc), n);
}

// ---- ECO transactions and what-if probes (DESIGN.md §17) ----

// Bitwise equality: the transaction/probe contract is exact at
// settle_eps == 0, not merely within tolerance.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

bool bits_equal(const TransitionTop& a, const TransitionTop& b) {
  return bits_equal(a.mass, b.mass) && bits_equal(a.arrival.mean, b.arrival.mean) &&
         bits_equal(a.arrival.var, b.arrival.var) &&
         bits_equal(a.third_central, b.third_central);
}

bool bits_equal(const NodeTop& a, const NodeTop& b) {
  return bits_equal(a.probs.p0, b.probs.p0) && bits_equal(a.probs.p1, b.probs.p1) &&
         bits_equal(a.probs.pr, b.probs.pr) && bits_equal(a.probs.pf, b.probs.pf) &&
         bits_equal(a.rise, b.rise) && bits_equal(a.fall, b.fall);
}

void expect_bits_equal(const std::vector<NodeTop>& a, const std::vector<NodeTop>& b,
                       const Netlist& n) {
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_TRUE(bits_equal(a[id], b[id])) << n.node(id).name;
  }
}

TEST(IncrementalSpsta, TransactionCommitMatchesFreshFullRun) {
  const Netlist n = netlist::make_paper_circuit("s1196");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  IncrementalSpsta inc(n, d, sc, /*settle_eps=*/0.0);

  stats::Xoshiro256 rng(4242);
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }
  netlist::DelayModel final_delays = d;
  inc.begin_eco();
  EXPECT_TRUE(inc.in_transaction());
  for (int i = 0; i < 24; ++i) {
    const NodeId g = gates[rng.uniform_index(gates.size())];
    const stats::Gaussian delay{rng.uniform(0.5, 2.0), rng.uniform(0.0, 0.01)};
    inc.set_delay(g, delay);
    final_delays.set_delay(g, delay);
  }
  const auto stats = inc.commit();
  EXPECT_FALSE(inc.in_transaction());
  EXPECT_GT(stats.cone_size, 0u);

  IncrementalSpsta fresh(n, final_delays, sc, /*settle_eps=*/0.0);
  expect_bits_equal(inc.flush(), fresh.flush(), n);
}

TEST(IncrementalSpsta, ReadsThrowWhileTransactionOpen) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSpsta inc(n, d, std::vector{netlist::scenario_I()});
  inc.begin_eco();
  EXPECT_THROW((void)inc.node(0), std::logic_error);
  EXPECT_THROW((void)inc.flush(), std::logic_error);
  EXPECT_THROW(inc.begin_eco(), std::logic_error);
  (void)inc.commit();
  EXPECT_THROW((void)inc.commit(), std::logic_error);  // no open transaction
  (void)inc.flush();                                   // usable again
}

TEST(IncrementalSpsta, ProbeMatchesCommitThenQuery) {
  const Netlist n = netlist::make_paper_circuit("s1238");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const std::vector<NodeId> endpoints = n.timing_endpoints();
  const std::vector<NodeId> targets{endpoints[0], endpoints[endpoints.size() / 2]};

  stats::Xoshiro256 rng(99);
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }
  std::vector<IncrementalSpsta::EcoEdit> edits;
  for (int i = 0; i < 6; ++i) {
    edits.push_back(IncrementalSpsta::EcoEdit::delay_edit(
        gates[rng.uniform_index(gates.size())],
        stats::Gaussian{rng.uniform(0.5, 2.0), 0.0}));
  }

  IncrementalSpsta prober(n, d, sc, /*settle_eps=*/0.0);
  const auto probed = prober.probe(edits, targets);
  ASSERT_EQ(probed.tops.size(), targets.size());

  IncrementalSpsta committed(n, d, sc, /*settle_eps=*/0.0);
  committed.begin_eco();
  for (const auto& e : edits) committed.set_delay(e.node, e.delay);
  (void)committed.commit();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_TRUE(bits_equal(probed.tops[i], committed.node(targets[i])));
  }
}

TEST(IncrementalSpsta, ProbeLeavesStateAndDelaysBitwiseUntouched) {
  const Netlist n = netlist::make_paper_circuit("s344");
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (netlist::is_combinational(n.node(id).type)) gates.push_back(id);
  }
  // Directional override on one probed gate: revert must restore all three
  // delay slots, because set_delay clears rise/fall overrides.
  const NodeId dir_gate = gates[2];
  d.set_rise_delay(dir_gate, {1.5, 0.01});
  d.set_fall_delay(dir_gate, {0.75, 0.02});

  IncrementalSpsta inc(n, d, std::vector{netlist::scenario_I()},
                       /*settle_eps=*/0.0);
  const std::vector<NodeTop> before = inc.flush();  // copy

  const std::vector<NodeId> targets{n.timing_endpoints().front()};
  const std::vector<IncrementalSpsta::EcoEdit> edits{
      IncrementalSpsta::EcoEdit::delay_edit(gates[0], {1.9, 0.0}),
      IncrementalSpsta::EcoEdit::delay_edit(dir_gate, {0.6, 0.0}),
  };
  for (int round = 0; round < 3; ++round) {
    (void)inc.probe(edits, targets);
  }
  expect_bits_equal(inc.flush(), before, n);

  // The directional override survived probe/revert: committing an unrelated
  // edit and re-flushing still matches a fresh run over the original model.
  inc.set_delay(gates[1], {1.3, 0.0});
  netlist::DelayModel d2 = d;
  d2.set_delay(gates[1], {1.3, 0.0});
  IncrementalSpsta fresh(n, d2, std::vector{netlist::scenario_I()},
                         /*settle_eps=*/0.0);
  expect_bits_equal(inc.flush(), fresh.flush(), n);
}

TEST(IncrementalSpsta, ProbeValidatesEditsAndTargets) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSpsta inc(n, d, std::vector{netlist::scenario_I()});
  const std::vector<NodeId> ok_target{n.timing_endpoints().front()};
  const std::vector<IncrementalSpsta::EcoEdit> bad_edit{
      IncrementalSpsta::EcoEdit::delay_edit(static_cast<NodeId>(9999), {1.0, 0.0})};
  EXPECT_THROW((void)inc.probe(bad_edit, ok_target), std::invalid_argument);
  const std::vector<IncrementalSpsta::EcoEdit> ok_edit{
      IncrementalSpsta::EcoEdit::delay_edit(ok_target.front(), {1.5, 0.0})};
  const std::vector<NodeId> bad_target{static_cast<NodeId>(9999)};
  EXPECT_THROW((void)inc.probe(ok_edit, bad_target), std::invalid_argument);
  inc.begin_eco();
  EXPECT_THROW((void)inc.probe(ok_edit, ok_target), std::logic_error);
  (void)inc.commit();
}

TEST(IncrementalSpsta, EpochAdvancesOnEffectiveEditsOnly) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSpsta inc(n, d, std::vector{netlist::scenario_I()});
  const std::uint64_t e0 = inc.epoch();
  const NodeId g = n.timing_endpoints().front();
  inc.set_delay(g, {1.0, 0.0});  // no-op: unit delay already
  EXPECT_EQ(inc.epoch(), e0);
  inc.set_delay(g, {1.5, 0.0});
  EXPECT_GT(inc.epoch(), e0);
}

TEST(IncrementalSpsta, Validation) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  IncrementalSpsta inc(n, d, std::vector{netlist::scenario_I()});
  EXPECT_THROW(inc.set_delay(static_cast<NodeId>(9999), {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(inc.set_source_stats(99, netlist::scenario_I()), std::invalid_argument);
}

}  // namespace
}  // namespace spsta::core
