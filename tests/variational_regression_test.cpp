// Tests for least-squares fitting of variational delay models.

#include "variational/regression.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace spsta::variational {
namespace {

TEST(LeastSquares, ExactSolveOfDeterminedSystem) {
  // y = 2 x0 - x1 over 3 samples.
  const std::vector<double> x{1.0, 0.0,   //
                              0.0, 1.0,   //
                              1.0, 1.0};
  const std::vector<double> y{2.0, -1.0, 1.0};
  const std::vector<double> beta = least_squares(x, 3, 2, y);
  EXPECT_NEAR(beta[0], 2.0, 1e-9);
  EXPECT_NEAR(beta[1], -1.0, 1e-9);
}

TEST(LeastSquares, ShapeValidation) {
  EXPECT_THROW((void)least_squares(std::vector<double>(5, 0.0), 3, 2,
                                   std::vector<double>(3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW((void)least_squares(std::vector<double>(2, 0.0), 1, 2,
                                   std::vector<double>(1, 0.0)),
               std::invalid_argument);
}

TEST(FitLinear, RecoversCoefficientsFromNoisySamples) {
  stats::Xoshiro256 rng(404);
  constexpr std::size_t kDims = 3;
  constexpr std::size_t kSamples = 2000;
  const double truth[kDims] = {1.5, -2.0, 0.7};
  const double intercept = 4.0;

  std::vector<double> samples(kSamples * kDims);
  std::vector<double> responses(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    double y = intercept;
    for (std::size_t d = 0; d < kDims; ++d) {
      const double v = rng.normal();
      samples[i * kDims + d] = v;
      y += truth[d] * v;
    }
    responses[i] = y + 0.05 * rng.normal();
  }
  const LinearModel m = fit_linear(samples, kDims, responses);
  EXPECT_NEAR(m.intercept, intercept, 0.01);
  for (std::size_t d = 0; d < kDims; ++d) EXPECT_NEAR(m.coeffs[d], truth[d], 0.01);

  const std::vector<double> probe{1.0, 1.0, 1.0};
  EXPECT_NEAR(m.predict(probe), intercept + 1.5 - 2.0 + 0.7, 0.05);
}

TEST(FitQuadratic, RecoversQuadraticSurface) {
  stats::Xoshiro256 rng(505);
  constexpr std::size_t kDims = 2;
  constexpr std::size_t kSamples = 4000;
  // y = 1 + 2 x0 - x1 + 0.5 x0^2 + 0.3 x0 x1 - 0.2 x1^2.
  std::vector<double> samples(kSamples * kDims);
  std::vector<double> responses(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double a = rng.normal();
    const double b = rng.normal();
    samples[i * kDims] = a;
    samples[i * kDims + 1] = b;
    responses[i] = 1.0 + 2.0 * a - b + 0.5 * a * a + 0.3 * a * b - 0.2 * b * b +
                   0.02 * rng.normal();
  }
  const QuadraticModel m = fit_quadratic(samples, kDims, responses);
  EXPECT_NEAR(m.intercept, 1.0, 0.02);
  EXPECT_NEAR(m.linear[0], 2.0, 0.02);
  EXPECT_NEAR(m.linear[1], -1.0, 0.02);
  EXPECT_NEAR(m.quadratic[0], 0.5, 0.02);   // x0^2
  EXPECT_NEAR(m.quadratic[1], 0.3, 0.02);   // x0 x1
  EXPECT_NEAR(m.quadratic[2], -0.2, 0.02);  // x1^2

  const std::vector<double> probe{0.5, -0.5};
  const double expected = 1.0 + 1.0 + 0.5 + 0.5 * 0.25 + 0.3 * -0.25 - 0.2 * 0.25;
  EXPECT_NEAR(m.predict(probe), expected, 0.05);
}

}  // namespace
}  // namespace spsta::variational
