// Tests for the report substrate and the paper-experiment pipeline.

#include "report/experiment.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "report/table.hpp"

namespace spsta::report {
namespace {

TEST(Table, AlignsColumnsAndUnderlines) {
  Table t({"name", "value"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  EXPECT_NE(s.find("longer  2"), std::string::npos);
}

TEST(Table, MissingCellsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW((void)t.to_string());
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Experiment, RunsEndToEndOnS27) {
  ExperimentConfig cfg;
  cfg.mc_runs = 2000;
  const CircuitExperiment e =
      run_paper_experiment(netlist::make_s27(), cfg);

  EXPECT_EQ(e.rise.circuit, "s27");
  EXPECT_TRUE(e.rise.rising);
  EXPECT_FALSE(e.fall.rising);
  EXPECT_NE(e.rise.endpoint, netlist::kInvalidNode);

  // All quantities finite and in plausible ranges.
  EXPECT_GT(e.rise.ssta_mu, 0.0);
  EXPECT_GT(e.rise.ssta_sigma, 0.0);
  EXPECT_GE(e.rise.spsta_p, 0.0);
  EXPECT_LE(e.rise.spsta_p, 1.0);
  EXPECT_GE(e.rise.mc_p, 0.0);
  EXPECT_LE(e.rise.mc_p, 1.0);

  EXPECT_GT(e.runtime.spsta_seconds, 0.0);
  EXPECT_GT(e.runtime.ssta_seconds, 0.0);
  EXPECT_GT(e.runtime.mc_seconds, 0.0);
  EXPECT_GE(e.signal_prob_error, 0.0);
  EXPECT_LT(e.signal_prob_error, 0.5);
}

TEST(Experiment, SpstaTracksMcTransitionProbability) {
  ExperimentConfig cfg;
  cfg.mc_runs = 6000;
  const CircuitExperiment e =
      run_paper_experiment(netlist::make_paper_circuit("s298"), cfg);
  // SPSTA's occurrence probability should be in the same regime as MC's
  // (the paper's observation 4: SSTA cannot provide this at all).
  EXPECT_NEAR(e.rise.spsta_p, e.rise.mc_p, 0.15);
  EXPECT_NEAR(e.fall.spsta_p, e.fall.mc_p, 0.15);
}

TEST(Experiment, ErrorSummaryAggregation) {
  DirectionRow a;
  a.spsta_mu = 9.0;
  a.ssta_mu = 12.0;
  a.mc_mu = 10.0;
  a.spsta_sigma = 1.1;
  a.ssta_sigma = 0.5;
  a.mc_sigma = 1.0;
  a.spsta_p = 0.25;
  a.mc_p = 0.2;
  DirectionRow b = a;
  b.spsta_mu = 11.0;

  const std::vector<DirectionRow> rows{a, b};
  const ErrorSummary s = summarize_errors(rows);
  EXPECT_EQ(s.rows_mu, 2u);
  EXPECT_NEAR(s.spsta_mu, 0.1, 1e-12);
  EXPECT_NEAR(s.ssta_mu, 0.2, 1e-12);
  EXPECT_NEAR(s.spsta_sigma, 0.1, 1e-9);
  EXPECT_NEAR(s.ssta_sigma, 0.5, 1e-12);
  EXPECT_NEAR(s.spsta_p, 0.25, 1e-9);
}

TEST(Experiment, ErrorSummarySkipsZeroReferences) {
  DirectionRow a;  // all MC references zero
  const std::vector<DirectionRow> rows{a};
  const ErrorSummary s = summarize_errors(rows);
  EXPECT_EQ(s.rows_mu, 0u);
  EXPECT_EQ(s.rows_sigma, 0u);
  EXPECT_EQ(s.rows_p, 0u);
  EXPECT_EQ(s.spsta_mu, 0.0);
}

TEST(Experiment, HeadlineClaimOnOneCircuit) {
  // The paper's core claim in miniature: SPSTA's sigma error vs MC is
  // smaller than SSTA's sigma error (SSTA's MIN/MAX shrinks deviations).
  // Aggregate a few circuits so at least some rows have well-defined MC
  // sigma (P ~ 0 rows are skipped, as in the paper's own Table 2).
  ExperimentConfig cfg;
  cfg.mc_runs = 6000;
  std::vector<DirectionRow> rows;
  for (const char* name : {"s208", "s386", "s526"}) {
    const CircuitExperiment e =
        run_paper_experiment(netlist::make_paper_circuit(name), cfg);
    rows.push_back(e.rise);
    rows.push_back(e.fall);
  }
  const ErrorSummary s = summarize_errors(rows);
  ASSERT_GT(s.rows_sigma, 0u);
  EXPECT_LT(s.spsta_sigma, s.ssta_sigma);
}

}  // namespace
}  // namespace spsta::report
