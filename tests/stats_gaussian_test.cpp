// Tests for the Gaussian value type and Clark MAX/MIN moment matching
// (paper Eq. 2 and Eq. 4), validated against Monte Carlo sampling.

#include "stats/gaussian.hpp"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::stats {
namespace {

TEST(Gaussian, SumMeansAndVariancesAdd) {
  const Gaussian a{2.0, 1.5};
  const Gaussian b{-1.0, 0.5};
  const Gaussian s = sum(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.var, 2.0);
}

TEST(Gaussian, SumWithCovariance) {
  const Gaussian a{0.0, 1.0};
  const Gaussian b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(sum(a, b, 0.5).var, 3.0);
  EXPECT_DOUBLE_EQ(sum(a, b, -1.0).var, 0.0);  // perfectly anti-correlated
}

TEST(Gaussian, AffineTransform) {
  const Gaussian g = affine({1.0, 4.0}, -2.0, 3.0);
  EXPECT_DOUBLE_EQ(g.mean, 1.0);
  EXPECT_DOUBLE_EQ(g.var, 16.0);
}

TEST(Gaussian, CdfPdfQuantileConsistency) {
  const Gaussian g{5.0, 9.0};
  EXPECT_NEAR(g.cdf(5.0), 0.5, 1e-12);
  EXPECT_NEAR(g.cdf(8.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(g.quantile(g.cdf(7.0)), 7.0, 1e-8);
}

TEST(Gaussian, DegenerateBehavesLikeConstant) {
  const Gaussian c{2.0, 0.0};
  EXPECT_EQ(c.cdf(1.9), 0.0);
  EXPECT_EQ(c.cdf(2.0), 1.0);
  EXPECT_EQ(c.quantile(0.7), 2.0);
}

TEST(ClarkMax, EqualOperandsKnownFormula) {
  // MAX of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const Gaussian g{0.0, 1.0};
  const ClarkResult r = clark_max(g, g);
  EXPECT_NEAR(r.moments.mean, 1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(r.moments.var, 1.0 - 1.0 / M_PI, 1e-12);
  EXPECT_NEAR(r.tightness, 0.5, 1e-12);
}

TEST(ClarkMax, DominantOperandWins) {
  const ClarkResult r = clark_max({100.0, 1.0}, {0.0, 1.0});
  EXPECT_NEAR(r.moments.mean, 100.0, 1e-9);
  EXPECT_NEAR(r.moments.var, 1.0, 1e-6);
  EXPECT_NEAR(r.tightness, 1.0, 1e-12);
}

TEST(ClarkMax, PerfectlyCorrelatedEqualVariance) {
  // theta == 0: the max is just the operand with the larger mean.
  const Gaussian a{1.0, 2.0};
  const Gaussian b{0.0, 2.0};
  const ClarkResult r = clark_max(a, b, /*cov=*/2.0);
  EXPECT_EQ(r.moments, a);
  EXPECT_EQ(r.tightness, 1.0);
}

TEST(ClarkMin, DualOfMax) {
  const Gaussian a{3.0, 1.0};
  const Gaussian b{3.5, 2.0};
  const ClarkResult mx = clark_max({-a.mean, a.var}, {-b.mean, b.var});
  const ClarkResult mn = clark_min(a, b);
  EXPECT_NEAR(mn.moments.mean, -mx.moments.mean, 1e-12);
  EXPECT_NEAR(mn.moments.var, mx.moments.var, 1e-12);
}

TEST(ClarkMin, EqualIidKnownFormula) {
  const Gaussian g{0.0, 1.0};
  const ClarkResult r = clark_min(g, g);
  EXPECT_NEAR(r.moments.mean, -1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(r.moments.var, 1.0 - 1.0 / M_PI, 1e-12);
}

// Clark is exact in the first two moments for independent operands:
// cross-check against sampling across operand geometries.
class ClarkVsMonteCarlo
    : public ::testing::TestWithParam<std::tuple<double, double, double, double>> {};

TEST_P(ClarkVsMonteCarlo, MomentsMatchSampling) {
  const auto [m1, s1, m2, s2] = GetParam();
  const Gaussian a{m1, s1 * s1};
  const Gaussian b{m2, s2 * s2};
  const ClarkResult r = clark_max(a, b);

  Xoshiro256 rng(42);
  RunningMoments mom;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) {
    mom.add(std::max(rng.normal(m1, s1), rng.normal(m2, s2)));
  }
  EXPECT_NEAR(r.moments.mean, mom.mean(), 0.01);
  EXPECT_NEAR(r.moments.stddev(), mom.stddev(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ClarkVsMonteCarlo,
    ::testing::Values(std::make_tuple(0.0, 1.0, 0.0, 1.0),
                      std::make_tuple(0.0, 1.0, 0.5, 1.0),
                      std::make_tuple(0.0, 1.0, 0.0, 3.0),
                      std::make_tuple(-2.0, 0.5, 2.0, 0.5),
                      std::make_tuple(1.0, 2.0, 1.2, 0.1),
                      std::make_tuple(5.0, 1.0, -5.0, 1.0)));

TEST(ClarkMax, TightnessIsProbabilityFirstWins) {
  const Gaussian a{1.0, 1.0};
  const Gaussian b{0.0, 1.0};
  const ClarkResult r = clark_max(a, b);
  // P(a > b) with a-b ~ N(1, 2).
  const Gaussian diff{1.0, 2.0};
  EXPECT_NEAR(r.tightness, 1.0 - diff.cdf(0.0), 1e-12);
}

}  // namespace
}  // namespace spsta::stats
