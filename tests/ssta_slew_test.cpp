// Tests for slew propagation and slew-aware delays.

#include "ssta/slew.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::ssta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Slew, SingleGateLinearModel) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);

  SlewModel model;
  SlewCell cell;
  cell.d0 = 1.0;
  cell.d_slew = 0.2;
  cell.d_load = 0.1;
  cell.s0 = 0.3;
  cell.s_slew = 0.4;
  cell.s_load = 0.05;
  model.set_default(cell);

  // Worst fanin slew is max(0.5, 0.8) = 0.8; y has zero fanouts.
  const std::vector<double> slews{0.5, 0.8};
  const SlewResult r = propagate_slews(n, model, slews);
  EXPECT_DOUBLE_EQ(r.slew[y], 0.3 + 0.4 * 0.8);
  EXPECT_DOUBLE_EQ(r.delay[y], 1.0 + 0.2 * 0.8);
}

TEST(Slew, ChainConvergesToFixedPoint) {
  // slew_{k+1} = s0 + s_slew * slew_k converges to s0/(1-s_slew).
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 40; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  n.mark_output(prev);

  SlewModel model;
  SlewCell cell;
  cell.s0 = 0.2;
  cell.s_slew = 0.5;
  cell.s_load = 0.0;
  model.set_default(cell);

  const SlewResult r = propagate_slews(n, model, std::vector<double>{3.0});
  EXPECT_NEAR(r.slew[prev], 0.2 / (1.0 - 0.5), 1e-9);
}

TEST(Slew, DegradedSlewSlowsDownstreamGates) {
  // A big fanout node degrades slew, making the *next* stage slower.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId hub = n.add_gate(GateType::Buf, "hub", {a});
  std::vector<NodeId> sinks;
  for (int i = 0; i < 8; ++i) {
    sinks.push_back(n.add_gate(GateType::Not, "s" + std::to_string(i), {hub}));
  }
  const NodeId lone = n.add_gate(GateType::Buf, "lone", {a});
  const NodeId after_hub = n.add_gate(GateType::Not, "after_hub", {sinks[0]});
  const NodeId after_lone = n.add_gate(GateType::Not, "after_lone", {lone});
  n.mark_output(after_hub);
  n.mark_output(after_lone);

  SlewModel model;  // defaults: s_load = 0.1, d_slew = 0.1
  const SlewResult r = propagate_slews(n, model, std::vector<double>{0.2});
  EXPECT_GT(r.slew[hub], r.slew[lone]);           // 8 fanouts vs 1
  EXPECT_GT(r.delay[sinks[0]], r.delay[after_lone]);
}

TEST(Slew, PerTypeCellsOverrideDefault) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, a});
  const NodeId g2 = n.add_gate(GateType::Nor, "g2", {a, a});
  n.mark_output(g1);
  n.mark_output(g2);

  SlewModel model;
  SlewCell fast;
  fast.d0 = 0.5;
  model.set_cell(GateType::Nand, fast);
  const SlewResult r = propagate_slews(n, model, std::vector<double>{0.0});
  EXPECT_LT(r.delay[g1], r.delay[g2]);  // NAND uses the fast cell
}

TEST(Slew, ToDelayModelFeedsEngines) {
  const Netlist n = netlist::make_s27();
  SlewModel model;
  const SlewResult r = propagate_slews(n, model, std::vector<double>{0.3});
  const netlist::DelayModel d = r.to_delay_model(n);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_DOUBLE_EQ(d.delay(id).mean, r.delay[id]);
    EXPECT_DOUBLE_EQ(d.delay(id).var, 0.0);
  }
}

TEST(Slew, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  SlewModel model;
  EXPECT_THROW((void)propagate_slews(n, model, std::vector<double>{0.1, 0.2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::ssta
