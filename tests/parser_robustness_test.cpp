// Robustness fuzzing for the three text parsers (.bench, structural
// Verilog, cell library): random garbage and random mutations of valid
// inputs must produce a clean parse error (or a valid netlist), never a
// crash, hang, or inconsistent object.

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"
#include "netlist/verilog_io.hpp"
#include "stats/rng.hpp"

namespace spsta::netlist {
namespace {

std::string random_garbage(stats::Xoshiro256& rng, std::size_t len) {
  static constexpr char kChars[] =
      "abcdefgXYZ0123456789 _().,=;#/*\n\t\"\\-+[]";
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kChars[rng.uniform_index(sizeof(kChars) - 1)]);
  }
  return s;
}

std::string mutate(stats::Xoshiro256& rng, std::string text, int edits) {
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos = rng.uniform_index(text.size());
    switch (rng.uniform_index(3)) {
      case 0: text.erase(pos, 1); break;
      case 1: text.insert(pos, 1, static_cast<char>('!' + rng.uniform_index(90))); break;
      default: text[pos] = static_cast<char>('!' + rng.uniform_index(90)); break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, BenchGarbageNeverCrashes) {
  stats::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = random_garbage(rng, 1 + rng.uniform_index(300));
    try {
      const Netlist n = parse_bench(text);
      n.validate();               // success must yield a coherent object
      (void)levelize(n);
    } catch (const BenchParseError&) {
    } catch (const std::logic_error&) {  // combinational cycle is acceptable
    }
  }
}

TEST_P(ParserFuzz, BenchMutationsOfS27NeverCrash) {
  stats::Xoshiro256 rng(GetParam() ^ 0xBEEF);
  const std::string base{s27_bench_text()};
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = mutate(rng, base, 1 + static_cast<int>(rng.uniform_index(8)));
    try {
      const Netlist n = parse_bench(text);
      n.validate();
      (void)levelize(n);
    } catch (const BenchParseError&) {
    } catch (const std::logic_error&) {
    }
  }
}

TEST_P(ParserFuzz, VerilogGarbageNeverCrashes) {
  stats::Xoshiro256 rng(GetParam() ^ 0xCAFE);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = "module m (a);\n";
    text += random_garbage(rng, 1 + rng.uniform_index(200));
    try {
      const Netlist n = parse_verilog(text);
      n.validate();
      (void)levelize(n);
    } catch (const VerilogParseError&) {
    } catch (const std::logic_error&) {
    }
  }
}

TEST_P(ParserFuzz, VerilogMutationsNeverCrash) {
  stats::Xoshiro256 rng(GetParam() ^ 0xD00D);
  const std::string base = write_verilog(make_s27());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = mutate(rng, base, 1 + static_cast<int>(rng.uniform_index(6)));
    try {
      const Netlist n = parse_verilog(text);
      n.validate();
      (void)levelize(n);
    } catch (const VerilogParseError&) {
    } catch (const std::logic_error&) {
    }
  }
}

TEST_P(ParserFuzz, CellLibraryGarbageNeverCrashes) {
  stats::Xoshiro256 rng(GetParam() ^ 0xFEED);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string text = random_garbage(rng, 1 + rng.uniform_index(120));
    try {
      (void)CellLibrary::parse(text);
    } catch (const CellLibraryParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1, 7, 42, 1234, 987654321));

// ---------------------------------------------------------------------------
// Deterministic hardening cases: files produced on other platforms (CRLF
// line endings, UTF-8 byte-order marks) must parse to the identical design,
// and degenerate inputs must produce a clean error, never a bogus netlist.

std::string with_crlf(std::string_view text) {
  std::string out;
  out.reserve(text.size() + text.size() / 16);
  for (char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

constexpr std::string_view kBom = "\xEF\xBB\xBF";

TEST(ParserHardening, BenchCrlfParsesIdentically) {
  const std::string base{s27_bench_text()};
  const Netlist plain = parse_bench(base);
  const Netlist crlf = parse_bench(with_crlf(base));
  EXPECT_EQ(write_bench(plain), write_bench(crlf));
}

TEST(ParserHardening, BenchBomParsesIdentically) {
  const std::string base{s27_bench_text()};
  const Netlist plain = parse_bench(base);
  const Netlist bom = parse_bench(std::string(kBom) + base);
  EXPECT_EQ(write_bench(plain), write_bench(bom));
  const Netlist both = parse_bench(std::string(kBom) + with_crlf(base));
  EXPECT_EQ(write_bench(plain), write_bench(both));
}

TEST(ParserHardening, BenchEmptyInputIsACleanError) {
  EXPECT_THROW((void)parse_bench(""), BenchParseError);
  EXPECT_THROW((void)parse_bench("\n\n  \t \n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("# just a comment\n# another\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench(std::string(kBom)), BenchParseError);
}

TEST(ParserHardening, VerilogCrlfParsesIdentically) {
  const std::string base = write_verilog(make_s27());
  const Netlist plain = parse_verilog(base);
  const Netlist crlf = parse_verilog(with_crlf(base));
  EXPECT_EQ(write_verilog(plain), write_verilog(crlf));
}

TEST(ParserHardening, VerilogBomParsesIdentically) {
  const std::string base = write_verilog(make_s27());
  const Netlist plain = parse_verilog(base);
  const Netlist bom = parse_verilog(std::string(kBom) + base);
  EXPECT_EQ(write_verilog(plain), write_verilog(bom));
}

TEST(ParserHardening, VerilogEmptyInputIsACleanError) {
  EXPECT_THROW((void)parse_verilog(""), VerilogParseError);
  EXPECT_THROW((void)parse_verilog("  \r\n\t\n"), VerilogParseError);
  EXPECT_THROW((void)parse_verilog("// nothing here\n/* still nothing */\n"),
               VerilogParseError);
  EXPECT_THROW((void)parse_verilog(std::string(kBom)), VerilogParseError);
}

}  // namespace
}  // namespace spsta::netlist
