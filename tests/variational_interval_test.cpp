// Tests for interval/affine arithmetic and interval STA bounds.

#include "variational/interval.hpp"

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"
#include "stats/rng.hpp"

namespace spsta::variational {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Interval, BasicOps) {
  const Interval a{1.0, 3.0};
  const Interval b{-1.0, 2.0};
  EXPECT_EQ(a + b, (Interval{0.0, 5.0}));
  EXPECT_EQ(interval_max(a, b), (Interval{1.0, 3.0}));
  EXPECT_EQ(interval_min(a, b), (Interval{-1.0, 2.0}));
  EXPECT_DOUBLE_EQ(a.width(), 2.0);
  EXPECT_DOUBLE_EQ(a.mid(), 2.0);
  EXPECT_TRUE(a.contains(2.5));
  EXPECT_FALSE(a.contains(3.5));
}

TEST(Affine, SharedSymbolsCancel) {
  // x - x = 0 in affine arithmetic (plain intervals would give [-2w, 2w]).
  const AffineForm x(1.0, {{0, 0.5}});
  const AffineForm neg(-1.0, {{0, -0.5}});
  const AffineForm sum = x + neg;
  EXPECT_DOUBLE_EQ(sum.center(), 0.0);
  EXPECT_DOUBLE_EQ(sum.radius(), 0.0);
}

TEST(Affine, IndependentSymbolsAccumulate) {
  const AffineForm a(0.0, {{0, 1.0}});
  const AffineForm b(0.0, {{1, 2.0}});
  const AffineForm s = a + b;
  EXPECT_DOUBLE_EQ(s.radius(), 3.0);
  EXPECT_EQ(s.to_interval(), (Interval{-3.0, 3.0}));
}

TEST(IntervalSta, ChainAccumulatesBounds) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.1);
  const auto arrival = interval_sta(n, d, {0.0, 0.0}, 3.0);
  EXPECT_NEAR(arrival[prev].lo, 3.0 * (1.0 - 0.3), 1e-12);
  EXPECT_NEAR(arrival[prev].hi, 3.0 * (1.0 + 0.3), 1e-12);
}

TEST(IntervalSta, BoundsContainMonteCarloArrivals) {
  // Property: interval STA with wide-enough k-sigma must bound (almost)
  // every simulated arrival on every net.
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  // Sources arrive within +-5 sigma of N(0,1) virtually always.
  const auto bounds = interval_sta(n, d, {-5.0, 5.0}, 5.0);

  netlist::SourceStats sc = netlist::scenario_I();
  mc::MonteCarloConfig cfg;
  cfg.runs = 2000;
  cfg.seed = 55;
  const auto mcr = mc::run_monte_carlo(n, d, std::vector{sc}, cfg);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    const auto& est = mcr.node[id];
    if (est.rise_time.count() > 10) {
      EXPECT_GE(est.rise_time.mean(), bounds[id].lo - 1e-9) << n.node(id).name;
      EXPECT_LE(est.rise_time.mean() + 3.0 * est.rise_time.stddev(),
                bounds[id].hi + 1e-9)
          << n.node(id).name;
    }
  }
}

TEST(IntervalSta, MinMaxCornerSemantics) {
  // Two paths of different structural length: the bound spans from the
  // short path's earliest to the long path's latest.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId s1 = n.add_gate(GateType::Buf, "s1", {a});
  const NodeId l1 = n.add_gate(GateType::Buf, "l1", {a});
  const NodeId l2 = n.add_gate(GateType::Buf, "l2", {l1});
  const NodeId y = n.add_gate(GateType::And, "y", {s1, l2});
  n.mark_output(y);
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const auto bounds = interval_sta(n, d, {0.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(bounds[y].lo, 2.0);  // via the short path
  EXPECT_DOUBLE_EQ(bounds[y].hi, 3.0);  // via the long path
}

}  // namespace
}  // namespace spsta::variational
