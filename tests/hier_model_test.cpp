// Tests for the hierarchical timing subsystem (src/hier/): block model
// extraction, the model cache and compiled-block library, and the
// composed-vs-flat accuracy contract declared in block_model.hpp —
// signal probabilities and moment-engine moments compose exactly (within
// kProbEps / kMomentRelEps), numeric-engine compositions Gaussianize each
// boundary within kNumericAbsEps.

#include "hier/hier_analyzer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/spsta.hpp"
#include "hier/block_cache.hpp"
#include "hier/block_model.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/generator.hpp"
#include "netlist/hier_bench_io.hpp"

namespace spsta::hier {
namespace {

using netlist::HierDesign;
using netlist::Netlist;
using netlist::NodeId;
using netlist::parse_hier_bench;

/// A 3-instance chain of a reconvergent cell — small enough for quick flat
/// reference runs, deep enough that boundary errors would compound.
constexpr const char* kChain = R"(
BLOCK(cell)
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
n1 = NAND(a, b)
n2 = OR(n1, b)
y = NOT(n1)
z = AND(n2, n1)
END
INPUT(x0)
INPUT(x1)
INPUT(x2)
OUTPUT(u2.y)
OUTPUT(u2.z)
u0 = INSTANCE(cell, x0, x1)
u1 = INSTANCE(cell, x2, u0.y)
u2 = INSTANCE(cell, u0.z, u1.y)
)";

/// Flat-reference moment result plus the name mapping for a hier design.
core::SpstaResult flat_moment_reference(const HierDesign& design, Netlist& flat_out) {
  flat_out = design.flatten();
  const netlist::DelayModel delays = netlist::DelayModel::unit(flat_out);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  return core::run_spsta_moment(flat_out, delays, sc);
}

/// The flat node behind hier signal "<inst>.<port>" ("<inst>/<port>").
NodeId flat_node_of(const Netlist& flat, std::string signal) {
  signal[signal.find('.')] = '/';
  return flat.find(signal);
}

TEST(HierModel, MomentCompositionMatchesFlatWithinContract) {
  HierDesign design = parse_hier_bench(kChain);
  Netlist flat;
  const core::SpstaResult ref = flat_moment_reference(design, flat);

  HierAnalyzer analyzer(std::move(design));
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const HierReport report = analyzer.run(request);

  ASSERT_EQ(report.outputs.size(), 2u);
  for (const std::size_t sig : report.outputs) {
    const NodeId id = flat_node_of(flat, report.signal_names.at(sig));
    ASSERT_NE(id, netlist::kInvalidNode) << report.signal_names.at(sig);
    const core::NodeTop& want = ref.node.at(id);
    const PortTop& got = report.signals.at(sig);
    EXPECT_NEAR(got.probs.p0, want.probs.p0, kProbEps);
    EXPECT_NEAR(got.probs.p1, want.probs.p1, kProbEps);
    EXPECT_NEAR(got.probs.pr, want.probs.pr, kProbEps);
    EXPECT_NEAR(got.probs.pf, want.probs.pf, kProbEps);
    EXPECT_NEAR(got.rise.mass, want.rise.mass, kProbEps);
    EXPECT_NEAR(got.fall.mass, want.fall.mass, kProbEps);
    const auto rel_close = [](double a, double b) {
      return std::abs(a - b) <= kMomentRelEps * std::max({std::abs(a), std::abs(b), 1.0});
    };
    EXPECT_TRUE(rel_close(got.rise.arrival.mean, want.rise.arrival.mean))
        << got.rise.arrival.mean << " vs " << want.rise.arrival.mean;
    EXPECT_TRUE(rel_close(got.rise.arrival.stddev(), want.rise.arrival.stddev()));
    EXPECT_TRUE(rel_close(got.fall.arrival.mean, want.fall.arrival.mean));
    EXPECT_TRUE(rel_close(got.fall.arrival.stddev(), want.fall.arrival.stddev()));
  }
}

TEST(HierModel, NumericCompositionWithinDeclaredAbsoluteBound) {
  HierDesign design = parse_hier_bench(kChain);
  const Netlist flat = design.flatten();
  const netlist::DelayModel delays = netlist::DelayModel::unit(flat);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const core::SpstaNumericResult ref = core::run_spsta_numeric(flat, delays, sc);

  HierAnalyzer analyzer(std::move(design));
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaNumeric;
  const HierReport report = analyzer.run(request);

  for (const std::size_t sig : report.outputs) {
    const NodeId id = flat_node_of(flat, report.signal_names.at(sig));
    ASSERT_NE(id, netlist::kInvalidNode);
    const core::NodeTopDensity& want = ref.node.at(id);
    const PortTop& got = report.signals.at(sig);
    // Probabilities stay exact even on the numeric path.
    EXPECT_NEAR(got.probs.p1, want.probs.p1, kProbEps);
    EXPECT_NEAR(got.rise.mass, want.rise.mass(), 1e-9);
    if (want.rise.mass() > 1e-9) {
      EXPECT_NEAR(got.rise.arrival.mean, want.rise.mean(), kNumericAbsEps);
      EXPECT_NEAR(got.rise.arrival.stddev(), want.rise.stddev(), kNumericAbsEps);
    }
    if (want.fall.mass() > 1e-9) {
      EXPECT_NEAR(got.fall.arrival.mean, want.fall.mean(), kNumericAbsEps);
      EXPECT_NEAR(got.fall.arrival.stddev(), want.fall.stddev(), kNumericAbsEps);
    }
  }
}

TEST(HierModel, SecondRunServedEntirelyFromTheModelCache) {
  HierDesign design = parse_hier_bench(kChain);
  HierAnalyzer analyzer(std::move(design));
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const HierReport cold = analyzer.run(request);
  EXPECT_GT(cold.models_extracted, 0u);
  const HierReport warm = analyzer.run(request);
  EXPECT_EQ(warm.models_extracted, 0u);
  EXPECT_EQ(warm.model_cache_hits, 3u);  // one per instance
  // Bit-identical replay: cached models ARE the extraction results.
  for (std::size_t i = 0; i < cold.signals.size(); ++i) {
    EXPECT_EQ(warm.signals[i].rise.arrival.mean, cold.signals[i].rise.arrival.mean);
    EXPECT_EQ(warm.signals[i].fall.arrival.var, cold.signals[i].fall.arrival.var);
  }
}

TEST(HierModel, MeanShiftNormalizationReusesModelsAcrossLevels) {
  // Uniform wiring: every instance of a level sees the same (shifted)
  // boundary pattern, so the whole grid needs one extraction per level.
  netlist::HierGeneratorSpec spec;
  spec.total_gates = 1600;
  spec.block_gates = 100;
  spec.unique_blocks = 2;
  spec.block_inputs = 4;
  spec.block_outputs = 4;
  spec.width = 4;  // 16 instances in 4 levels
  HierDesign design = netlist::generate_hier_circuit(spec);
  const std::size_t instances = design.instances().size();
  ASSERT_EQ(instances, 16u);

  HierAnalyzer analyzer(std::move(design));
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const HierReport cold = analyzer.run(request);
  EXPECT_EQ(cold.models_extracted + cold.model_cache_hits, instances);
  // At most one extraction per level (4 levels); the rest are shift hits.
  EXPECT_LE(cold.models_extracted, 4u);
  EXPECT_GE(cold.model_cache_hits, instances - 4u);
}

TEST(HierModel, ShiftedCompositionStaysExact) {
  // Explicit top-input arrivals at a late absolute time: the normalized
  // model is reused shifted, and the composed means shift with the inputs.
  HierDesign design = parse_hier_bench(kChain);
  Netlist flat = design.flatten();
  netlist::SourceStats late = netlist::scenario_I();
  late.rise_arrival.mean += 100.0;
  late.fall_arrival.mean += 100.0;
  const std::vector<netlist::SourceStats> sc{late};
  const core::SpstaResult ref =
      core::run_spsta_moment(flat, netlist::DelayModel::unit(flat), sc);

  HierAnalyzer analyzer(std::move(design));
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const HierReport report = analyzer.run(request, sc);
  for (const std::size_t sig : report.outputs) {
    const NodeId id = flat_node_of(flat, report.signal_names.at(sig));
    const core::NodeTop& want = ref.node.at(id);
    const PortTop& got = report.signals.at(sig);
    EXPECT_NEAR(got.rise.arrival.mean, want.rise.arrival.mean,
                kMomentRelEps * std::max(1.0, std::abs(want.rise.arrival.mean)));
    EXPECT_NEAR(got.fall.arrival.mean, want.fall.arrival.mean,
                kMomentRelEps * std::max(1.0, std::abs(want.fall.arrival.mean)));
  }
}

TEST(HierModel, ThreadCountDoesNotChangeComposedBits) {
  netlist::HierGeneratorSpec spec;
  spec.total_gates = 1200;
  spec.block_gates = 150;
  HierDesign d1 = netlist::generate_hier_circuit(spec);
  HierDesign d2 = netlist::generate_hier_circuit(spec);

  HierAnalyzer a1(std::move(d1));
  HierAnalyzer a4(std::move(d2));
  spsta::AnalysisRequest r1, r4;
  r1.engine = r4.engine = Engine::SpstaMoment;
  r1.threads = 1;
  r4.threads = 4;
  const HierReport one = a1.run(r1);
  const HierReport four = a4.run(r4);
  ASSERT_EQ(one.signals.size(), four.signals.size());
  for (std::size_t i = 0; i < one.signals.size(); ++i) {
    EXPECT_EQ(one.signals[i].rise.arrival.mean, four.signals[i].rise.arrival.mean);
    EXPECT_EQ(one.signals[i].rise.arrival.var, four.signals[i].rise.arrival.var);
    EXPECT_EQ(one.signals[i].probs.p1, four.signals[i].probs.p1);
  }
}

TEST(HierModel, ValidateRejectsEnginesWithoutBlockModels) {
  spsta::AnalysisRequest request;
  request.engine = Engine::Mc;
  EXPECT_THROW(HierAnalyzer::validate(request), std::invalid_argument);
  request.engine = Engine::Ssta;
  EXPECT_THROW(HierAnalyzer::validate(request), std::invalid_argument);
  request.engine = Engine::SpstaMoment;
  EXPECT_NO_THROW(HierAnalyzer::validate(request));
}

TEST(BlockModelCache, LruEvictsAgainstEntryBudgetButNeverTheLastEntry) {
  BlockModelCache cache;
  cache.set_budget({2, 0});
  for (std::uint64_t sig = 1; sig <= 3; ++sig) {
    auto model = std::make_shared<BlockTimingModel>();
    model->signature = sig;
    cache.insert(std::move(model));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(1), nullptr);  // oldest evicted
  EXPECT_NE(cache.find(3), nullptr);
  cache.set_budget({1, 0});
  EXPECT_EQ(cache.size(), 1u);
  // The byte budget can force size 1, but never zero.
  cache.set_budget({0, 1});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockLibrary, InternsIdenticalBlocksAcrossAnalyzers) {
  BlockLibrary library;
  BlockModelCache models;
  HierAnalyzerOptions options;
  options.shared_blocks = &library;
  options.shared_models = &models;

  HierDesign d1 = parse_hier_bench(kChain);
  HierDesign d2 = parse_hier_bench(kChain);
  HierAnalyzer a1(std::move(d1), options);
  EXPECT_EQ(library.misses(), 1u);  // one unique block, compiled once
  HierAnalyzer a2(std::move(d2), options);
  EXPECT_EQ(library.misses(), 1u);
  EXPECT_GE(library.hits(), 1u);

  // The shared model cache also carries extractions across analyzers.
  spsta::AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const HierReport first = a1.run(request);
  const HierReport second = a2.run(request);
  EXPECT_GT(first.models_extracted, 0u);
  EXPECT_EQ(second.models_extracted, 0u);
  EXPECT_EQ(second.model_cache_hits, 3u);
}

TEST(BlockModel, SignatureSeparatesEnginesOptionsAndSources) {
  const std::vector<netlist::SourceStats> a{netlist::scenario_I()};
  std::vector<netlist::SourceStats> b = a;
  b[0].rise_arrival.mean += 0.5;
  const core::SpstaOptions opts;
  const std::uint64_t base = model_signature(7, Engine::SpstaMoment, opts, a);
  EXPECT_EQ(model_signature(7, Engine::SpstaMoment, opts, a), base);
  EXPECT_NE(model_signature(8, Engine::SpstaMoment, opts, a), base);
  EXPECT_NE(model_signature(7, Engine::SpstaNumeric, opts, a), base);
  EXPECT_NE(model_signature(7, Engine::SpstaMoment, opts, b), base);
  core::SpstaOptions fine = opts;
  fine.grid_dt = 0.01;
  // Grid options only key numeric models.
  EXPECT_EQ(model_signature(7, Engine::SpstaMoment, fine, a), base);
  EXPECT_NE(model_signature(7, Engine::SpstaNumeric, fine, a),
            model_signature(7, Engine::SpstaNumeric, opts, a));
}

}  // namespace
}  // namespace spsta::hier
