// Tests for parameterized canonical SSTA with die-to-die / per-type /
// residual variance decomposition.

#include "ssta/canonical_ssta.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"
#include "ssta/ssta.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::ssta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist buffer_chain(int length) {
  Netlist n("chain");
  NodeId prev = n.add_input("a");
  for (int i = 0; i < length; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  n.mark_output(prev);
  return n;
}

TEST(CanonicalSsta, FullyGlobalVariationAddsLinearly) {
  // With 100% die-to-die variance, delays are perfectly correlated:
  // sigma of an L-stage chain is L*sigma_gate, not sqrt(L)*sigma_gate.
  const int kLength = 9;
  const Netlist n = buffer_chain(kLength);
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.1);
  netlist::SourceStats sc;
  sc.rise_arrival = {0.0, 0.0};
  sc.fall_arrival = {0.0, 0.0};

  VariationModel fully_global;
  fully_global.global_fraction = 1.0;
  const CanonicalSstaResult global =
      run_canonical_ssta(n, d, std::vector{sc}, fully_global);

  VariationModel fully_random;
  fully_random.global_fraction = 0.0;
  const CanonicalSstaResult random =
      run_canonical_ssta(n, d, std::vector{sc}, fully_random);

  const NodeId ep = n.timing_endpoints().front();
  EXPECT_NEAR(std::sqrt(global.arrival[ep].rise.variance()), kLength * 0.1, 1e-9);
  EXPECT_NEAR(std::sqrt(random.arrival[ep].rise.variance()),
              std::sqrt(double(kLength)) * 0.1, 1e-9);
  EXPECT_NEAR(global.arrival[ep].rise.mean(), double(kLength), 1e-9);
}

TEST(CanonicalSsta, MatchesPlainSstaMomentsOnTreeCircuits) {
  // On a tree (no reconvergence, distinct sources per cone) with purely
  // random delay variance, nothing is shared, so the canonical engine's
  // moments equal plain SSTA's exactly. (On reconvergent circuits they
  // differ *by design*: the canonical engine keeps the source-arrival
  // correlation plain SSTA's cov=0 Clark discards.)
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId d1 = n.add_input("d");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Nor, "g2", {c, d1});
  const NodeId g3 = n.add_gate(GateType::And, "g3", {g1, g2});
  n.mark_output(g3);

  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  VariationModel fully_random;
  fully_random.global_fraction = 0.0;
  const CanonicalSstaResult canon = run_canonical_ssta(n, d, sc, fully_random);
  const SstaResult plain = run_ssta(n, d, sc);

  for (NodeId id : {g1, g2, g3}) {
    EXPECT_NEAR(canon.arrival[id].rise.mean(), plain.arrival[id].rise.mean, 1e-9);
    EXPECT_NEAR(canon.arrival[id].rise.variance(), plain.arrival[id].rise.var, 1e-9);
    EXPECT_NEAR(canon.arrival[id].fall.mean(), plain.arrival[id].fall.mean, 1e-9);
  }
}

TEST(CanonicalSsta, ReconvergenceBeatsPlainSstaAgainstMc) {
  // Shared source, always-rising inputs: true arrival at y is a+2 exactly.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Buf, "b2", {a});
  const NodeId y = n.add_gate(GateType::And, "y", {b1, b2});
  n.mark_output(y);

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const CanonicalSstaResult canon = run_canonical_ssta(n, d, std::vector{sc});
  const SstaResult plain = run_ssta(n, d, std::vector{sc});

  EXPECT_NEAR(canon.arrival[y].rise.mean(), 2.0, 1e-9);
  EXPECT_NEAR(canon.arrival[y].rise.variance(), 1.0, 1e-9);
  EXPECT_GT(plain.arrival[y].rise.mean, 2.3);  // Clark-on-iid artifact
}

TEST(CanonicalSsta, GlobalVariationRaisesEndpointCorrelation) {
  const Netlist n = netlist::make_paper_circuit("s344");
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.1);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  VariationModel none;
  none.global_fraction = 0.0;
  VariationModel heavy;
  heavy.global_fraction = 0.9;
  const CanonicalSstaResult uncorr = run_canonical_ssta(n, d, sc, none);
  const CanonicalSstaResult corr = run_canonical_ssta(n, d, sc, heavy);

  const auto eps = n.timing_endpoints();
  ASSERT_GE(eps.size(), 2u);
  EXPECT_GT(corr.rise_correlation(eps[0], eps[1]),
            uncorr.rise_correlation(eps[0], eps[1]) + 0.1);
}

TEST(CanonicalSsta, TracksMonteCarloUnderGlobalVariation) {
  // MC with a genuinely shared delay scale: sample one global factor per
  // run, shift all delays, simulate. The canonical engine should predict
  // the endpoint sigma far better than plain SSTA (which has no notion of
  // shared variation and treats delay sigma as independent per gate).
  const Netlist n = buffer_chain(6);
  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};
  sc.rise_arrival = {0.0, 0.0};

  const double sigma = 0.12;
  VariationModel fully_global;
  fully_global.global_fraction = 1.0;
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, sigma);
  const CanonicalSstaResult canon =
      run_canonical_ssta(n, d, std::vector{sc}, fully_global);

  // Hand-rolled MC with a shared delay delta.
  stats::Xoshiro256 rng(2);
  stats::RunningMoments mom;
  for (int run = 0; run < 100000; ++run) {
    const double delta = rng.normal(0.0, sigma);
    mom.add(6.0 * (1.0 + delta));
  }
  const NodeId ep = n.timing_endpoints().front();
  EXPECT_NEAR(canon.arrival[ep].rise.mean(), mom.mean(), 0.01);
  EXPECT_NEAR(std::sqrt(canon.arrival[ep].rise.variance()), mom.stddev(), 0.01);
}

TEST(CanonicalSsta, PerTypeParametersCorrelateSameTypeGates) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Nand, "g2", {a, b});
  const NodeId g3 = n.add_gate(GateType::Nor, "g3", {a, b});
  n.mark_output(g1);
  n.mark_output(g2);
  n.mark_output(g3);

  netlist::SourceStats sc;
  sc.rise_arrival = {0.0, 0.0};
  sc.fall_arrival = {0.0, 0.0};
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.1);
  VariationModel vm;
  vm.global_fraction = 0.0;
  vm.per_type_fraction = 1.0;
  const CanonicalSstaResult r = run_canonical_ssta(n, d, std::vector{sc}, vm);
  EXPECT_NEAR(r.rise_correlation(g1, g2), 1.0, 1e-9);   // same type
  EXPECT_NEAR(r.rise_correlation(g1, g3), 0.0, 1e-9);   // different type
}

TEST(CanonicalSsta, Validation) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  VariationModel bad;
  bad.global_fraction = 0.8;
  bad.per_type_fraction = 0.5;
  EXPECT_THROW(
      (void)run_canonical_ssta(n, d, std::vector{netlist::scenario_I()}, bad),
      std::invalid_argument);
  EXPECT_THROW((void)run_canonical_ssta(n, d, std::vector<netlist::SourceStats>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::ssta
