// Protocol-layer tests for the analysis service: structured errors for
// every malformed input (the daemon must survive anything), request
// envelope validation, and the acceptance round-trip — a scripted
// load → analyze → ECO → re-query session whose incremental answer is
// bit-identical to a fresh full analysis of the edited design.

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"

namespace spsta::service {
namespace {

/// Executes one line, asserting it fails with \p code.
void expect_error(AnalysisService& service, const std::string& line,
                  std::string_view code) {
  const Response r = service.execute_line(line);
  EXPECT_FALSE(r.ok) << line;
  EXPECT_EQ(r.error_code(), code) << line << " -> " << r.to_line();
}

/// Executes one line, asserting success, and returns the result object.
Json expect_ok(AnalysisService& service, const std::string& line) {
  const Response r = service.execute_line(line);
  EXPECT_TRUE(r.ok) << line << " -> " << r.to_line();
  return r.body;
}

std::string load_line(const std::string& circuit) {
  return R"({"id":1,"cmd":"load","circuit":")" + circuit + R"("})";
}

TEST(ServiceProtocol, RequestEnvelopeValidation) {
  // Valid request parses into a Request.
  auto ok = parse_request(R"({"id":3,"cmd":"ping"})");
  ASSERT_TRUE(std::holds_alternative<Request>(ok));
  EXPECT_EQ(std::get<Request>(ok).cmd, "ping");
  EXPECT_EQ(std::get<Request>(ok).id.as_number(), 3.0);

  // Envelope failures parse into ready error responses.
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",                             // not an object
      R"({"id":1})",                         // missing cmd
      R"({"id":1,"cmd":42})",                // cmd not a string
      R"({"id":1,"cmd":""})",                // empty cmd
      R"({"id":[1],"cmd":"ping"})",          // id must be number/string/null
      R"({"id":1,"cmd":"ping","deadline_ms":"soon"})",
      R"({"id":1,"cmd":"ping","deadline_ms":-5})",
  };
  for (const char* line : bad) {
    auto parsed = parse_request(line);
    ASSERT_TRUE(std::holds_alternative<Response>(parsed)) << line;
    EXPECT_FALSE(std::get<Response>(parsed).ok) << line;
  }
}

TEST(ServiceProtocol, MutatingCommandTable) {
  for (const char* cmd : {"load", "set_delay", "set_source", "unload", "shutdown"}) {
    EXPECT_TRUE(is_mutating_command(cmd)) << cmd;
  }
  for (const char* cmd : {"ping", "analyze", "query", "stats", "nonsense"}) {
    EXPECT_FALSE(is_mutating_command(cmd)) << cmd;
  }
}

TEST(ServiceProtocol, MalformedRequestsYieldStructuredErrorsAndServiceSurvives) {
  AnalysisService service;
  expect_error(service, "{definitely not json", "parse_error");
  expect_error(service, R"({"id":1,"cmd":"frobnicate"})", "unknown_command");
  expect_error(service, R"({"id":2,"cmd":"analyze","session":"feedfeedfeedfeed"})",
               "unknown_session");
  expect_error(service, R"({"id":3,"cmd":"load"})", "bad_request");
  expect_error(service, R"({"id":4,"cmd":"load","circuit":"s9999"})", "bad_params");
  expect_error(service, R"({"id":5,"cmd":"load","path":"/no/such/file.bench"})",
               "io_error");

  // After every one of those, the service still serves real work.
  const Json loaded = expect_ok(service, load_line("s27"));
  const std::string session = loaded.find("session")->as_string();

  expect_error(service,
               R"({"id":6,"cmd":"analyze","session":")" + session +
                   R"(","engine":"quantum"})",
               "unknown_engine");
  expect_error(service,
               R"({"id":7,"cmd":"query","session":")" + session +
                   R"(","node":99999})",
               "unknown_node");
  expect_error(service,
               R"({"id":8,"cmd":"query","session":")" + session +
                   R"(","node":"NO_SUCH_NET"})",
               "unknown_node");
  expect_error(service,
               R"({"id":9,"cmd":"set_delay","session":")" + session +
                   R"(","node":"G11"})",
               "bad_request");  // missing mean
  expect_error(service,
               R"({"id":10,"cmd":"analyze","session":")" + session +
                   R"(","params":{"runs":0}})",
               "bad_params");
  expect_error(service,
               R"({"id":11,"cmd":"analyze","session":")" + session +
                   R"(","params":{"bogus_knob":1}})",
               "bad_params");

  // And still answers correctly afterwards.
  const Json analyzed = expect_ok(
      service, R"({"cmd":"analyze","session":")" + session + R"("})");
  EXPECT_FALSE(analyzed.find("cached")->as_bool());
  EXPECT_GT(analyzed.find("endpoints")->as_array().size(), 0u);
}

TEST(ServiceProtocol, RepeatedAnalyzeIsServedFromCache) {
  AnalysisService service;
  const std::string session =
      expect_ok(service, load_line("s27")).find("session")->as_string();
  const std::string analyze =
      R"({"cmd":"analyze","session":")" + session + R"(","engine":"ssta"})";

  const Json first = expect_ok(service, analyze);
  const Json second = expect_ok(service, analyze);
  EXPECT_FALSE(first.find("cached")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());

  // The cached reply carries the identical payload.
  EXPECT_EQ(first.find("endpoints")->dump(), second.find("endpoints")->dump());

  // Different params → different cache entry (mc keyed on runs/seed).
  const std::string mc = R"({"cmd":"analyze","session":")" + session +
                         R"(","engine":"mc","params":{"runs":200,"seed":9}})";
  EXPECT_FALSE(expect_ok(service, mc).find("cached")->as_bool());
  EXPECT_TRUE(expect_ok(service, mc).find("cached")->as_bool());
  const std::string mc2 = R"({"cmd":"analyze","session":")" + session +
                          R"(","engine":"mc","params":{"runs":200,"seed":10}})";
  EXPECT_FALSE(expect_ok(service, mc2).find("cached")->as_bool());

  // `threads` is NOT part of the cache key: determinism contract makes
  // thread count irrelevant to the result.
  const std::string threaded = R"({"cmd":"analyze","session":")" + session +
                               R"(","engine":"ssta","params":{"threads":4}})";
  EXPECT_TRUE(expect_ok(service, threaded).find("cached")->as_bool());
}

TEST(ServiceProtocol, LoadingIdenticalContentReusesTheSession) {
  AnalysisService service;
  const Json first = expect_ok(service, load_line("s27"));
  const Json again = expect_ok(service, load_line("s27"));
  EXPECT_EQ(first.find("session")->as_string(), again.find("session")->as_string());
  EXPECT_FALSE(first.find("reloaded")->as_bool());
  EXPECT_TRUE(again.find("reloaded")->as_bool());
  EXPECT_EQ(service.store().size(), 1u);

  // Same netlist text via the inline-text route hits the bench-format hash.
  const std::string text{netlist::s27_bench_text()};
  Json req = Json::object();
  req.set("cmd", Json("load"));
  req.set("format", Json("bench"));
  req.set("text", Json(text));
  const Json inline_load = expect_ok(service, req.dump());
  EXPECT_EQ(inline_load.find("nodes")->as_number(),
            first.find("nodes")->as_number());

  // Unload removes it; the key is then unknown.
  const std::string session = first.find("session")->as_string();
  (void)expect_ok(service, R"({"cmd":"unload","session":")" + session + R"("})");
  expect_error(service, R"({"cmd":"analyze","session":")" + session + R"("})",
               "unknown_session");
}

// The acceptance criterion: a scripted session (load, analyze with two
// engines, set_delay ECO, re-query) where the post-ECO incremental answer
// is bit-identical — EXPECT_EQ on doubles, no tolerance — to a fresh full
// analysis of the edited design.
TEST(ServiceProtocol, EcoRequeryIsBitIdenticalToFreshFullAnalysis) {
  AnalysisService service;
  const std::string session =
      expect_ok(service, load_line("s27")).find("session")->as_string();

  // Analyze with two engines (warms the session; spsta_moment first so the
  // ECO path has a settled incremental engine to update).
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session +
                               R"(","engine":"spsta_moment"})");
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session +
                               R"(","engine":"ssta"})");

  // ECO: retime gate G11 (mean 2.5, sigma 0.1).
  const Json eco = expect_ok(
      service, R"({"cmd":"set_delay","session":")" + session +
                   R"(","node":"G11","mean":2.5,"std":0.1})");
  EXPECT_EQ(eco.find("eco_version")->as_number(), 1.0);

  // The ECO invalidated the pre-edit cache: the next analyze recomputes
  // (via the warm incremental engine, not from cache).
  const Json post = expect_ok(service, R"({"cmd":"analyze","session":")" + session +
                                           R"(","engine":"spsta_moment"})");
  EXPECT_FALSE(post.find("cached")->as_bool());
  EXPECT_EQ(post.find("eco_version")->as_number(), 1.0);

  // Reference: a fresh full moment analysis of the edited design, built
  // independently of the service.
  netlist::Netlist design = netlist::make_paper_circuit("s27");
  netlist::DelayModel delays = netlist::DelayModel::unit(design);
  const std::vector<netlist::SourceStats> sources(design.timing_sources().size(),
                                                  netlist::scenario_I());
  delays.set_delay(design.find("G11"), stats::Gaussian{2.5, 0.1 * 0.1});
  const core::SpstaResult fresh = core::run_spsta_moment(design, delays, sources);

  // Re-query every node through the protocol; the incremental answer must
  // match the fresh run bit for bit.
  for (netlist::NodeId id = 0; id < design.node_count(); ++id) {
    const Json q = expect_ok(service,
                             R"({"cmd":"query","session":")" + session +
                                 R"(","node":)" + std::to_string(id) + "}");
    EXPECT_EQ(q.find("eco_version")->as_number(), 1.0);
    const Json* s = q.find("stats");
    ASSERT_NE(s, nullptr);
    const core::NodeTop& ref = fresh.node.at(id);
    EXPECT_EQ(s->find("probs")->find("p0")->as_number(), ref.probs.p0) << id;
    EXPECT_EQ(s->find("probs")->find("p1")->as_number(), ref.probs.p1) << id;
    EXPECT_EQ(s->find("probs")->find("pr")->as_number(), ref.probs.pr) << id;
    EXPECT_EQ(s->find("probs")->find("pf")->as_number(), ref.probs.pf) << id;
    EXPECT_EQ(s->find("rise")->find("p")->as_number(), ref.rise.mass) << id;
    EXPECT_EQ(s->find("rise")->find("mean")->as_number(), ref.rise.arrival.mean) << id;
    EXPECT_EQ(s->find("rise")->find("std")->as_number(), ref.rise.arrival.stddev())
        << id;
    EXPECT_EQ(s->find("fall")->find("p")->as_number(), ref.fall.mass) << id;
    EXPECT_EQ(s->find("fall")->find("mean")->as_number(), ref.fall.arrival.mean) << id;
    EXPECT_EQ(s->find("fall")->find("std")->as_number(), ref.fall.arrival.stddev())
        << id;
  }
}

// Batched ECO transactions and what-if probes over the protocol: the
// `edits` array commits as ONE transaction (one eco_version bump, true
// per-request work counters), and `"probe":true` answers without
// committing anything.
TEST(ServiceProtocol, BatchedEditsCommitAsOneTransactionAndProbesCommitNothing) {
  AnalysisService service;
  const std::string session =
      expect_ok(service, load_line("s1238")).find("session")->as_string();
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session +
                               R"(","engine":"spsta_moment"})");

  // Pick real gate names from the same (deterministically generated)
  // circuit. The deepest endpoint gate makes a good probe target.
  const netlist::Netlist ref = netlist::make_paper_circuit("s1238");
  std::vector<std::string> gname;
  for (netlist::NodeId id = 0; id < ref.node_count() && gname.size() < 3; ++id) {
    if (netlist::is_combinational(ref.node(id).type)) gname.push_back(ref.node(id).name);
  }
  ASSERT_EQ(gname.size(), 3u);
  const std::string target = ref.node(ref.timing_endpoints().front()).name;

  // Exactly one of 'node' and 'edits' must be present, and edits non-empty.
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session + R"(","node":")" +
                   gname[0] + R"(","mean":2.0,"edits":[{"node":")" + gname[1] +
                   R"(","mean":2.0}]})",
               "bad_request");
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session + R"("})",
               "bad_request");
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session + R"(","edits":[]})",
               "bad_params");
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session +
                   R"(","edits":[{"node":")" + gname[0] + R"("}]})",
               "bad_request");  // edit missing mean
  // All-or-nothing: one bad node in the batch commits none of it.
  expect_error(service,
               R"({"cmd":"set_delay","session":")" + session +
                   R"(","edits":[{"node":")" + gname[0] +
                   R"(","mean":2.0},{"node":"NO_SUCH","mean":2.0}]})",
               "unknown_node");
  const Json unchanged = expect_ok(
      service, R"({"cmd":"stats","session":")" + session + R"("})");
  EXPECT_EQ(unchanged.find("session")->find("eco_version")->as_number(), 0.0);

  // A three-edit batch: one eco_version bump, per-request work counters.
  const Json batched = expect_ok(
      service, R"({"cmd":"set_delay","session":")" + session +
                   R"(","edits":[{"node":")" + gname[0] +
                   R"(","mean":2.0},{"node":")" + gname[1] +
                   R"(","mean":1.5,"std":0.1},{"node":")" + gname[2] +
                   R"(","mean":0.5}]})");
  EXPECT_EQ(batched.find("eco_version")->as_number(), 1.0);
  EXPECT_EQ(batched.find("edits")->as_number(), 3.0);
  ASSERT_NE(batched.find("nodes_reevaluated"), nullptr);
  ASSERT_NE(batched.find("settled_early"), nullptr);
  EXPECT_GT(batched.find("nodes_reevaluated")->as_number(), 0.0);

  // Single-edit form still works and reports the same counters.
  const Json single = expect_ok(
      service, R"({"cmd":"set_delay","session":")" + session + R"(","node":")" +
                   gname[0] + R"(","mean":2.25})");
  EXPECT_EQ(single.find("eco_version")->as_number(), 2.0);
  EXPECT_EQ(single.find("edits")->as_number(), 1.0);
  EXPECT_GT(single.find("nodes_reevaluated")->as_number(), 0.0);

  // set_source carries the counters too.
  const Json src = expect_ok(
      service, R"({"cmd":"set_source","session":")" + session +
                   R"(","source":0,"rise":[0.5,0.2]})");
  ASSERT_NE(src.find("nodes_reevaluated"), nullptr);
  ASSERT_NE(src.find("settled_early"), nullptr);

  // Probe: what-if arrivals at explicit targets, nothing committed. The
  // edit retimes the target endpoint gate itself, so its what-if arrival
  // must differ from the committed state's.
  const Json probed = expect_ok(
      service, R"({"cmd":"set_delay","session":")" + session +
                   R"(","probe":true,"edits":[{"node":")" + target +
                   R"(","mean":9.0}],"nodes":[")" + target + R"("]})");
  EXPECT_TRUE(probed.find("probe")->as_bool());
  EXPECT_EQ(probed.find("eco_version")->as_number(), 3.0);  // unchanged
  const Json* results = probed.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->as_array().size(), 1u);
  const Json& r0 = results->as_array().front();
  EXPECT_EQ(r0.find("name")->as_string(), target);
  ASSERT_NE(r0.find("rise"), nullptr);
  ASSERT_NE(r0.find("fall"), nullptr);
  ASSERT_NE(r0.find("probs"), nullptr);
  const Json committed_now = expect_ok(
      service, R"({"cmd":"query","session":")" + session + R"(","node":")" +
                   target + R"("})");
  EXPECT_NE(r0.find("rise")->find("mean")->as_number(),
            committed_now.find("stats")->find("rise")->find("mean")->as_number());

  // Probe with no explicit targets answers at every timing endpoint, and
  // still does not advance the ECO version.
  const Json all_eps = expect_ok(
      service, R"({"cmd":"set_delay","session":")" + session +
                   R"(","probe":true,"edits":[{"node":")" + gname[0] +
                   R"(","mean":3.0}]})");
  EXPECT_EQ(all_eps.find("results")->as_array().size(),
            ref.timing_endpoints().size());
  const Json after = expect_ok(
      service, R"({"cmd":"stats","session":")" + session + R"("})");
  EXPECT_EQ(after.find("session")->find("eco_version")->as_number(), 3.0);
}

TEST(ServiceProtocol, StatsSurfaceCountersAndShutdownIsAcknowledged) {
  AnalysisService service;
  const std::string session =
      expect_ok(service, load_line("s27")).find("session")->as_string();
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session + R"("})");
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session + R"("})");
  expect_error(service, "garbage", "parse_error");

  const Json global = expect_ok(service, R"({"cmd":"stats"})");
  EXPECT_EQ(global.find("sessions")->as_number(), 1.0);
  EXPECT_GE(global.find("requests")->as_number(), 4.0);
  EXPECT_GE(global.find("errors")->as_number(), 1.0);
  EXPECT_EQ(global.find("analysis_cache")->find("hits")->as_number(), 1.0);

  const Json per = expect_ok(
      service, R"({"cmd":"stats","session":")" + session + R"("})");
  const Json* sj = per.find("session");
  ASSERT_NE(sj, nullptr);
  EXPECT_EQ(sj->find("analyses")->as_number(), 2.0);
  EXPECT_EQ(sj->find("cache_hits")->as_number(), 1.0);
  EXPECT_EQ(sj->find("eco_version")->as_number(), 0.0);

  EXPECT_FALSE(service.shutdown_requested());
  (void)expect_ok(service, R"({"cmd":"shutdown"})");
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServiceProtocol, StatsCarryMetricsSnapshot) {
  AnalysisService service;
  const std::string session =
      expect_ok(service, load_line("s27")).find("session")->as_string();
  (void)expect_ok(service, R"({"cmd":"analyze","session":")" + session + R"("})");

  const Json stats = expect_ok(service, R"({"cmd":"stats"})");
  const Json* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("enabled"), nullptr);
  if (!metrics->find("enabled")->as_bool()) return;  // compiled out / disabled

  // The analyze above must have driven the engine stage timers.
  const Json* stages = metrics->find("stages");
  ASSERT_NE(stages, nullptr);
  const Json* levelize = stages->find("stage.levelize");
  ASSERT_NE(levelize, nullptr);
  EXPECT_GE(levelize->find("count")->as_number(), 1.0);
  EXPECT_GE(levelize->find("total_ms")->as_number(), 0.0);
  ASSERT_NE(stages->find("stage.moment.propagate"), nullptr);
}

TEST(ServiceProtocol, NonFiniteResponseBodyDegradesToStructuredError) {
  // A hand-built response with Inf in the body must serialize as a valid
  // internal_error line — never "inf" (invalid JSON), never a fake 0.
  Json body = Json::object();
  body.set("mean", Json(std::numeric_limits<double>::infinity()));
  Response poisoned = Response::success(Json(7.0), body);
  poisoned.span.trace_id = 3;
  const std::string line = poisoned.to_line();
  const Json parsed = Json::parse(line);  // must be a valid document
  EXPECT_FALSE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("error")->find("code")->as_string(), "internal_error");
  EXPECT_EQ(parsed.find("id")->as_number(), 7.0);
  EXPECT_EQ(parsed.find("trace_id")->as_string(), "t-3");  // span survives

  // End to end: an ECO with the largest accepted sigma overflows the
  // variance to Inf inside the engine. Whatever the pipeline produces,
  // the wire line must stay parseable — degraded to internal_error if
  // any non-finite value reaches the body.
  AnalysisService service;
  const std::string session =
      expect_ok(service, load_line("s27")).find("session")->as_string();
  (void)expect_ok(service, R"({"cmd":"set_delay","session":")" + session +
                               R"(","node":"G11","mean":1,"std":1e300})");
  const Response r = service.execute_line(
      R"({"cmd":"analyze","session":")" + session + R"("})");
  const Json echoed = Json::parse(r.to_line());
  if (!echoed.find("ok")->as_bool()) {
    EXPECT_EQ(echoed.find("error")->find("code")->as_string(), "internal_error");
  }
}

TEST(ServiceProtocol, SchedulerAssignsSequentialTraceIds) {
  AnalysisService service;
  BatchScheduler scheduler(service, 2);
  const Response first = scheduler.run_one(R"({"id":1,"cmd":"ping"})");
  const Response second = scheduler.run_one(R"({"id":2,"cmd":"ping"})");
  EXPECT_EQ(first.span.trace_id, 1u);
  EXPECT_EQ(second.span.trace_id, 2u);
  EXPECT_EQ(first.span.cmd, "ping");
  EXPECT_GE(first.span.execute_ms, 0.0);
  EXPECT_NE(first.to_line().find(R"("trace_id":"t-1")"), std::string::npos);

  // Batch order is request order, whatever the pool interleaving did.
  std::vector<Incoming> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(Incoming{R"({"cmd":"ping"})"});
  const std::vector<Response> responses = scheduler.run(batch);
  ASSERT_EQ(responses.size(), 8u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].span.trace_id, 3 + i);
  }

  // The direct (unscheduled) execute path carries no trace id — and no
  // "trace_id" key on the wire.
  const Response direct = service.execute_line(R"({"cmd":"ping"})");
  EXPECT_EQ(direct.span.trace_id, 0u);
  EXPECT_EQ(direct.to_line().find("trace_id"), std::string::npos);
}

TEST(ServiceProtocol, MetricsToggleDoesNotPerturbResultsOrCache) {
  // Metrics are observational only: the analysis payload is byte-identical
  // with recording on and off, and toggling never invalidates the cache.
  AnalysisService on_service;
  AnalysisService off_service;
  const std::string load = load_line("s208");

  obs::set_enabled(true);
  const std::string s_on =
      expect_ok(on_service, load).find("session")->as_string();
  const Json r_on = expect_ok(
      on_service, R"({"cmd":"analyze","session":")" + s_on + R"("})");

  obs::set_enabled(false);
  const std::string s_off =
      expect_ok(off_service, load).find("session")->as_string();
  const Json r_off = expect_ok(
      off_service, R"({"cmd":"analyze","session":")" + s_off + R"("})");
  obs::set_enabled(true);

  EXPECT_EQ(r_on.find("endpoints")->dump(), r_off.find("endpoints")->dump());

  // Same session, analyze again with metrics flipped: still a cache hit.
  obs::set_enabled(false);
  const Json again = expect_ok(
      on_service, R"({"cmd":"analyze","session":")" + s_on + R"("})");
  obs::set_enabled(true);
  EXPECT_TRUE(again.find("cached")->as_bool());
}

}  // namespace
}  // namespace spsta::service
