// Tests for the BDD package: canonicity, ITE identities, cofactors,
// Boolean differences, and weighted probability evaluation — all validated
// against brute-force truth-table enumeration.

#include "bdd/bdd.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace spsta::bdd {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  BddManager m(3);
  EXPECT_EQ(m.num_vars(), 3u);
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_EQ(m.var(0), m.var(0));  // unique table canonicity
  const bool assignment[3] = {true, false, true};
  EXPECT_TRUE(m.evaluate(m.var(0), assignment));
  EXPECT_FALSE(m.evaluate(m.var(1), assignment));
  EXPECT_FALSE(m.evaluate(kFalse, assignment));
  EXPECT_TRUE(m.evaluate(kTrue, assignment));
}

TEST(Bdd, NotOfNotIsIdentity) {
  BddManager m(2);
  const BddRef f = m.apply_and(m.var(0), m.var(1));
  EXPECT_EQ(m.apply_not(m.apply_not(f)), f);
}

TEST(Bdd, CanonicityOfEquivalentFormulas) {
  BddManager m(3);
  // De Morgan: !(a & b) == !a | !b.
  const BddRef lhs = m.apply_not(m.apply_and(m.var(0), m.var(1)));
  const BddRef rhs = m.apply_or(m.apply_not(m.var(0)), m.apply_not(m.var(1)));
  EXPECT_EQ(lhs, rhs);
  // a ^ b == (a & !b) | (!a & b).
  const BddRef x1 = m.apply_xor(m.var(0), m.var(1));
  const BddRef x2 = m.apply_or(m.apply_and(m.var(0), m.apply_not(m.var(1))),
                               m.apply_and(m.apply_not(m.var(0)), m.var(1)));
  EXPECT_EQ(x1, x2);
}

TEST(Bdd, IteIdentities) {
  BddManager m(2);
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  EXPECT_EQ(m.ite(kTrue, a, b), a);
  EXPECT_EQ(m.ite(kFalse, a, b), b);
  EXPECT_EQ(m.ite(a, kTrue, kFalse), a);
  EXPECT_EQ(m.ite(a, b, b), b);
}

TEST(Bdd, RestrictCofactors) {
  BddManager m(2);
  const BddRef f = m.apply_and(m.var(0), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, true), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, false), kFalse);
  const BddRef g = m.apply_or(m.var(0), m.var(1));
  EXPECT_EQ(m.restrict_var(g, 1, true), kTrue);
}

TEST(Bdd, BooleanDifference) {
  BddManager m(2);
  // d(a&b)/da = b; d(a^b)/da = 1; d(b)/da = 0.
  EXPECT_EQ(m.boolean_difference(m.apply_and(m.var(0), m.var(1)), 0), m.var(1));
  EXPECT_EQ(m.boolean_difference(m.apply_xor(m.var(0), m.var(1)), 0), kTrue);
  EXPECT_EQ(m.boolean_difference(m.var(1), 0), kFalse);
}

TEST(Bdd, ExistentialQuantification) {
  BddManager m(2);
  const BddRef f = m.apply_and(m.var(0), m.var(1));
  EXPECT_EQ(m.exists(f, 0), m.var(1));
  EXPECT_EQ(m.exists(m.exists(f, 0), 1), kTrue);
}

TEST(Bdd, Support) {
  BddManager m(4);
  const BddRef f = m.apply_or(m.var(0), m.var(3));
  const auto s = f == kFalse ? std::vector<std::size_t>{} : m.support(f);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_TRUE(m.support(kTrue).empty());
}

TEST(Bdd, SatCount) {
  BddManager m(3);
  EXPECT_DOUBLE_EQ(m.sat_count(kTrue), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0)), 4.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.apply_and(m.var(0), m.var(1))), 2.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.apply_xor(m.var(0), m.var(2))), 4.0);
}

TEST(Bdd, ProbabilityMatchesFormulas) {
  BddManager m(2);
  const std::vector<double> p{0.3, 0.6};
  EXPECT_NEAR(m.probability(m.apply_and(m.var(0), m.var(1)), p), 0.18, 1e-12);
  EXPECT_NEAR(m.probability(m.apply_or(m.var(0), m.var(1)), p), 0.72, 1e-12);
  EXPECT_NEAR(m.probability(m.apply_xor(m.var(0), m.var(1)), p),
              0.3 * 0.4 + 0.7 * 0.6, 1e-12);
  EXPECT_NEAR(m.probability(m.apply_not(m.var(0)), p), 0.7, 1e-12);
}

TEST(Bdd, NodeCount) {
  BddManager m(2);
  EXPECT_EQ(m.node_count(kTrue), 1u);
  EXPECT_EQ(m.node_count(m.var(0)), 3u);  // node + 2 terminals
}

TEST(Bdd, OverflowThrows) {
  BddManager m(16, /*max_nodes=*/24);
  BddRef f = m.var(0);
  EXPECT_THROW(
      {
        for (std::size_t i = 1; i < 16; ++i) f = m.apply_xor(f, m.var(i));
      },
      BddOverflow);
}

// Random-function property check: build a BDD from a random expression
// tree and compare probability() against exhaustive enumeration.
class RandomFunction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFunction, ProbabilityMatchesEnumeration) {
  constexpr std::size_t kVars = 6;
  stats::Xoshiro256 rng(GetParam());
  BddManager m(kVars);

  // Random expression over the variables.
  std::vector<BddRef> pool;
  for (std::size_t i = 0; i < kVars; ++i) pool.push_back(m.var(i));
  for (int step = 0; step < 24; ++step) {
    const BddRef a = pool[rng.uniform_index(pool.size())];
    const BddRef b = pool[rng.uniform_index(pool.size())];
    switch (rng.uniform_index(4)) {
      case 0: pool.push_back(m.apply_and(a, b)); break;
      case 1: pool.push_back(m.apply_or(a, b)); break;
      case 2: pool.push_back(m.apply_xor(a, b)); break;
      default: pool.push_back(m.apply_not(a)); break;
    }
  }
  const BddRef f = pool.back();

  std::vector<double> probs(kVars);
  for (double& p : probs) p = rng.uniform(0.05, 0.95);

  double expected = 0.0;
  for (std::size_t mask = 0; mask < (1u << kVars); ++mask) {
    bool assignment[kVars];
    double w = 1.0;
    for (std::size_t i = 0; i < kVars; ++i) {
      assignment[i] = (mask >> i) & 1u;
      w *= assignment[i] ? probs[i] : 1.0 - probs[i];
    }
    if (m.evaluate(f, assignment)) expected += w;
  }
  EXPECT_NEAR(m.probability(f, probs), expected, 1e-12);
  // sat_count is the probability at p = 1/2 scaled by 2^n.
  double count = 0.0;
  for (std::size_t mask = 0; mask < (1u << kVars); ++mask) {
    bool assignment[kVars];
    for (std::size_t i = 0; i < kVars; ++i) assignment[i] = (mask >> i) & 1u;
    if (m.evaluate(f, assignment)) count += 1.0;
  }
  EXPECT_DOUBLE_EQ(m.sat_count(f), count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFunction,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace spsta::bdd
