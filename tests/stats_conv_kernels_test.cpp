// Tests for the fast numeric kernel layer (DESIGN.md §12, §16): FFT vs
// direct convolution agreement through the batched `conv_execute` entry
// point, discretized delay kernels, precomputed kernel spectra,
// batched-vs-single and SIMD-vs-scalar bit-identity, edge-fold mass
// accounting, the crossover knob (including malformed-override
// rejection), and workspace reuse (the allocation probe behind the "zero
// steady-state allocation" contract).

#include "stats/conv_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "stats/piecewise.hpp"
#include "stats/rng.hpp"
#include "stats/simd.hpp"
#include "stats/workspace.hpp"

namespace spsta::stats {
namespace {

/// Textbook O(n^2) reference convolution (scale folded in).
std::vector<double> naive_conv(const std::vector<double>& a,
                               const std::vector<double>& b, double scale) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += scale * a[i] * b[j];
    }
  }
  return out;
}

std::vector<double> random_density(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform();
  return v;
}

double linf(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// Single-column Dense convolution through the v2 entry point.
void conv_dense(std::span<const double> a, std::span<const double> b,
                double scale, std::span<double> out, Workspace& ws) {
  ConvExec ex;
  ex.form = ConvExec::Form::Dense;
  ex.cols = 1;
  ex.src[0] = a;
  ex.dense = b;
  ex.scale = scale;
  ex.dst[0] = out;
  ex.ws = &ws;
  conv_execute(ex);
}

/// Single-column Delay application through the v2 entry point.
void apply_delay(std::span<const double> in, const DelayKernel& k,
                 std::span<double> out, Workspace& ws) {
  ConvExec ex;
  ex.cols = 1;
  ex.src[0] = in;
  ex.kernel[0] = &k;
  ex.dst[0] = out;
  ex.ws = &ws;
  conv_execute(ex);
}

/// RAII crossover override so a failing assertion can't leak a knob
/// setting into later tests.
struct CrossoverGuard {
  explicit CrossoverGuard(std::size_t points) { set_conv_crossover(points); }
  ~CrossoverGuard() { set_conv_crossover(0); }
};

/// RAII scalar-tier override (restores auto-detection on exit).
struct ScalarGuard {
  ScalarGuard() { simd::set_force_scalar(true); }
  ~ScalarGuard() { simd::set_force_scalar(false); }
};

TEST(ConvKernels, SelectionIsPureFunctionOfSizes) {
  const CrossoverGuard guard(100);
  EXPECT_EQ(select_conv_kernel(64, 64), ConvKernelChoice::Fft);
  EXPECT_EQ(select_conv_kernel(40, 40), ConvKernelChoice::Direct);  // 79 < 100
  // A short FIR against a long signal stays direct regardless of length.
  EXPECT_EQ(select_conv_kernel(100000, kMinFftOperand - 1), ConvKernelChoice::Direct);
  EXPECT_EQ(select_conv_kernel(0, 64), ConvKernelChoice::Direct);
}

TEST(ConvKernels, CrossoverKnobRestoresDefault) {
  const std::size_t before = conv_crossover();
  set_conv_crossover(7);
  EXPECT_EQ(conv_crossover(), 7u);
  set_conv_crossover(0);
  EXPECT_EQ(conv_crossover(), before);
}

TEST(ConvKernels, CrossoverParseAcceptsPositiveIntegers) {
  EXPECT_EQ(parse_conv_crossover("512"), std::optional<std::size_t>{512});
  EXPECT_EQ(parse_conv_crossover("1"), std::optional<std::size_t>{1});
}

TEST(ConvKernels, CrossoverParseRejectsMalformedValues) {
  // Non-numeric, trailing junk, negative, zero, overflow, empty, null:
  // all rejected (the env reader then warns once and uses the default).
  EXPECT_FALSE(parse_conv_crossover("banana").has_value());
  EXPECT_FALSE(parse_conv_crossover("12banana").has_value());
  EXPECT_FALSE(parse_conv_crossover("-64").has_value());
  EXPECT_FALSE(parse_conv_crossover("0").has_value());
  EXPECT_FALSE(parse_conv_crossover("99999999999999999999999999").has_value());
  EXPECT_FALSE(parse_conv_crossover(" 512").has_value());
  EXPECT_FALSE(parse_conv_crossover("").has_value());
  EXPECT_FALSE(parse_conv_crossover(nullptr).has_value());
}

TEST(ConvKernels, FftMatchesDirectAcrossSizes) {
  // Odd, even, prime, and power-of-two operand sizes; mixed shapes.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {17, 17}, {127, 128}, {129, 64}, {251, 251}, {509, 33}, {1024, 1024}};
  Workspace& ws = Workspace::local();
  for (const auto& [na, nb] : shapes) {
    const std::vector<double> a = random_density(na, 11 * na + nb);
    const std::vector<double> b = random_density(nb, 13 * nb + na);
    const std::vector<double> ref = naive_conv(a, b, 0.05);

    std::vector<double> fft_out(na + nb - 1, -1.0);
    {
      const CrossoverGuard force_fft(1);
      conv_dense(a, b, 0.05, fft_out, ws);
    }
    std::vector<double> direct_out(na + nb - 1, -1.0);
    {
      const CrossoverGuard force_direct(1u << 30);
      conv_dense(a, b, 0.05, direct_out, ws);
    }
    EXPECT_LE(linf(fft_out, ref), 1e-9) << na << "x" << nb;
    EXPECT_LE(linf(direct_out, ref), 1e-12) << na << "x" << nb;
  }
}

TEST(ConvKernels, ZeroDensityConvolvesToZero) {
  Workspace& ws = Workspace::local();
  const std::vector<double> zeros(100, 0.0);
  const std::vector<double> b = random_density(100, 3);
  std::vector<double> out(199, -1.0);
  const CrossoverGuard force_fft(1);
  conv_dense(zeros, b, 1.0, out, ws);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(ConvKernels, SingleBinActsAsScaledShift) {
  Workspace& ws = Workspace::local();
  const std::vector<double> delta = {2.0};
  const std::vector<double> b = random_density(64, 5);
  std::vector<double> out(64, -1.0);
  conv_dense(delta, b, 0.5, out, ws);
  for (std::size_t j = 0; j < b.size(); ++j) EXPECT_DOUBLE_EQ(out[j], b[j]);
}

TEST(ConvKernels, ExactShiftKernelForDeterministicDelay) {
  const double dt = 0.25;
  const DelayKernel k = make_delay_kernel({1.125, 0.0}, dt);
  ASSERT_TRUE(k.exact_shift);
  EXPECT_EQ(k.shift, 4);           // floor(1.125 / 0.25) = 4
  EXPECT_NEAR(k.frac, 0.5, 1e-12); // 1.125/0.25 - 4 = 0.5

  // Applying it splits each sample between bins shift and shift+1.
  Workspace& ws = Workspace::local();
  const std::vector<double> in = {0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> out(in.size(), 0.0);
  apply_delay(in, k, out, ws);
  EXPECT_DOUBLE_EQ(out[5], 0.5);
  EXPECT_DOUBLE_EQ(out[6], 0.5);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0), 1.0, 1e-12);
}

TEST(ConvKernels, SubGridSigmaDegradesToExactShift) {
  // A +-8 sigma window narrower than one step must not alias to a spike.
  const DelayKernel k = make_delay_kernel({1.0, 1e-8}, 0.05);
  EXPECT_TRUE(k.exact_shift);
  EXPECT_EQ(k.shift, 20);
}

TEST(ConvKernels, GaussianKernelMassIsUnit) {
  const DelayKernel k = make_delay_kernel({2.0, 0.04}, 0.01);
  ASSERT_FALSE(k.exact_shift);
  double mass = 0.0;
  for (double t : k.taps) mass += t;
  EXPECT_NEAR(mass, 1.0, 1e-6);  // dt-weighted pdf taps sum to ~1
}

TEST(ConvKernels, ApplyDelayKernelFftMatchesDirect) {
  const DelayKernel k = make_delay_kernel({1.0, 0.01}, 0.01);
  ASSERT_FALSE(k.exact_shift);
  ASSERT_GE(k.size(), kMinFftOperand);
  Workspace& ws = Workspace::local();
  const std::vector<double> in = random_density(400, 17);
  std::vector<double> direct_out(600, 0.0);
  std::vector<double> fft_out(600, 0.0);
  {
    const CrossoverGuard force_direct(1u << 30);
    apply_delay(in, k, direct_out, ws);
  }
  {
    const CrossoverGuard force_fft(1);
    apply_delay(in, k, fft_out, ws);
  }
  EXPECT_LE(linf(fft_out, direct_out), 1e-9);
}

TEST(ConvKernels, PrecomputedSpectrumIsBitIdenticalToOnTheFly) {
  // Cached kernel spectra change cost, never bits: the same application
  // with and without a precomputed spectrum must agree exactly.
  DelayKernel cached = make_delay_kernel({1.0, 0.01}, 0.01);
  const DelayKernel fresh = cached;
  ASSERT_FALSE(cached.exact_shift);
  Workspace& ws = Workspace::local();
  const CrossoverGuard force_fft(1);
  // Odd/prime input lengths exercise padding in the half-size real FFT.
  for (const std::size_t n : {127u, 251u, 400u, 1024u}) {
    const std::vector<double> in = random_density(n, 1000 + n);
    const std::size_t fft_n = delay_fft_size(n, fresh);
    ASSERT_GT(fft_n, 0u);
    precompute_kernel_spectrum(cached, fft_n, ws);
    ASSERT_EQ(cached.spec_n, fft_n);
    std::vector<double> out_fresh(n, 0.0), out_cached(n, 0.0);
    apply_delay(in, fresh, out_fresh, ws);
    apply_delay(in, cached, out_cached, ws);
    EXPECT_EQ(0, std::memcmp(out_fresh.data(), out_cached.data(),
                             n * sizeof(double)))
        << "n=" << n;
  }
}

TEST(ConvKernels, BatchedDelayMatchesSingleColumnBitwise) {
  // A batched call is the same math column by column: results must be
  // bit-identical to individual single-column calls, for 1..kMaxCols
  // columns, odd/prime grid sizes, and mixed per-column kernels.
  Workspace& ws = Workspace::local();
  DelayKernel wide = make_delay_kernel({1.0, 0.01}, 0.01);
  const DelayKernel narrow = make_delay_kernel({0.5, 0.0025}, 0.01);
  const DelayKernel shift = make_delay_kernel({0.25, 0.0}, 0.01);
  const DelayKernel* kernels[] = {&wide, &narrow, &shift, &wide};
  const CrossoverGuard force_fft(1);
  for (const std::size_t n : {127u, 251u, 509u, 1024u}) {
    // Precompute one spectrum to mix cached and on-the-fly columns.
    precompute_kernel_spectrum(wide, delay_fft_size(n, wide), ws);
    for (std::size_t cols = 1; cols <= ConvExec::kMaxCols; ++cols) {
      std::vector<std::vector<double>> src, batched, single;
      for (std::size_t c = 0; c < cols; ++c) {
        src.push_back(random_density(n, 31 * n + c));
        batched.emplace_back(n, 0.0);
        single.emplace_back(n, 0.0);
      }
      ConvExec ex;
      ex.cols = cols;
      ex.ws = &ws;
      for (std::size_t c = 0; c < cols; ++c) {
        ex.src[c] = src[c];
        ex.dst[c] = batched[c];
        ex.kernel[c] = kernels[c];
      }
      conv_execute(ex);
      for (std::size_t c = 0; c < cols; ++c) {
        apply_delay(src[c], *kernels[c], single[c], ws);
      }
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(0, std::memcmp(batched[c].data(), single[c].data(),
                                 n * sizeof(double)))
            << "n=" << n << " cols=" << cols << " c=" << c;
      }
    }
  }
}

TEST(ConvKernels, SimdMatchesScalarBitwise) {
  // The dispatch contract (simd.hpp): every tier computes the identical
  // per-element operation DAG, so results agree bit for bit. On hardware
  // without a vector tier both runs take the scalar path and the test
  // degenerates to (still meaningful) determinism.
  Workspace& ws = Workspace::local();
  const DelayKernel k = make_delay_kernel({1.0, 0.01}, 0.01);
  const CrossoverGuard force_fft(1);
  for (const std::size_t n : {127u, 251u, 400u, 1024u, 4096u}) {
    const std::vector<double> a = random_density(n, 7 * n);
    const std::vector<double> b = random_density(n, 9 * n);
    std::vector<double> dense_simd(2 * n - 1), dense_scalar(2 * n - 1);
    std::vector<double> delay_simd(n, 0.0), delay_scalar(n, 0.0);
    simd::set_force_scalar(false);
    conv_dense(a, b, 0.05, dense_simd, ws);
    apply_delay(a, k, delay_simd, ws);
    {
      const ScalarGuard scalar;
      conv_dense(a, b, 0.05, dense_scalar, ws);
      apply_delay(a, k, delay_scalar, ws);
    }
    EXPECT_EQ(0, std::memcmp(dense_simd.data(), dense_scalar.data(),
                             dense_simd.size() * sizeof(double)))
        << "dense n=" << n;
    EXPECT_EQ(0, std::memcmp(delay_simd.data(), delay_scalar.data(),
                             n * sizeof(double)))
        << "delay n=" << n;
  }
}

TEST(ConvKernels, ForcedScalarDispatchPinsScalarTier) {
  const char* detected = simd::tier_name();
  {
    const ScalarGuard scalar;
    EXPECT_STREQ(simd::tier_name(), "scalar");
    EXPECT_STREQ(simd::ops().name, "scalar");
  }
  // Restored to the auto-detected tier afterwards.
  EXPECT_STREQ(simd::tier_name(), detected);
}

TEST(ConvKernels, ConvExecuteValidatesDescriptors) {
  Workspace& ws = Workspace::local();
  const std::vector<double> a = random_density(8, 1);
  std::vector<double> out(15, 0.0);

  ConvExec no_ws;
  no_ws.cols = 1;
  no_ws.src[0] = a;
  no_ws.dst[0] = out;
  no_ws.kernel[0] = nullptr;
  EXPECT_THROW(conv_execute(no_ws), std::invalid_argument);

  ConvExec no_kernel;
  no_kernel.cols = 1;
  no_kernel.src[0] = a;
  no_kernel.dst[0] = out;
  no_kernel.ws = &ws;
  EXPECT_THROW(conv_execute(no_kernel), std::invalid_argument);

  ConvExec bad_cols;
  bad_cols.form = ConvExec::Form::Dense;
  bad_cols.cols = ConvExec::kMaxCols + 1;
  bad_cols.ws = &ws;
  EXPECT_THROW(conv_execute(bad_cols), std::invalid_argument);

  ConvExec bad_size;
  bad_size.form = ConvExec::Form::Dense;
  bad_size.cols = 1;
  bad_size.src[0] = a;
  bad_size.dense = a;
  bad_size.dst[0] = std::span<double>(out.data(), 14);  // want 15
  bad_size.ws = &ws;
  EXPECT_THROW(conv_execute(bad_size), std::invalid_argument);
}

TEST(ConvKernels, EdgeMassFoldsInsteadOfDropping) {
  // A kernel shifted past the end of a short grid folds into the last bin.
  obs::Counter& clipped = obs::registry().counter("stats.conv.clipped");
  const std::uint64_t before = clipped.value();
  Workspace& ws = Workspace::local();
  const DelayKernel k = make_delay_kernel({5.0, 0.0}, 1.0);  // shift by 5
  const std::vector<double> in = {0.0, 1.0, 1.0, 0.0};
  std::vector<double> out(4, 0.0);
  apply_delay(in, k, out, ws);
  // All mass lands past the grid; conservation folds it into out.back().
  EXPECT_DOUBLE_EQ(out[3], 2.0);
  EXPECT_DOUBLE_EQ(out[0] + out[1] + out[2], 0.0);
  EXPECT_GT(clipped.value(), before);
}

TEST(ConvKernels, PiecewiseConvolveFoldsClippedTail) {
  // Operands sized so the capped output grid (2^16 points) cannot hold the
  // full support: the clipped tail must fold into the last bin, bumping
  // the obs counter, and the product mass must be conserved.
  obs::Counter& clipped = obs::registry().counter("stats.conv.clipped");
  const GridSpec g{0.0, 1.0, 40000};
  std::vector<double> va(g.n, 0.0);
  std::vector<double> vb(g.n, 0.0);
  // Uniform blocks positioned so part of the sum's support passes the cap.
  std::fill(va.begin() + 30000, va.end(), 1e-3);
  std::fill(vb.begin() + 30000, vb.end(), 1e-3);
  const PiecewiseDensity a(g, std::move(va));
  const PiecewiseDensity b(g, std::move(vb));
  const std::uint64_t before = clipped.value();
  const PiecewiseDensity c = PiecewiseDensity::convolve(a, b);
  EXPECT_GT(clipped.value(), before);
  EXPECT_EQ(c.grid().n, std::size_t{1} << 16);
  // Sample-sum conservation (the fold is in sample units): sum(c) ==
  // dt * sum(a) * sum(b) up to round-off.
  double sc = 0.0;
  for (double v : c.values()) sc += v;
  EXPECT_NEAR(sc, 1e-3 * 10000 * 1e-3 * 10000, 1e-9);
}

TEST(ConvKernels, WorkspaceWarmRunsDoNotGrow) {
  Workspace& ws = Workspace::local();
  const std::vector<double> a = random_density(777, 23);
  const std::vector<double> b = random_density(500, 29);
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  const CrossoverGuard force_fft(1);
  conv_dense(a, b, 1.0, out, ws);  // warm-up: may grow buffers + plan
  const std::uint64_t grows_after_warm = ws.grows();
  for (int rep = 0; rep < 5; ++rep) conv_dense(a, b, 1.0, out, ws);
  EXPECT_EQ(ws.grows(), grows_after_warm);  // steady state allocates nothing
  EXPECT_GT(ws.reuses(), 0u);
}

TEST(ConvKernels, WarmDelayPathDoesNotGrow) {
  // The half-size real-FFT path (work lanes, half-spectra, staging) must
  // also reach zero steady-state allocation after one warm call.
  Workspace& ws = Workspace::local();
  const DelayKernel k = make_delay_kernel({1.0, 0.01}, 0.01);
  const std::vector<double> in = random_density(400, 31);
  std::vector<double> out(600, 0.0);
  const CrossoverGuard force_fft(1);
  apply_delay(in, k, out, ws);  // warm-up
  const std::uint64_t grows_after_warm = ws.grows();
  for (int rep = 0; rep < 5; ++rep) apply_delay(in, k, out, ws);
  EXPECT_EQ(ws.grows(), grows_after_warm);
  EXPECT_GT(ws.reuses(), 0u);
}

}  // namespace
}  // namespace spsta::stats
