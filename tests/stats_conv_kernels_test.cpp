// Tests for the fast numeric kernel layer (DESIGN.md §12): FFT vs direct
// convolution agreement, discretized delay kernels, edge-fold mass
// accounting, the crossover knob, and workspace reuse (the allocation
// probe behind the "zero steady-state allocation" contract).

#include "stats/conv_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "stats/piecewise.hpp"
#include "stats/rng.hpp"
#include "stats/workspace.hpp"

namespace spsta::stats {
namespace {

/// Textbook O(n^2) reference convolution (scale folded in).
std::vector<double> naive_conv(const std::vector<double>& a,
                               const std::vector<double>& b, double scale) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += scale * a[i] * b[j];
    }
  }
  return out;
}

std::vector<double> random_density(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform();
  return v;
}

double linf(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// RAII crossover override so a failing assertion can't leak a knob
/// setting into later tests.
struct CrossoverGuard {
  explicit CrossoverGuard(std::size_t points) { set_conv_crossover(points); }
  ~CrossoverGuard() { set_conv_crossover(0); }
};

TEST(ConvKernels, SelectionIsPureFunctionOfSizes) {
  const CrossoverGuard guard(100);
  EXPECT_EQ(select_conv_kernel(64, 64), ConvKernelChoice::Fft);
  EXPECT_EQ(select_conv_kernel(40, 40), ConvKernelChoice::Direct);  // 79 < 100
  // A short FIR against a long signal stays direct regardless of length.
  EXPECT_EQ(select_conv_kernel(100000, kMinFftOperand - 1), ConvKernelChoice::Direct);
  EXPECT_EQ(select_conv_kernel(0, 64), ConvKernelChoice::Direct);
}

TEST(ConvKernels, CrossoverKnobRestoresDefault) {
  const std::size_t before = conv_crossover();
  set_conv_crossover(7);
  EXPECT_EQ(conv_crossover(), 7u);
  set_conv_crossover(0);
  EXPECT_EQ(conv_crossover(), before);
}

TEST(ConvKernels, FftMatchesDirectAcrossSizes) {
  // Odd, even, prime, and power-of-two operand sizes; mixed shapes.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {17, 17}, {127, 128}, {129, 64}, {251, 251}, {509, 33}, {1024, 1024}};
  Workspace& ws = Workspace::for_this_thread();
  for (const auto& [na, nb] : shapes) {
    const std::vector<double> a = random_density(na, 11 * na + nb);
    const std::vector<double> b = random_density(nb, 13 * nb + na);
    const std::vector<double> ref = naive_conv(a, b, 0.05);

    std::vector<double> fft_out(na + nb - 1, -1.0);
    {
      const CrossoverGuard force_fft(1);
      conv_full(a, b, 0.05, fft_out, ws);
    }
    std::vector<double> direct_out(na + nb - 1, -1.0);
    {
      const CrossoverGuard force_direct(1u << 30);
      conv_full(a, b, 0.05, direct_out, ws);
    }
    EXPECT_LE(linf(fft_out, ref), 1e-9) << na << "x" << nb;
    EXPECT_LE(linf(direct_out, ref), 1e-12) << na << "x" << nb;
  }
}

TEST(ConvKernels, ZeroDensityConvolvesToZero) {
  Workspace& ws = Workspace::for_this_thread();
  const std::vector<double> zeros(100, 0.0);
  const std::vector<double> b = random_density(100, 3);
  std::vector<double> out(199, -1.0);
  const CrossoverGuard force_fft(1);
  conv_full(zeros, b, 1.0, out, ws);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(ConvKernels, SingleBinActsAsScaledShift) {
  Workspace& ws = Workspace::for_this_thread();
  const std::vector<double> delta = {2.0};
  const std::vector<double> b = random_density(64, 5);
  std::vector<double> out(64, -1.0);
  conv_full(delta, b, 0.5, out, ws);
  for (std::size_t j = 0; j < b.size(); ++j) EXPECT_DOUBLE_EQ(out[j], b[j]);
}

TEST(ConvKernels, ExactShiftKernelForDeterministicDelay) {
  const double dt = 0.25;
  const DelayKernel k = make_delay_kernel({1.125, 0.0}, dt);
  ASSERT_TRUE(k.exact_shift);
  EXPECT_EQ(k.shift, 4);           // floor(1.125 / 0.25) = 4
  EXPECT_NEAR(k.frac, 0.5, 1e-12); // 1.125/0.25 - 4 = 0.5

  // Applying it splits each sample between bins shift and shift+1.
  Workspace& ws = Workspace::for_this_thread();
  const std::vector<double> in = {0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> out(in.size(), 0.0);
  apply_delay_kernel(in, k, out, ws);
  EXPECT_DOUBLE_EQ(out[5], 0.5);
  EXPECT_DOUBLE_EQ(out[6], 0.5);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0), 1.0, 1e-12);
}

TEST(ConvKernels, SubGridSigmaDegradesToExactShift) {
  // A +-8 sigma window narrower than one step must not alias to a spike.
  const DelayKernel k = make_delay_kernel({1.0, 1e-8}, 0.05);
  EXPECT_TRUE(k.exact_shift);
  EXPECT_EQ(k.shift, 20);
}

TEST(ConvKernels, GaussianKernelMassIsUnit) {
  const DelayKernel k = make_delay_kernel({2.0, 0.04}, 0.01);
  ASSERT_FALSE(k.exact_shift);
  double mass = 0.0;
  for (double t : k.taps) mass += t;
  EXPECT_NEAR(mass, 1.0, 1e-6);  // dt-weighted pdf taps sum to ~1
}

TEST(ConvKernels, ApplyDelayKernelFftMatchesDirect) {
  const DelayKernel k = make_delay_kernel({1.0, 0.01}, 0.01);
  ASSERT_FALSE(k.exact_shift);
  ASSERT_GE(k.size(), kMinFftOperand);
  Workspace& ws = Workspace::for_this_thread();
  const std::vector<double> in = random_density(400, 17);
  std::vector<double> direct_out(600, 0.0);
  std::vector<double> fft_out(600, 0.0);
  {
    const CrossoverGuard force_direct(1u << 30);
    apply_delay_kernel(in, k, direct_out, ws);
  }
  {
    const CrossoverGuard force_fft(1);
    apply_delay_kernel(in, k, fft_out, ws);
  }
  EXPECT_LE(linf(fft_out, direct_out), 1e-9);
}

TEST(ConvKernels, EdgeMassFoldsInsteadOfDropping) {
  // A kernel shifted past the end of a short grid folds into the last bin.
  obs::Counter& clipped = obs::registry().counter("stats.conv.clipped");
  const std::uint64_t before = clipped.value();
  Workspace& ws = Workspace::for_this_thread();
  const DelayKernel k = make_delay_kernel({5.0, 0.0}, 1.0);  // shift by 5
  const std::vector<double> in = {0.0, 1.0, 1.0, 0.0};
  std::vector<double> out(4, 0.0);
  apply_delay_kernel(in, k, out, ws);
  // All mass lands past the grid; conservation folds it into out.back().
  EXPECT_DOUBLE_EQ(out[3], 2.0);
  EXPECT_DOUBLE_EQ(out[0] + out[1] + out[2], 0.0);
  EXPECT_GT(clipped.value(), before);
}

TEST(ConvKernels, PiecewiseConvolveFoldsClippedTail) {
  // Operands sized so the capped output grid (2^16 points) cannot hold the
  // full support: the clipped tail must fold into the last bin, bumping
  // the obs counter, and the product mass must be conserved.
  obs::Counter& clipped = obs::registry().counter("stats.conv.clipped");
  const GridSpec g{0.0, 1.0, 40000};
  std::vector<double> va(g.n, 0.0);
  std::vector<double> vb(g.n, 0.0);
  // Uniform blocks positioned so part of the sum's support passes the cap.
  std::fill(va.begin() + 30000, va.end(), 1e-3);
  std::fill(vb.begin() + 30000, vb.end(), 1e-3);
  const PiecewiseDensity a(g, std::move(va));
  const PiecewiseDensity b(g, std::move(vb));
  const std::uint64_t before = clipped.value();
  const PiecewiseDensity c = PiecewiseDensity::convolve(a, b);
  EXPECT_GT(clipped.value(), before);
  EXPECT_EQ(c.grid().n, std::size_t{1} << 16);
  // Sample-sum conservation (the fold is in sample units): sum(c) ==
  // dt * sum(a) * sum(b) up to round-off.
  double sc = 0.0;
  for (double v : c.values()) sc += v;
  EXPECT_NEAR(sc, 1e-3 * 10000 * 1e-3 * 10000, 1e-9);
}

TEST(ConvKernels, WorkspaceWarmRunsDoNotGrow) {
  Workspace& ws = Workspace::for_this_thread();
  const std::vector<double> a = random_density(777, 23);
  const std::vector<double> b = random_density(500, 29);
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  const CrossoverGuard force_fft(1);
  conv_full(a, b, 1.0, out, ws);  // warm-up: may grow buffers + plan
  const std::uint64_t grows_after_warm = ws.grows();
  for (int rep = 0; rep < 5; ++rep) conv_full(a, b, 1.0, out, ws);
  EXPECT_EQ(ws.grows(), grows_after_warm);  // steady state allocates nothing
  EXPECT_GT(ws.reuses(), 0u);
}

}  // namespace
}  // namespace spsta::stats
