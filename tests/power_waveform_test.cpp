// Tests for probabilistic waveform simulation (paper background ref [15]).

#include "power/waveform_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "sigprob/signal_prob.hpp"

namespace spsta::power {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Waveform, SourceWaveformIsTransitionCdf) {
  Netlist n;
  const NodeId a = n.add_input("a");
  SourceWaveform s;
  s.p_before = 0.2;
  s.p_after = 0.8;
  s.transition = {1.0, 0.25};
  const WaveformResult r =
      simulate_waveforms(n, netlist::DelayModel::unit(n), std::vector{s});
  EXPECT_NEAR(r.node[a].at(-5.0), 0.2, 1e-6);
  EXPECT_NEAR(r.node[a].at(1.0), 0.5, 1e-6);  // cdf midpoint
  EXPECT_NEAR(r.node[a].at(7.0), 0.8, 1e-6);
  EXPECT_NEAR(r.node[a].total_variation(), 0.6, 1e-3);
}

TEST(Waveform, BufferChainDelaysTheWaveform) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  SourceWaveform s;
  s.p_before = 0.0;
  s.p_after = 1.0;
  s.transition = {0.0, 0.04};
  const WaveformResult r =
      simulate_waveforms(n, netlist::DelayModel::unit(n), std::vector{s}, 0.02);
  // The 50% crossing shifts by one unit delay per buffer.
  EXPECT_NEAR(r.node[prev].at(3.0), 0.5, 0.02);
  EXPECT_LT(r.node[prev].at(2.5), 0.05);
  EXPECT_GT(r.node[prev].at(3.5), 0.95);
}

TEST(Waveform, InverterFlipsTheWaveform) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  SourceWaveform s;
  s.p_before = 0.0;
  s.p_after = 1.0;
  s.transition = {0.0, 1.0};
  const WaveformResult r =
      simulate_waveforms(n, netlist::DelayModel::unit(n), std::vector{s});
  for (double t : {-2.0, 0.0, 2.0}) {
    EXPECT_NEAR(r.node[inv].at(t + 1.0), 1.0 - r.node[a].at(t), 1e-6);
  }
}

TEST(Waveform, SteadyStateMatchesSignalProbability) {
  // Long after all transitions, the waveform equals the static signal
  // probability of the final input values.
  const Netlist n = netlist::make_s27();
  SourceWaveform s;
  s.p_before = 0.5;
  s.p_after = 0.3;
  s.transition = {0.0, 1.0};
  const WaveformResult r =
      simulate_waveforms(n, netlist::DelayModel::unit(n), std::vector{s});
  const std::vector<double> final_probs =
      sigprob::propagate_signal_probabilities(n, std::vector<double>{0.3});
  const double t_end = r.grid.t_end();
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(r.node[id].at(t_end), final_probs[id], 1e-3) << n.node(id).name;
  }
}

TEST(Waveform, AndGateShowsStaticHazardWindow) {
  // a rising early, b falling late at an AND: the output probability rises
  // transiently in between — the glitch window the four-value logic
  // filters but the waveform exposes.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  std::vector<SourceWaveform> sources(2);
  sources[0] = {0.0, 1.0, {0.0, 0.01}};   // a: rises around t=0
  sources[1] = {1.0, 0.0, {2.0, 0.01}};   // b: falls around t=2
  const WaveformResult r =
      simulate_waveforms(n, netlist::DelayModel::unit(n), sources, 0.02);
  EXPECT_LT(r.node[y].at(0.0), 0.05);   // before: a=0
  EXPECT_GT(r.node[y].at(2.0), 0.9);    // in the window: both high
  EXPECT_LT(r.node[y].at(4.5), 0.05);   // after: b=0
  // Total variation counts both glitch edges.
  EXPECT_NEAR(r.node[y].total_variation(), 2.0, 0.05);
}

TEST(Waveform, Validation) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)simulate_waveforms(n, netlist::DelayModel::unit(n),
                                        std::vector<SourceWaveform>(2)),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_waveforms(n, netlist::DelayModel::unit(n),
                                        std::vector<SourceWaveform>(1), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::power
