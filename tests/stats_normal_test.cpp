// Tests for the standard-normal primitives: pdf/cdf identities and
// quantile round-trips.

#include "stats/normal.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace spsta::stats {
namespace {

TEST(Normal, PdfPeakValue) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
}

TEST(Normal, PdfSymmetry) {
  for (double x : {0.1, 0.5, 1.0, 2.5, 4.0}) {
    EXPECT_DOUBLE_EQ(normal_pdf(x), normal_pdf(-x));
  }
}

TEST(Normal, PdfScaling) {
  // N(m, s^2) density relates to the standard density by 1/s scaling.
  const double m = 3.0, s = 2.0, x = 4.5;
  EXPECT_NEAR(normal_pdf(x, m, s), normal_pdf((x - m) / s) / s, 1e-15);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(Normal, CdfComplement) {
  for (double x : {0.3, 1.2, 2.7, 5.0}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14);
  }
}

TEST(Normal, CdfIsDerivativeOfPdf) {
  // Central difference of the cdf approximates the pdf.
  const double h = 1e-6;
  for (double x : {-2.0, -0.5, 0.0, 0.7, 1.9}) {
    const double deriv = (normal_cdf(x + h) - normal_cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(deriv, normal_pdf(x), 1e-7);
  }
}

TEST(Normal, QuantileMedianAndTails) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_GT(normal_quantile(1.0), 0.0);
}

TEST(Normal, QuantileShiftScale) {
  EXPECT_NEAR(normal_quantile(0.8413447460685429, 10.0, 2.0), 12.0, 1e-8);
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileRoundTrip,
                         ::testing::Values(1e-10, 1e-6, 1e-3, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 0.999, 1.0 - 1e-6,
                                           1.0 - 1e-10));

class QuantileInverse : public ::testing::TestWithParam<double> {};

TEST_P(QuantileInverse, QuantileOfCdfIsIdentity) {
  const double x = GetParam();
  EXPECT_NEAR(normal_quantile(normal_cdf(x)), x, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileInverse,
                         ::testing::Values(-5.0, -3.0, -1.5, -0.2, 0.0, 0.2, 1.5, 3.0,
                                           5.0));

}  // namespace
}  // namespace spsta::stats
