// Tests for the deterministic circuit generator and the paper suite specs.

#include "netlist/generator.hpp"

#include <string>

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"

namespace spsta::netlist {
namespace {

TEST(Generator, RespectsCounts) {
  GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_outputs = 3;
  spec.num_dffs = 4;
  spec.num_gates = 40;
  spec.target_depth = 6;
  spec.seed = 99;
  const Netlist n = generate_circuit(spec);
  EXPECT_EQ(n.primary_inputs().size(), 6u);
  EXPECT_EQ(n.primary_outputs().size(), 3u);
  EXPECT_EQ(n.dffs().size(), 4u);
  EXPECT_EQ(n.gate_count(), 40u);
  EXPECT_NO_THROW(n.validate());
}

TEST(Generator, HitsExactTargetDepth) {
  for (std::size_t depth : {1u, 3u, 7u, 12u}) {
    GeneratorSpec spec;
    spec.num_inputs = 4;
    spec.num_gates = 50;
    spec.target_depth = depth;
    spec.seed = depth;
    const Levelization lv = levelize(generate_circuit(spec));
    EXPECT_EQ(lv.depth, depth);
  }
}

TEST(Generator, DeterministicForSameSeed) {
  const GeneratorSpec spec = paper_circuit_spec("s298");
  const std::string a = write_bench(generate_circuit(spec));
  const std::string b = write_bench(generate_circuit(spec));
  EXPECT_EQ(a, b);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorSpec spec = paper_circuit_spec("s298");
  const std::string a = write_bench(generate_circuit(spec));
  spec.seed ^= 0xDEADBEEF;
  const std::string b = write_bench(generate_circuit(spec));
  EXPECT_NE(a, b);
}

TEST(Generator, RejectsInconsistentSpecs) {
  GeneratorSpec no_sources;
  no_sources.num_inputs = 0;
  no_sources.num_dffs = 0;
  EXPECT_THROW((void)generate_circuit(no_sources), std::invalid_argument);

  GeneratorSpec no_gates;
  no_gates.num_inputs = 2;
  no_gates.num_gates = 0;
  no_gates.num_outputs = 1;
  EXPECT_THROW((void)generate_circuit(no_gates), std::invalid_argument);

  GeneratorSpec bad_fanin;
  bad_fanin.max_fanin = 1;
  EXPECT_THROW((void)generate_circuit(bad_fanin), std::invalid_argument);
}

TEST(Generator, DffsAreConnected) {
  GeneratorSpec spec;
  spec.num_inputs = 3;
  spec.num_dffs = 5;
  spec.num_gates = 30;
  spec.target_depth = 4;
  const Netlist n = generate_circuit(spec);
  for (NodeId q : n.dffs()) {
    ASSERT_EQ(n.node(q).fanins.size(), 1u);
  }
}

TEST(PaperSuite, AllCircuitsBuildAndLevelize) {
  for (std::string_view name : paper_circuit_names()) {
    const Netlist n = make_paper_circuit(name);
    EXPECT_EQ(n.name(), name);
    EXPECT_NO_THROW(n.validate()) << name;
    const Levelization lv = levelize(n);
    const GeneratorSpec spec = paper_circuit_spec(name);
    EXPECT_EQ(lv.depth, spec.target_depth) << name;
    EXPECT_EQ(n.gate_count(), spec.num_gates) << name;
    EXPECT_EQ(n.primary_inputs().size(), spec.num_inputs) << name;
    EXPECT_EQ(n.dffs().size(), spec.num_dffs) << name;
  }
}

TEST(PaperSuite, UnknownNameThrows) {
  EXPECT_THROW((void)paper_circuit_spec("s9999"), std::invalid_argument);
}

TEST(PaperSuite, S27IsTheRealNetlist) {
  const Netlist n = make_paper_circuit("s27");
  EXPECT_EQ(n.gate_count(), 10u);
  EXPECT_NE(n.find("G17"), kInvalidNode);
}

// Property sweep: the generator must produce valid, exactly-sized DAGs
// across a spread of shapes and seeds.
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(GeneratorSweep, ValidAcyclicExactCounts) {
  const auto [gates, depth, seed] = GetParam();
  GeneratorSpec spec;
  spec.num_inputs = 5;
  spec.num_outputs = 2;
  spec.num_dffs = 3;
  spec.num_gates = gates;
  spec.target_depth = depth;
  spec.seed = seed;
  const Netlist n = generate_circuit(spec);
  n.validate();
  const Levelization lv = levelize(n);  // throws on cycles
  EXPECT_EQ(n.gate_count(), gates);
  EXPECT_EQ(lv.depth, std::min(depth, gates));
  // Round-trips through the .bench format.
  const Netlist reparsed = parse_bench(write_bench(n), spec.name);
  EXPECT_EQ(reparsed.node_count(), n.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(10, 60, 200),
                       ::testing::Values<std::size_t>(2, 5, 9),
                       ::testing::Values<std::uint64_t>(1, 17, 123456789)));

}  // namespace
}  // namespace spsta::netlist
