// Tests for the cell timing library and its DelayModel application.

#include "netlist/cell_library.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::netlist {
namespace {

constexpr const char* kLib = R"(
# type   mean  sigma  load_coeff
NAND     0.90  0.05   0.08
NOT      0.45  0.02   0.05
AND      1.10  0.06   0.10
default  1.00  0.03   0.00
)";

TEST(CellLibrary, ParsesEntriesAndDefault) {
  const CellLibrary lib = CellLibrary::parse(kLib);
  ASSERT_TRUE(lib.timing(GateType::Nand).has_value());
  EXPECT_EQ(lib.timing(GateType::Nand)->mean, 0.90);
  EXPECT_EQ(lib.timing(GateType::Not)->sigma, 0.02);
  EXPECT_FALSE(lib.timing(GateType::Or).has_value());
  EXPECT_EQ(lib.default_timing().mean, 1.00);
  EXPECT_EQ(lib.default_timing().sigma, 0.03);
}

TEST(CellLibrary, DelayAppliesLoadTerm) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::Nand, "g", {a, a});
  const NodeId s1 = n.add_gate(GateType::Buf, "s1", {g});
  const NodeId s2 = n.add_gate(GateType::Buf, "s2", {g});
  (void)s1;
  (void)s2;

  const CellLibrary lib = CellLibrary::parse(kLib);
  const stats::Gaussian d = lib.delay_of(n, g);
  EXPECT_NEAR(d.mean, 0.90 + 0.08 * 2.0, 1e-12);  // two fanouts
  EXPECT_NEAR(d.var, 0.05 * 0.05, 1e-12);
  // Sources get zero delay.
  EXPECT_EQ(lib.delay_of(n, a).mean, 0.0);
}

TEST(CellLibrary, ApplyBuildsFullModel) {
  const Netlist n = make_s27();
  const CellLibrary lib = CellLibrary::parse(kLib);
  const DelayModel m = lib.apply(n);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    const GateType t = n.node(id).type;
    if (t == GateType::Input || t == GateType::Dff) {
      EXPECT_EQ(m.delay(id).mean, 0.0) << n.node(id).name;
    } else {
      EXPECT_GT(m.delay(id).mean, 0.0) << n.node(id).name;
    }
  }
  // NOT entries really differ from the default.
  const NodeId g17 = n.find("G17");
  EXPECT_NEAR(m.delay(g17).var, 0.02 * 0.02, 1e-12);
}

TEST(CellLibrary, TextRoundTrip) {
  const CellLibrary lib = CellLibrary::parse(kLib);
  const CellLibrary reparsed = CellLibrary::parse(lib.to_text());
  EXPECT_EQ(reparsed.timing(GateType::Nand), lib.timing(GateType::Nand));
  EXPECT_EQ(reparsed.timing(GateType::And), lib.timing(GateType::And));
  EXPECT_EQ(reparsed.default_timing(), lib.default_timing());
}

TEST(CellLibrary, ErrorsCarryLineNumbers) {
  try {
    (void)CellLibrary::parse("NAND 0.9 0.05 0.08\nFROB 1 2 3\n");
    FAIL() << "expected CellLibraryParseError";
  } catch (const CellLibraryParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(CellLibrary, RejectsMalformedRows) {
  EXPECT_THROW((void)CellLibrary::parse("NAND 0.9 0.05\n"), CellLibraryParseError);
  EXPECT_THROW((void)CellLibrary::parse("NAND 0.9 0.05 0.08 extra\n"),
               CellLibraryParseError);
  EXPECT_THROW((void)CellLibrary::parse("NAND -1 0.05 0.08\n"), CellLibraryParseError);
  EXPECT_THROW((void)CellLibrary::parse("INPUT 1 0 0\n"), CellLibraryParseError);
}

TEST(CellLibrary, EmptyLibraryUsesUnitDefault) {
  const CellLibrary lib;
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::Or, "g", {a, a});
  EXPECT_EQ(lib.delay_of(n, g).mean, 1.0);
  EXPECT_EQ(lib.delay_of(n, g).var, 0.0);
}

}  // namespace
}  // namespace spsta::netlist
