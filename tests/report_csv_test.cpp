// Tests for the CSV exporters.

#include "report/csv.hpp"

#include <charconv>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::report {
namespace {

TEST(Csv, DensitySeriesHeaderAndRows) {
  const std::vector<std::string> names{"a", "b"};
  const std::vector<stats::PiecewiseDensity> densities{
      stats::PiecewiseDensity({0.0, 0.5, 3}, {1.0, 2.0, 1.0}),
      stats::PiecewiseDensity({0.0, 0.5, 3}, {0.0, 1.0, 0.0})};
  const std::string csv = density_csv(names, densities);
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,0");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,2,1");
  std::getline(in, line);
  EXPECT_EQ(line, "1,1,0");
}

TEST(Csv, DensityMismatchThrows) {
  const std::vector<std::string> names{"a"};
  const std::vector<stats::PiecewiseDensity> densities;
  std::ostringstream out;
  EXPECT_THROW(write_density_csv(out, names, densities), std::invalid_argument);
}

TEST(Csv, YieldCurve) {
  const std::vector<core::YieldPoint> curve{{1.0, 0.5}, {2.0, 0.9}};
  std::ostringstream out;
  write_yield_csv(out, curve);
  EXPECT_EQ(out.str(), "period,yield\n1,0.5\n2,0.9\n");
}

TEST(Csv, FieldQuotingFollowsRfc4180) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field(""), "");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_field("cr\rlf"), "\"cr\rlf\"");
}

TEST(Csv, NumbersRoundTripAndNonFiniteAreNamed) {
  // Shortest round-trip: parsing the field back recovers the exact bits.
  for (const double v : {0.1, 1.0 / 3.0, 2.5e-10, 1e300, -17.25, 5e-324}) {
    const std::string text = csv_number(v);
    double back = 0.0;
    std::from_chars(text.data(), text.data() + text.size(), back);
    EXPECT_EQ(back, v) << text;
  }
  EXPECT_EQ(csv_number(0.0), "0");
  EXPECT_EQ(csv_number(0.5), "0.5");
  EXPECT_EQ(csv_number(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(csv_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(csv_number(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Csv, HostileNodeNamesStayOneFieldPerColumn) {
  // Verilog escaped identifiers can contain commas and quotes; the name
  // column must quote them so every row still splits into 3 fields.
  const std::vector<std::string> names{"a,b", "q\"uote"};
  const std::vector<stats::PiecewiseDensity> densities{
      stats::PiecewiseDensity({0.0, 0.5, 2}, {1.0, 2.0}),
      stats::PiecewiseDensity({0.0, 0.5, 2}, {0.0, 1.0})};
  const std::string csv = density_csv(names, densities);
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,\"a,b\",\"q\"\"uote\"");
}

TEST(Csv, NodeSummaryCoversAllNodes) {
  const netlist::Netlist n = netlist::make_s27();
  const core::SpstaNumericResult r = core::run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  std::ostringstream out;
  write_node_summary_csv(out, n, r);
  std::size_t lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, n.node_count() + 1);  // header + one per node
  EXPECT_NE(out.str().find("G17"), std::string::npos);
}

}  // namespace
}  // namespace spsta::report
