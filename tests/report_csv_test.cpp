// Tests for the CSV exporters.

#include "report/csv.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::report {
namespace {

TEST(Csv, DensitySeriesHeaderAndRows) {
  const std::vector<std::string> names{"a", "b"};
  const std::vector<stats::PiecewiseDensity> densities{
      stats::PiecewiseDensity({0.0, 0.5, 3}, {1.0, 2.0, 1.0}),
      stats::PiecewiseDensity({0.0, 0.5, 3}, {0.0, 1.0, 0.0})};
  const std::string csv = density_csv(names, densities);
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,0");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,2,1");
  std::getline(in, line);
  EXPECT_EQ(line, "1,1,0");
}

TEST(Csv, DensityMismatchThrows) {
  const std::vector<std::string> names{"a"};
  const std::vector<stats::PiecewiseDensity> densities;
  std::ostringstream out;
  EXPECT_THROW(write_density_csv(out, names, densities), std::invalid_argument);
}

TEST(Csv, YieldCurve) {
  const std::vector<core::YieldPoint> curve{{1.0, 0.5}, {2.0, 0.9}};
  std::ostringstream out;
  write_yield_csv(out, curve);
  EXPECT_EQ(out.str(), "period,yield\n1,0.5\n2,0.9\n");
}

TEST(Csv, NodeSummaryCoversAllNodes) {
  const netlist::Netlist n = netlist::make_s27();
  const core::SpstaNumericResult r = core::run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  std::ostringstream out;
  write_node_summary_csv(out, n, r);
  std::size_t lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, n.node_count() + 1);  // header + one per node
  EXPECT_NE(out.str().find("G17"), std::string::npos);
}

}  // namespace
}  // namespace spsta::report
