// Tests for the textual path reports.

#include "report/path_report.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::report {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist chain() {
  Netlist n("chain");
  NodeId prev = n.add_input("a");
  prev = n.add_gate(GateType::Nand, "g1", {prev, prev});
  prev = n.add_gate(GateType::Not, "g2", {prev});
  n.mark_output(prev);
  return n;
}

TEST(PathReport, StaBreakdownAndSlack) {
  const Netlist n = chain();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const netlist::Path p = netlist::critical_path_to(n, n.find("g2"), d.means());
  const std::string rpt = sta_path_report(n, d, p, 5.0);
  EXPECT_NE(rpt.find("a (INPUT)"), std::string::npos);
  EXPECT_NE(rpt.find("g1 (NAND)"), std::string::npos);
  EXPECT_NE(rpt.find("g2 (NOT)"), std::string::npos);
  EXPECT_NE(rpt.find("data arrival time   2.00"), std::string::npos);
  EXPECT_NE(rpt.find("slack               3.00  (MET)"), std::string::npos);
}

TEST(PathReport, ViolationMarked) {
  const Netlist n = chain();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const netlist::Path p = netlist::critical_path_to(n, n.find("g2"), d.means());
  const std::string rpt = sta_path_report(n, d, p, 1.0);
  EXPECT_NE(rpt.find("(VIOLATED)"), std::string::npos);
}

TEST(PathReport, StatisticalColumnsPresent) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const ssta::SstaResult ssta_result = ssta::run_ssta(n, d, sc);
  const core::SpstaResult spsta = core::run_spsta_moment(n, d, sc);
  const netlist::Path p =
      netlist::critical_path_to(n, n.timing_endpoints().front(), d.means());

  const std::string rpt = statistical_path_report(n, p, ssta_result, spsta);
  EXPECT_NE(rpt.find("SSTA rise mu"), std::string::npos);
  EXPECT_NE(rpt.find("SPSTA P(r)"), std::string::npos);
  // One row per path node plus header/underline.
  std::size_t lines = 0;
  for (char c : rpt) lines += c == '\n';
  EXPECT_EQ(lines, p.nodes.size() + 2);
}

TEST(PathReport, CriticalPathConvenience) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const std::string rpt =
      critical_path_report(n, netlist::DelayModel::unit(n), 10.0);
  EXPECT_NE(rpt.find("critical path to"), std::string::npos);
  EXPECT_NE(rpt.find("slack"), std::string::npos);
}

TEST(PathReport, EmptyDesign) {
  Netlist n;
  EXPECT_EQ(critical_path_report(n, netlist::DelayModel(n), 1.0),
            "no timing endpoints\n");
}

}  // namespace
}  // namespace spsta::report
