// Tests for block-based SSTA node criticality (tightness cascade).

#include "ssta/node_criticality.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"

namespace spsta::ssta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(NodeCriticality, ChainIsFullyCritical) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  n.mark_output(prev);
  const NodeCriticality r = compute_node_criticality(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(r.criticality[id], 1.0, 1e-9) << n.node(id).name;
  }
  EXPECT_NEAR(r.endpoint_criticality[prev], 1.0, 1e-9);
}

TEST(NodeCriticality, DominantBranchTakesTheCredit) {
  // Long branch dominates the AND's rise merge: its nodes carry ~all the
  // criticality, the short branch almost none.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId s1 = n.add_gate(GateType::Buf, "s1", {b});
  NodeId chain = a;
  for (int i = 0; i < 5; ++i) {
    chain = n.add_gate(GateType::Buf, "c" + std::to_string(i), {chain});
  }
  const NodeId y = n.add_gate(GateType::And, "y", {s1, chain});
  n.mark_output(y);

  const NodeCriticality r = compute_node_criticality(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  EXPECT_NEAR(r.criticality[y], 1.0, 1e-9);
  EXPECT_GT(r.criticality[chain], 0.95);
  EXPECT_LT(r.criticality[s1], 0.05);
  // The split is conserved at the merge.
  EXPECT_NEAR(r.criticality[chain] + r.criticality[s1], 1.0, 1e-9);
}

TEST(NodeCriticality, BalancedMergeSplitsEvenly) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId p1 = n.add_gate(GateType::Buf, "p1", {a});
  const NodeId p2 = n.add_gate(GateType::Buf, "p2", {b});
  const NodeId y = n.add_gate(GateType::And, "y", {p1, p2});
  n.mark_output(y);
  const NodeCriticality r = compute_node_criticality(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  EXPECT_NEAR(r.criticality[p1], 0.5, 1e-9);
  EXPECT_NEAR(r.criticality[p2], 0.5, 1e-9);
}

TEST(NodeCriticality, EndpointSeedsSumToOne) {
  const Netlist n = netlist::make_paper_circuit("s344");
  const NodeCriticality r = compute_node_criticality(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  double total = 0.0;
  for (NodeId ep : n.timing_endpoints()) total += r.endpoint_criticality[ep];
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_GE(r.criticality[id], 0.0);
    EXPECT_LE(r.criticality[id], 1.0 + 1e-9);
  }
}

TEST(NodeCriticality, InverterCrossesLanes) {
  // Through a NOT, the output's rise criticality lands on the fanin (its
  // fall lane) — same scalar per node, but the flow must not be lost.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  const NodeId buf = n.add_gate(GateType::Buf, "out", {inv});
  n.mark_output(buf);
  const NodeCriticality r = compute_node_criticality(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  EXPECT_NEAR(r.criticality[a], 1.0, 1e-9);
  EXPECT_NEAR(r.criticality[inv], 1.0, 1e-9);
}

TEST(NodeCriticality, SourceCriticalitiesConserveEndpointMass) {
  // Total criticality over timing sources equals 1 (every critical path
  // starts at some source) on any single-endpoint circuit.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId y = n.add_gate(GateType::Nor, "y", {g1, c});
  n.mark_output(y);
  const NodeCriticality r = compute_node_criticality(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  EXPECT_NEAR(r.criticality[a] + r.criticality[b] + r.criticality[c], 1.0, 1e-9);
}

}  // namespace
}  // namespace spsta::ssta
