// Tests for glitch-rate estimation: edge rate minus settled rate, checked
// against the Monte Carlo raw/filtered split.

#include "power/glitch.hpp"

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::power {
namespace {

using netlist::FourValueProbs;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Glitch, NoGlitchesOnBufferChain) {
  // Single-input gates can't generate glitches.
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = n.add_gate(i % 2 ? GateType::Not : GateType::Buf, "g" + std::to_string(i),
                      {prev});
  }
  const std::vector<FourValueProbs> src{netlist::scenario_I().probs};
  const GlitchEstimate g = estimate_glitches(n, src);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(g.glitch_rate[id], 0.0, 1e-9) << n.node(id).name;
  }
  EXPECT_NEAR(g.glitch_fraction(), 0.0, 1e-9);
}

TEST(Glitch, OpposingTransitionsGlitchAnAndGate) {
  // Inputs that always switch in opposite directions: every edge pair is
  // filtered, so the whole edge rate at the AND is glitch.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});

  const FourValueProbs always_switch{0.0, 0.0, 0.5, 0.5};
  const std::vector<FourValueProbs> src{always_switch};
  const GlitchEstimate g = estimate_glitches(n, src);
  // Settled transitions need both inputs moving the same direction AND
  // compatible statics; here Pr(y) = 0.25 (both rise), Pf(y) = 0.25.
  EXPECT_NEAR(g.settled_rate[y], 0.5, 1e-9);
  EXPECT_GT(g.glitch_rate[y], 0.2);  // density predicts ~1 edge/cycle
  EXPECT_GT(g.glitch_fraction(), 0.0);
}

TEST(Glitch, MatchesMonteCarloRawMinusFiltered) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const netlist::SourceStats sc = netlist::scenario_I();
  const GlitchEstimate g = estimate_glitches(n, std::vector{sc.probs});

  mc::MonteCarloConfig cfg;
  cfg.runs = 5000;
  cfg.seed = 8;
  const auto mcr =
      mc::run_monte_carlo(n, netlist::DelayModel::unit(n), std::vector{sc}, cfg);

  double est_glitch = 0.0, mc_glitch = 0.0;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (!netlist::is_combinational(n.node(id).type)) continue;
    est_glitch += g.glitch_rate[id];
    mc_glitch += std::max(0.0, mcr.node[id].raw_edge_rate() -
                                   mcr.node[id].probs().toggle_probability());
  }
  // The density model over-propagates unfiltered edges downstream, so the
  // estimate brackets MC from above within a modest factor.
  EXPECT_GT(est_glitch, 0.5 * mc_glitch);
  EXPECT_LT(est_glitch, 4.0 * mc_glitch + 1.0);
}

TEST(Glitch, TotalsAreConsistent) {
  const Netlist n = netlist::make_s27();
  const GlitchEstimate g = estimate_glitches(n, std::vector{netlist::scenario_I().probs});
  double sum = 0.0;
  for (double x : g.glitch_rate) sum += x;
  EXPECT_NEAR(g.total_glitch_rate(), sum, 1e-12);
  EXPECT_GE(g.glitch_fraction(), 0.0);
  EXPECT_LE(g.glitch_fraction(), 1.0);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_GE(g.glitch_rate[id], 0.0);
  }
}

}  // namespace
}  // namespace spsta::power
