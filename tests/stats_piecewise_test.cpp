// Tests for piecewise-linear densities — the numeric t.o.p. representation.
// Every operation is validated against Gaussian closed forms or sampling.

#include "stats/piecewise.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stats/normal.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::stats {
namespace {

PiecewiseDensity std_normal(std::size_t points = 801) {
  return PiecewiseDensity::from_gaussian_auto({0.0, 1.0}, 8.0, points);
}

TEST(Piecewise, GaussianDiscretizationMoments) {
  const PiecewiseDensity d = PiecewiseDensity::from_gaussian_auto({3.0, 4.0});
  EXPECT_NEAR(d.mass(), 1.0, 1e-6);
  EXPECT_NEAR(d.mean(), 3.0, 1e-6);
  EXPECT_NEAR(d.variance(), 4.0, 1e-4);
}

TEST(Piecewise, MassScalesWithParameter) {
  const PiecewiseDensity d = PiecewiseDensity::from_gaussian_auto({0.0, 1.0}, 8.0, 801, 0.37);
  EXPECT_NEAR(d.mass(), 0.37, 1e-6);
  EXPECT_NEAR(d.mean(), 0.0, 1e-9);  // conditional moments unchanged
}

TEST(Piecewise, ValueAtInterpolatesAndVanishesOutside) {
  const PiecewiseDensity d = std_normal();
  EXPECT_NEAR(d.value_at(0.0), normal_pdf(0.0), 1e-4);
  EXPECT_NEAR(d.value_at(1.0), normal_pdf(1.0), 1e-4);
  EXPECT_EQ(d.value_at(100.0), 0.0);
  EXPECT_EQ(d.value_at(-100.0), 0.0);
}

TEST(Piecewise, CdfMatchesNormalCdf) {
  const PiecewiseDensity d = std_normal();
  for (double t : {-2.0, -1.0, 0.0, 0.5, 1.5, 3.0}) {
    EXPECT_NEAR(d.cdf_at(t), normal_cdf(t), 1e-4) << "t=" << t;
  }
}

TEST(Piecewise, CumulativeEndsAtMass) {
  const PiecewiseDensity d = PiecewiseDensity::from_gaussian_auto({1.0, 2.0}, 8.0, 401, 0.6);
  const std::vector<double> c = d.cumulative();
  EXPECT_NEAR(c.back(), d.mass(), 1e-12);
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
}

TEST(Piecewise, ShiftMovesMeanOnly) {
  const PiecewiseDensity d = std_normal().shifted(2.5);
  EXPECT_NEAR(d.mean(), 2.5, 1e-6);
  EXPECT_NEAR(d.variance(), 1.0, 1e-4);
  EXPECT_NEAR(d.mass(), 1.0, 1e-6);
}

TEST(Piecewise, ScaleAndNormalize) {
  const PiecewiseDensity d = std_normal().scaled(0.25);
  EXPECT_NEAR(d.mass(), 0.25, 1e-6);
  EXPECT_NEAR(d.normalized().mass(), 1.0, 1e-9);
  // Zero density normalizes to itself without NaNs.
  const PiecewiseDensity z = PiecewiseDensity::zero({0.0, 0.1, 32});
  EXPECT_EQ(z.normalized().mass(), 0.0);
}

TEST(Piecewise, ResamplePreservesMoments) {
  const PiecewiseDensity d = std_normal();
  const PiecewiseDensity r = d.resampled({-8.0, 0.05, 321});
  EXPECT_NEAR(r.mass(), 1.0, 1e-3);
  EXPECT_NEAR(r.mean(), 0.0, 1e-3);
  EXPECT_NEAR(r.variance(), 1.0, 5e-3);
}

TEST(Piecewise, AddScaledCombinesMasses) {
  PiecewiseDensity a = PiecewiseDensity::from_gaussian_auto({0.0, 1.0}, 8.0, 801, 0.5);
  const PiecewiseDensity b = PiecewiseDensity::from_gaussian_auto({4.0, 1.0}, 8.0, 801, 1.0);
  a.add_scaled(b, 0.25);
  EXPECT_NEAR(a.mass(), 0.75, 1e-3);
  // Mixture mean: (0.5*0 + 0.25*4) / 0.75.
  EXPECT_NEAR(a.mean(), 4.0 / 3.0, 5e-3);
}

TEST(Piecewise, ConvolveTwoGaussians) {
  const PiecewiseDensity a = PiecewiseDensity::from_gaussian_auto({1.0, 1.0}, 8.0, 601);
  const PiecewiseDensity b = PiecewiseDensity::from_gaussian_auto({2.0, 0.5}, 8.0, 601);
  const PiecewiseDensity c = PiecewiseDensity::convolve(a, b);
  EXPECT_NEAR(c.mass(), 1.0, 2e-3);
  EXPECT_NEAR(c.mean(), 3.0, 1e-2);
  EXPECT_NEAR(c.variance(), 1.5, 2e-2);
}

TEST(Piecewise, ConvolveGaussianAnalyticKernel) {
  const PiecewiseDensity a = PiecewiseDensity::from_gaussian_auto({0.0, 1.0}, 8.0, 601);
  const PiecewiseDensity c = PiecewiseDensity::convolve_gaussian(a, {5.0, 2.0});
  EXPECT_NEAR(c.mass(), 1.0, 2e-3);
  EXPECT_NEAR(c.mean(), 5.0, 1e-2);
  EXPECT_NEAR(c.variance(), 3.0, 3e-2);
}

TEST(Piecewise, ConvolveGaussianZeroVarianceIsShift) {
  const PiecewiseDensity a = std_normal();
  const PiecewiseDensity c = PiecewiseDensity::convolve_gaussian(a, {1.0, 0.0});
  EXPECT_NEAR(c.mean(), 1.0, 1e-6);
  EXPECT_NEAR(c.variance(), 1.0, 1e-4);
}

TEST(Piecewise, MaxOfIidStandardNormals) {
  // Known closed form: mean 1/sqrt(pi), var 1 - 1/pi.
  const PiecewiseDensity a = std_normal();
  const PiecewiseDensity m = PiecewiseDensity::max_independent(a, a);
  EXPECT_NEAR(m.mass(), 1.0, 1e-3);
  EXPECT_NEAR(m.mean(), 1.0 / std::sqrt(M_PI), 2e-3);
  EXPECT_NEAR(m.variance(), 1.0 - 1.0 / M_PI, 5e-3);
}

TEST(Piecewise, MinOfIidStandardNormals) {
  const PiecewiseDensity a = std_normal();
  const PiecewiseDensity m = PiecewiseDensity::min_independent(a, a);
  EXPECT_NEAR(m.mean(), -1.0 / std::sqrt(M_PI), 2e-3);
  EXPECT_NEAR(m.variance(), 1.0 - 1.0 / M_PI, 5e-3);
}

TEST(Piecewise, MaxAgainstSampling) {
  const PiecewiseDensity a = PiecewiseDensity::from_gaussian_auto({0.0, 1.0}, 8.0, 801);
  const PiecewiseDensity b = PiecewiseDensity::from_gaussian_auto({1.0, 4.0}, 8.0, 801);
  const PiecewiseDensity m = PiecewiseDensity::max_independent(a, b);

  Xoshiro256 rng(21);
  RunningMoments mom;
  for (int i = 0; i < 300000; ++i) {
    mom.add(std::max(rng.normal(0.0, 1.0), rng.normal(1.0, 2.0)));
  }
  EXPECT_NEAR(m.mean(), mom.mean(), 0.01);
  EXPECT_NEAR(m.stddev(), mom.stddev(), 0.01);
}

TEST(Piecewise, MaxIsNonSymmetricForEqualMeans) {
  // The paper's Fig. 4 point: MAX of symmetric distributions is skewed.
  const PiecewiseDensity a = std_normal();
  const PiecewiseDensity m = PiecewiseDensity::max_independent(a, a);
  const double mode_region = m.value_at(m.mean());
  EXPECT_GT(m.mean(), 0.0);
  EXPECT_NE(m.value_at(m.mean() - 1.0), m.value_at(m.mean() + 1.0));
  EXPECT_GT(mode_region, 0.0);
}

TEST(Piecewise, SkewnessOfSymmetricDensityIsZero) {
  EXPECT_NEAR(std_normal().skewness(), 0.0, 1e-6);
  const PiecewiseDensity z = PiecewiseDensity::zero({0.0, 0.1, 16});
  EXPECT_EQ(z.skewness(), 0.0);
}

TEST(Piecewise, SkewnessOfMaxMatchesSampling) {
  const PiecewiseDensity a = std_normal();
  const PiecewiseDensity m = PiecewiseDensity::max_independent(a, a);

  Xoshiro256 rng(55);
  RunningMoments mom;
  for (int i = 0; i < 400000; ++i) mom.add(std::max(rng.normal(), rng.normal()));
  EXPECT_GT(m.skewness(), 0.05);  // MAX of symmetric inputs skews right
  EXPECT_NEAR(m.skewness(), mom.skewness(), 0.02);
}

TEST(Piecewise, UnionGridCoversBoth) {
  const GridSpec a{0.0, 0.1, 11};   // [0, 1]
  const GridSpec b{-1.0, 0.2, 6};   // [-1, 0]
  const GridSpec u = union_grid(a, b);
  EXPECT_DOUBLE_EQ(u.t0, -1.0);
  EXPECT_LE(u.dt, 0.1);
  EXPECT_GE(u.t_end(), 1.0 - 1e-12);
}

TEST(Piecewise, ConstructorRejectsSizeMismatch) {
  EXPECT_THROW(PiecewiseDensity({0.0, 0.1, 5}, std::vector<double>(4, 0.0)),
               std::invalid_argument);
}

TEST(Piecewise, NegativeSamplesClampToZero) {
  const PiecewiseDensity d({0.0, 1.0, 3}, {-1.0, 2.0, -0.5});
  EXPECT_EQ(d.values()[0], 0.0);
  EXPECT_EQ(d.values()[2], 0.0);
  EXPECT_EQ(d.values()[1], 2.0);
}

}  // namespace
}  // namespace spsta::stats
