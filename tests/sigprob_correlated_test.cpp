// Tests for the first-order correlation-aware signal probability engine
// (paper Sec. 3.5): identities like Eq. 15, and the accuracy ordering
//   independent <= correlated <= exact    on reconvergent logic.

#include "sigprob/correlated.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "sigprob/exact_bdd.hpp"
#include "sigprob/signal_prob.hpp"

namespace spsta::sigprob {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Correlated, MatchesIndependentOnTrees) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Nor, "g2", {g1, c});
  n.mark_output(g2);

  const std::vector<double> src{0.3, 0.6, 0.8};
  const auto corr = propagate_correlated(n, src);
  const auto indep = propagate_signal_probabilities(n, src);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(corr.probability(id), indep[id], 1e-12) << n.node(id).name;
  }
}

TEST(Correlated, Eq15ConjunctionOfIdenticalSignals) {
  // y = a AND a must give P(y) = P(a): cov(a,a) = p(1-p) makes Eq. 15
  // exact where the independent engine would return p^2.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId y = n.add_gate(GateType::And, "y", {a, a});
  const std::vector<double> src{0.3};
  const auto corr = propagate_correlated(n, src);
  EXPECT_NEAR(corr.probability(y), 0.3, 1e-12);
  const auto indep = propagate_signal_probabilities(n, src);
  EXPECT_NEAR(indep[y], 0.09, 1e-12);  // what independence would claim
}

TEST(Correlated, ContradictionIsZero) {
  // y = a AND NOT a == 0: the correlation term cancels exactly.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  const NodeId y = n.add_gate(GateType::And, "y", {a, inv});
  const auto corr = propagate_correlated(n, std::vector<double>{0.5});
  EXPECT_NEAR(corr.probability(y), 0.0, 1e-12);
  EXPECT_NEAR(corr.probability(inv), 0.5, 1e-12);
}

TEST(Correlated, TautologyIsOne) {
  // y = a OR NOT a == 1.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  const NodeId y = n.add_gate(GateType::Or, "y", {a, inv});
  const auto corr = propagate_correlated(n, std::vector<double>{0.3});
  EXPECT_NEAR(corr.probability(y), 1.0, 1e-12);
}

TEST(Correlated, XorOfIdenticalSignalsIsZero) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId y = n.add_gate(GateType::Xor, "y", {a, a});
  const auto corr = propagate_correlated(n, std::vector<double>{0.7});
  EXPECT_NEAR(corr.probability(y), 0.0, 1e-12);
}

TEST(Correlated, FanoutBranchesFullyCorrelated) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Buf, "b2", {a});
  const auto corr = propagate_correlated(n, std::vector<double>{0.4});
  EXPECT_NEAR(corr.correlation(b1, b2), 1.0, 1e-12);
  EXPECT_NEAR(corr.covariance(b1, b2), 0.4 * 0.6, 1e-12);
}

TEST(Correlated, InverterBranchesAntiCorrelated) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Not, "b2", {a});
  const auto corr = propagate_correlated(n, std::vector<double>{0.4});
  EXPECT_NEAR(corr.correlation(b1, b2), -1.0, 1e-12);
}

TEST(Correlated, ImprovesOverIndependentOnS27) {
  const Netlist n = netlist::make_s27();
  const std::vector<double> src{0.5};
  const auto indep = propagate_signal_probabilities(n, src);
  const auto corr = propagate_correlated(n, src);
  const auto exact = exact_signal_probabilities(n, src);

  double err_indep = 0.0, err_corr = 0.0;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    ASSERT_TRUE(exact.probability[id].has_value());
    err_indep += std::abs(indep[id] - *exact.probability[id]);
    err_corr += std::abs(corr.probability(id) - *exact.probability[id]);
  }
  EXPECT_LE(err_corr, err_indep + 1e-9)
      << "correlated engine should not be worse than independent overall";
}

TEST(Correlated, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW((void)propagate_correlated(n, std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::sigprob
