// Tests for the block-based SSTA baseline: operation selection per gate
// and direction, propagation identities, and agreement with Monte Carlo
// in the always-switching regime where SSTA's assumption holds.

#include "ssta/ssta.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::ssta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using stats::Gaussian;

TEST(ArrivalOp, MatchesTable1Semantics) {
  // AND: rise -> MAX, fall -> MIN.
  EXPECT_EQ(arrival_op(GateType::And, true), ArrivalOp::Max);
  EXPECT_EQ(arrival_op(GateType::And, false), ArrivalOp::Min);
  // OR: rise -> MIN, fall -> MAX.
  EXPECT_EQ(arrival_op(GateType::Or, true), ArrivalOp::Min);
  EXPECT_EQ(arrival_op(GateType::Or, false), ArrivalOp::Max);
  // NAND: output rise comes from the first input fall -> MIN; fall from
  // the last rise -> MAX.
  EXPECT_EQ(arrival_op(GateType::Nand, true), ArrivalOp::Min);
  EXPECT_EQ(arrival_op(GateType::Nand, false), ArrivalOp::Max);
  // NOR: rise needs all inputs to fall -> MAX; fall from first rise -> MIN.
  EXPECT_EQ(arrival_op(GateType::Nor, true), ArrivalOp::Max);
  EXPECT_EQ(arrival_op(GateType::Nor, false), ArrivalOp::Min);
}

TEST(ArrivalOp, InputDirectionInversion) {
  EXPECT_FALSE(inputs_inverted(GateType::And));
  EXPECT_FALSE(inputs_inverted(GateType::Or));
  EXPECT_TRUE(inputs_inverted(GateType::Nand));
  EXPECT_TRUE(inputs_inverted(GateType::Nor));
  EXPECT_TRUE(inputs_inverted(GateType::Not));
}

TEST(Ssta, BufferChainSumsDelays) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  const netlist::SourceStats sc = netlist::scenario_I();
  const SstaResult r =
      run_ssta(n, netlist::DelayModel::unit(n), std::vector{sc});
  EXPECT_NEAR(r.arrival[prev].rise.mean, 3.0, 1e-12);
  EXPECT_NEAR(r.arrival[prev].rise.var, 1.0, 1e-12);  // source variance only
}

TEST(Ssta, InverterSwapsRiseAndFall) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  netlist::SourceStats sc;
  sc.rise_arrival = {1.0, 0.5};
  sc.fall_arrival = {2.0, 0.25};
  const SstaResult r = run_ssta(n, netlist::DelayModel::unit(n), std::vector{sc});
  // Output rise comes from input fall (+1 delay).
  EXPECT_NEAR(r.arrival[inv].rise.mean, 3.0, 1e-12);
  EXPECT_NEAR(r.arrival[inv].rise.var, 0.25, 1e-12);
  EXPECT_NEAR(r.arrival[inv].fall.mean, 2.0, 1e-12);
  EXPECT_NEAR(r.arrival[inv].fall.var, 0.5, 1e-12);
}

TEST(Ssta, AndGateAppliesClark) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  const netlist::SourceStats sc = netlist::scenario_I();  // N(0,1) arrivals
  const SstaResult r = run_ssta(n, netlist::DelayModel::unit(n), std::vector{sc});
  const stats::ClarkResult expected_rise = stats::clark_max({0.0, 1.0}, {0.0, 1.0});
  const stats::ClarkResult expected_fall = stats::clark_min({0.0, 1.0}, {0.0, 1.0});
  EXPECT_NEAR(r.arrival[y].rise.mean, expected_rise.moments.mean + 1.0, 1e-12);
  EXPECT_NEAR(r.arrival[y].rise.var, expected_rise.moments.var, 1e-12);
  EXPECT_NEAR(r.arrival[y].fall.mean, expected_fall.moments.mean + 1.0, 1e-12);
}

TEST(Ssta, MinMaxShrinksVariance) {
  // The paper's observation 3: repeated MIN/MAX shrinks sigma below the
  // inputs' sigma.
  const Netlist n = netlist::make_paper_circuit("s344");
  const netlist::SourceStats sc = netlist::scenario_I();
  const SstaResult r = run_ssta(n, netlist::DelayModel::unit(n), std::vector{sc});
  double max_mean = -1e300;
  NodeId deepest = netlist::kInvalidNode;
  for (NodeId ep : n.timing_endpoints()) {
    if (r.arrival[ep].rise.mean > max_mean) {
      max_mean = r.arrival[ep].rise.mean;
      deepest = ep;
    }
  }
  ASSERT_NE(deepest, netlist::kInvalidNode);
  EXPECT_LT(r.arrival[deepest].rise.stddev(), 1.0);  // below source sigma
}

TEST(Ssta, MatchesMonteCarloWhenAlwaysSwitching) {
  // With every source always rising, AND-tree SSTA is the exact MAX
  // recursion that the MC simulator realizes.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId d = n.add_input("d");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::And, "g2", {c, d});
  const NodeId g3 = n.add_gate(GateType::And, "g3", {g1, g2});
  n.mark_output(g3);

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};  // always rise
  const SstaResult r = run_ssta(n, netlist::DelayModel::unit(n), std::vector{sc});

  mc::MonteCarloConfig cfg;
  cfg.runs = 60000;
  cfg.seed = 17;
  const auto mcr =
      mc::run_monte_carlo(n, netlist::DelayModel::unit(n), std::vector{sc}, cfg);
  EXPECT_NEAR(r.arrival[g3].rise.mean, mcr.node[g3].rise_time.mean(), 0.02);
  EXPECT_NEAR(r.arrival[g3].rise.stddev(), mcr.node[g3].rise_time.stddev(), 0.02);
}

TEST(Ssta, IgnoresInputProbabilities) {
  // The baseline is input-statistics-oblivious: scenarios I and II give
  // identical SSTA results (the paper's observation 1).
  const Netlist n = netlist::make_paper_circuit("s386");
  const SstaResult r1 =
      run_ssta(n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  const SstaResult r2 =
      run_ssta(n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_II()});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_EQ(r1.arrival[id].rise, r2.arrival[id].rise);
    EXPECT_EQ(r1.arrival[id].fall, r2.arrival[id].fall);
  }
}

TEST(Ssta, SourceMismatchThrows) {
  const Netlist n = netlist::make_s27();
  EXPECT_THROW(
      (void)run_ssta(n, netlist::DelayModel::unit(n), std::vector<netlist::SourceStats>(3)),
      std::invalid_argument);
}

}  // namespace
}  // namespace spsta::ssta
