// CompiledDesign contract: the compiled overload of every engine is
// bit-identical to the legacy compile-per-call overload, the plan's
// precomputed structure reproduces what the engines used to derive per
// run, one plan is safe to share across threads, and the content hash
// tracks exactly the (netlist, delay model) inputs. Every comparison is
// exact double equality — same contract as determinism_test.cpp.

#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_design.hpp"
#include "core/spsta.hpp"
#include "core/spsta_canonical.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/generator.hpp"
#include "netlist/graph.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "ssta/path_ssta.hpp"
#include "ssta/ssta.hpp"
#include "ssta/sta.hpp"

namespace spsta {
namespace {

using netlist::NodeId;

/// Same generated circuit the determinism suite uses: reconvergent
/// fanout, depth 8, enough gates for multi-level dispatch.
netlist::Netlist test_circuit(std::uint64_t seed = 42) {
  netlist::GeneratorSpec spec;
  spec.name = "plan";
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 120;
  spec.target_depth = 8;
  spec.seed = seed;
  return netlist::generate_circuit(spec);
}

void expect_same_moment(const core::SpstaResult& a, const core::SpstaResult& b) {
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t id = 0; id < a.node.size(); ++id) {
    ASSERT_EQ(a.node[id].probs.p0, b.node[id].probs.p0);
    ASSERT_EQ(a.node[id].probs.p1, b.node[id].probs.p1);
    ASSERT_EQ(a.node[id].probs.pr, b.node[id].probs.pr);
    ASSERT_EQ(a.node[id].probs.pf, b.node[id].probs.pf);
    for (const auto dir : {&core::NodeTop::rise, &core::NodeTop::fall}) {
      const core::TransitionTop& ta = a.node[id].*dir;
      const core::TransitionTop& tb = b.node[id].*dir;
      ASSERT_EQ(ta.mass, tb.mass);
      ASSERT_EQ(ta.arrival.mean, tb.arrival.mean);
      ASSERT_EQ(ta.arrival.var, tb.arrival.var);
      ASSERT_EQ(ta.third_central, tb.third_central);
    }
  }
}

void expect_same_numeric(const core::SpstaNumericResult& a,
                         const core::SpstaNumericResult& b) {
  ASSERT_EQ(a.grid, b.grid);
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t id = 0; id < a.node.size(); ++id) {
    ASSERT_EQ(a.node[id].probs.p0, b.node[id].probs.p0);
    ASSERT_EQ(a.node[id].probs.pr, b.node[id].probs.pr);
    const std::vector<double> ar(a.node[id].rise.values().begin(),
                                 a.node[id].rise.values().end());
    const std::vector<double> br(b.node[id].rise.values().begin(),
                                 b.node[id].rise.values().end());
    ASSERT_EQ(ar, br);
    const std::vector<double> af(a.node[id].fall.values().begin(),
                                 a.node[id].fall.values().end());
    const std::vector<double> bf(b.node[id].fall.values().begin(),
                                 b.node[id].fall.values().end());
    ASSERT_EQ(af, bf);
  }
}

// The compiled overload of every engine must equal its legacy
// compile-per-call overload bit for bit — warm structural reuse is an
// optimization, never a result change.
TEST(CompiledDesign, CompiledOverloadsMatchLegacyBitForBit) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};
  const core::CompiledDesign plan(n, d);

  expect_same_moment(core::run_spsta_moment(plan, sources),
                     core::run_spsta_moment(n, d, sources));
  expect_same_numeric(core::run_spsta_numeric(plan, sources),
                      core::run_spsta_numeric(n, d, sources));

  const core::SpstaCanonicalResult ca = core::run_spsta_canonical(plan, sources);
  const core::SpstaCanonicalResult cb = core::run_spsta_canonical(n, d, sources);
  ASSERT_EQ(ca.num_params, cb.num_params);
  ASSERT_EQ(ca.node.size(), cb.node.size());
  for (std::size_t id = 0; id < ca.node.size(); ++id) {
    for (const auto dir :
         {&core::NodeCanonicalTop::rise, &core::NodeCanonicalTop::fall}) {
      const core::CanonicalTop& ta = ca.node[id].*dir;
      const core::CanonicalTop& tb = cb.node[id].*dir;
      ASSERT_EQ(ta.mass, tb.mass);
      ASSERT_EQ(ta.arrival.nominal(), tb.arrival.nominal());
      ASSERT_EQ(ta.arrival.residual(), tb.arrival.residual());
      for (std::size_t p = 0; p < ca.num_params; ++p) {
        ASSERT_EQ(ta.arrival.sensitivity(p), tb.arrival.sensitivity(p));
      }
    }
  }

  const ssta::SstaResult sa = ssta::run_ssta(plan, sources);
  const ssta::SstaResult sb = ssta::run_ssta(n, d, sources);
  ASSERT_EQ(sa.arrival.size(), sb.arrival.size());
  for (std::size_t id = 0; id < sa.arrival.size(); ++id) {
    ASSERT_EQ(sa.arrival[id].rise.mean, sb.arrival[id].rise.mean);
    ASSERT_EQ(sa.arrival[id].rise.var, sb.arrival[id].rise.var);
    ASSERT_EQ(sa.arrival[id].fall.mean, sb.arrival[id].fall.mean);
    ASSERT_EQ(sa.arrival[id].fall.var, sb.arrival[id].fall.var);
  }

  ssta::StaConfig sta_cfg;
  sta_cfg.k_sigma = 3.0;
  const ssta::StaResult ta = ssta::run_sta(plan, 10.0, sta_cfg);
  const ssta::StaResult tb = ssta::run_sta(n, d, 10.0, sta_cfg);
  ASSERT_EQ(ta.slack, tb.slack);
  ASSERT_EQ(ta.wns, tb.wns);
  ASSERT_EQ(ta.tns, tb.tns);
  ASSERT_EQ(ta.critical_delay, tb.critical_delay);
  ASSERT_EQ(ta.shortest_delay, tb.shortest_delay);

  const stats::Gaussian arrival{0.0, 1.0};
  const ssta::PathSstaResult pa = ssta::run_path_ssta(plan, arrival, 4);
  const ssta::PathSstaResult pb = ssta::run_path_ssta(n, d, arrival, 4);
  ASSERT_EQ(pa.paths.size(), pb.paths.size());
  ASSERT_EQ(pa.max_delay.mean, pb.max_delay.mean);
  ASSERT_EQ(pa.max_delay.var, pb.max_delay.var);
  for (std::size_t i = 0; i < pa.paths.size(); ++i) {
    ASSERT_EQ(pa.paths[i].path.nodes, pb.paths[i].path.nodes);
    ASSERT_EQ(pa.paths[i].delay.mean, pb.paths[i].delay.mean);
    ASSERT_EQ(pa.paths[i].criticality, pb.paths[i].criticality);
  }

  mc::MonteCarloConfig mc_cfg;
  mc_cfg.runs = 2000;
  mc_cfg.seed = 7;
  mc_cfg.track_circuit_max = true;
  const mc::MonteCarloResult ma = mc::run_monte_carlo(plan, sources, mc_cfg);
  const mc::MonteCarloResult mb = mc::run_monte_carlo(n, d, sources, mc_cfg);
  ASSERT_EQ(ma.node.size(), mb.node.size());
  for (std::size_t id = 0; id < ma.node.size(); ++id) {
    for (int v = 0; v < 4; ++v) ASSERT_EQ(ma.node[id].count[v], mb.node[id].count[v]);
    ASSERT_EQ(ma.node[id].raw_edges, mb.node[id].raw_edges);
    ASSERT_EQ(ma.node[id].rise_time.mean(), mb.node[id].rise_time.mean());
    ASSERT_EQ(ma.node[id].fall_time.mean(), mb.node[id].fall_time.mean());
  }
  ASSERT_EQ(ma.glitching_gates, mb.glitching_gates);
  ASSERT_EQ(ma.circuit_max_samples, mb.circuit_max_samples);
  ASSERT_EQ(ma.critical_count, mb.critical_count);
}

// The plan's precomputed structure must reproduce what the engines used
// to derive per run: level ranges equal the legacy level_groups, the
// arena adjacency equals the per-node vectors, and the structural delay
// equals the longest critical path under mean delays.
TEST(CompiledDesign, StructureMatchesLegacyDerivation) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const core::CompiledDesign plan(n, d);

  const netlist::Levelization lv = netlist::levelize(n);
  const std::vector<std::vector<NodeId>> groups = netlist::level_groups(lv);
  ASSERT_EQ(plan.level_count(), groups.size());
  ASSERT_EQ(plan.depth(), lv.depth);
  for (std::size_t l = 0; l < groups.size(); ++l) {
    const std::span<const NodeId> nodes = plan.level_nodes(l);
    ASSERT_EQ(std::vector<NodeId>(nodes.begin(), nodes.end()), groups[l]);
  }

  for (NodeId id = 0; id < n.node_count(); ++id) {
    const std::span<const NodeId> fi = plan.fanins(id);
    const std::span<const NodeId> fo = plan.fanouts(id);
    ASSERT_EQ(std::vector<NodeId>(fi.begin(), fi.end()), n.node(id).fanins);
    ASSERT_EQ(std::vector<NodeId>(fo.begin(), fo.end()), n.node(id).fanouts);
    ASSERT_EQ(plan.type(id), n.node(id).type);
  }

  ASSERT_EQ(std::vector<NodeId>(plan.timing_sources().begin(),
                                plan.timing_sources().end()),
            n.timing_sources());
  ASSERT_EQ(std::vector<NodeId>(plan.timing_endpoints().begin(),
                                plan.timing_endpoints().end()),
            n.timing_endpoints());

  const std::vector<netlist::Path> paths = netlist::critical_paths(n, d.means(), 1);
  ASSERT_FALSE(paths.empty());
  ASSERT_EQ(plan.structural_delay(), paths.front().delay);
}

// One CompiledDesign shared by concurrent runs (the Analyzer / service
// usage) must be race-free and produce results identical to serial runs.
// Run under TSan in CI; no gtest assertions inside the worker threads —
// results are collected and compared on the main thread.
TEST(CompiledDesign, CrossThreadReuseMatchesSerialRuns) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const std::vector sources{netlist::scenario_I()};
  const core::CompiledDesign plan(n, d);

  const core::SpstaResult serial_moment = core::run_spsta_moment(plan, sources);
  const core::SpstaNumericResult serial_numeric =
      core::run_spsta_numeric(plan, sources);

  constexpr std::size_t kThreads = 8;
  std::vector<core::SpstaResult> moment(kThreads);
  std::vector<core::SpstaNumericResult> numeric(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&plan, &sources, &moment, &numeric, t] {
      moment[t] = core::run_spsta_moment(plan, sources);
      numeric[t] = core::run_spsta_numeric(plan, sources);
    });
  }
  for (std::thread& w : workers) w.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    expect_same_moment(moment[t], serial_moment);
    expect_same_numeric(numeric[t], serial_numeric);
  }
}

// The content hash is a pure function of the (netlist, delay model)
// inputs: equal inputs hash equal across independent compiles, and any
// netlist or delay change moves the hash.
TEST(CompiledDesign, ContentHashTracksInputs) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);

  const core::CompiledDesign a(n, d);
  const core::CompiledDesign b(n, d);
  EXPECT_EQ(a.content_hash(), b.content_hash());

  // Find a combinational gate to edit.
  NodeId gate = netlist::kInvalidNode;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (a.combinational(id) && !n.node(id).fanins.empty()) {
      gate = id;
      break;
    }
  }
  ASSERT_NE(gate, netlist::kInvalidNode);

  netlist::DelayModel edited = d;
  edited.set_delay(gate, stats::Gaussian{2.5, 0.01});
  EXPECT_NE(core::CompiledDesign(n, edited).content_hash(), a.content_hash());

  // A sign-bit-only delay change must still move the hash (the hash walks
  // raw double bits, not values that could collapse in arithmetic).
  netlist::DelayModel negated = d;
  negated.set_delay(gate, stats::Gaussian{-1.0, 0.05 * 0.05});
  EXPECT_NE(core::CompiledDesign(n, negated).content_hash(), a.content_hash());

  const netlist::Netlist other = test_circuit(43);
  const netlist::DelayModel other_d = netlist::DelayModel::gaussian(other, 1.0, 0.05);
  EXPECT_NE(core::CompiledDesign(other, other_d).content_hash(), a.content_hash());
}

// check_source_stats enforces the shared engine precondition: exactly one
// entry (broadcast) or one per timing source.
TEST(CompiledDesign, CheckSourceStatsRejectsBadCounts) {
  const netlist::Netlist n = test_circuit();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const core::CompiledDesign plan(n, d);

  const std::vector one{netlist::scenario_I()};
  const std::vector full(n.timing_sources().size(), netlist::scenario_I());
  EXPECT_NO_THROW(plan.check_source_stats(one, "test"));
  EXPECT_NO_THROW(plan.check_source_stats(full, "test"));

  const std::vector<netlist::SourceStats> none;
  const std::vector two(2, netlist::scenario_I());
  EXPECT_THROW(plan.check_source_stats(none, "test"), std::invalid_argument);
  EXPECT_THROW(plan.check_source_stats(two, "test"), std::invalid_argument);
}

}  // namespace
}  // namespace spsta
