// Randomized whole-pipeline property sweep: over random circuit shapes,
// seeds and input scenarios, the analytic engines must satisfy their
// invariants and track Monte Carlo within statistical tolerance.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "core/spsta_canonical.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/generator.hpp"
#include "sigprob/four_value_prop.hpp"
#include "ssta/ssta.hpp"

namespace spsta {
namespace {

using Param = std::tuple<std::size_t /*gates*/, std::size_t /*depth*/,
                         std::uint64_t /*seed*/, bool /*scenario II*/>;

class PipelineSweep : public ::testing::TestWithParam<Param> {
 protected:
  netlist::Netlist make_circuit() const {
    const auto [gates, depth, seed, second] = GetParam();
    (void)second;
    netlist::GeneratorSpec spec;
    spec.name = "sweep";
    spec.num_inputs = 6;
    spec.num_outputs = 3;
    spec.num_dffs = 2;
    spec.num_gates = gates;
    spec.target_depth = depth;
    spec.seed = seed;
    spec.weight_not = 2.5;  // keep transitions alive at depth
    spec.max_fanin = 3;
    return netlist::generate_circuit(spec);
  }
  netlist::SourceStats scenario() const {
    return std::get<3>(GetParam()) ? netlist::scenario_II() : netlist::scenario_I();
  }
};

TEST_P(PipelineSweep, FourValueProbsValidEverywhere) {
  const netlist::Netlist n = make_circuit();
  const auto probs =
      sigprob::propagate_four_value(n, std::vector{scenario().probs});
  for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_TRUE(probs[id].is_valid(1e-9)) << n.node(id).name;
  }
}

TEST_P(PipelineSweep, MomentAndNumericEnginesAgree) {
  const netlist::Netlist n = make_circuit();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{scenario()};
  const core::SpstaResult moment = core::run_spsta_moment(n, d, sc);
  const core::SpstaNumericResult numeric = core::run_spsta_numeric(n, d, sc);
  for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(numeric.node[id].rise.mass(), moment.node[id].rise.mass, 0.01)
        << n.node(id).name;
    if (moment.node[id].rise.mass > 0.02) {
      EXPECT_NEAR(numeric.node[id].rise.mean(), moment.node[id].rise.arrival.mean, 0.25)
          << n.node(id).name;
    }
  }
}

TEST_P(PipelineSweep, CanonicalMassesMatchMomentEngine) {
  const netlist::Netlist n = make_circuit();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{scenario()};
  const core::SpstaResult moment = core::run_spsta_moment(n, d, sc);
  const core::SpstaCanonicalResult canon = core::run_spsta_canonical(n, d, sc);
  for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_NEAR(canon.node[id].rise.mass, moment.node[id].rise.mass, 1e-9);
    EXPECT_NEAR(canon.node[id].fall.mass, moment.node[id].fall.mass, 1e-9);
  }
}

TEST_P(PipelineSweep, SpstaTracksMonteCarloProbabilities) {
  const netlist::Netlist n = make_circuit();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{scenario()};
  const core::SpstaResult spsta = core::run_spsta_moment(n, d, sc);

  mc::MonteCarloConfig cfg;
  cfg.runs = 8000;
  cfg.seed = std::get<2>(GetParam()) ^ 0xABCDEF;
  const auto mcr = mc::run_monte_carlo(n, d, sc, cfg);

  double err = 0.0;
  std::size_t count = 0;
  for (netlist::NodeId id = 0; id < n.node_count(); ++id) {
    if (!netlist::is_combinational(n.node(id).type)) continue;
    err += std::abs(spsta.node[id].probs.final_one() -
                    mcr.node[id].probs().final_one());
    ++count;
  }
  // Mean absolute signal-probability error stays well inside the paper's
  // 14.28% figure even on random reconvergent circuits.
  EXPECT_LT(err / static_cast<double>(count), 0.06);
}

TEST_P(PipelineSweep, SpstaSigmaAtLeastAsGoodAsSstaOnExercisedEndpoints) {
  const netlist::Netlist n = make_circuit();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{scenario()};
  const core::SpstaResult spsta = core::run_spsta_moment(n, d, sc);
  const ssta::SstaResult ssta_result = ssta::run_ssta(n, d, sc);

  mc::MonteCarloConfig cfg;
  cfg.runs = 8000;
  cfg.seed = std::get<2>(GetParam()) + 17;
  const auto mcr = mc::run_monte_carlo(n, d, sc, cfg);

  double spsta_err = 0.0, ssta_err = 0.0;
  std::size_t count = 0;
  for (netlist::NodeId ep : n.timing_endpoints()) {
    if (mcr.node[ep].rise_time.count() < 400) continue;
    const double mc_sig = mcr.node[ep].rise_time.stddev();
    spsta_err += std::abs(spsta.node[ep].rise.arrival.stddev() - mc_sig);
    ssta_err += std::abs(ssta_result.arrival[ep].rise.stddev() - mc_sig);
    ++count;
  }
  if (count == 0) GTEST_SKIP() << "no exercised endpoints for this shape";
  EXPECT_LE(spsta_err, ssta_err + 0.05 * static_cast<double>(count))
      << "SPSTA sigma should track MC at least as well as SSTA";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineSweep,
    ::testing::Combine(::testing::Values<std::size_t>(40, 120),
                       ::testing::Values<std::size_t>(4, 7),
                       ::testing::Values<std::uint64_t>(11, 29, 61),
                       ::testing::Bool()));

}  // namespace
}  // namespace spsta
