// Tests for the service's JSON value type: parse/dump round-trips, the
// properties the protocol depends on (ordered objects, bit-exact number
// round-trips, duplicate-key rejection, depth cap), and clean parse
// errors on malformed input.

#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "service/json.hpp"

namespace spsta::service {
namespace {

TEST(ServiceJson, ParsesEveryValueKind) {
  const Json v = Json::parse(
      R"({"null":null,"t":true,"f":false,"n":-2.5e3,"s":"hi","a":[1,2],"o":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.find("null")->is_null());
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_FALSE(v.find("f")->as_bool());
  EXPECT_EQ(v.find("n")->as_number(), -2500.0);
  EXPECT_EQ(v.find("s")->as_string(), "hi");
  ASSERT_TRUE(v.find("a")->is_array());
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
  EXPECT_EQ(v.find("o")->find("k")->as_string(), "v");
}

TEST(ServiceJson, CompactDumpRoundTripsVerbatim) {
  // Objects are ordered, the writer is compact: a compact document must
  // survive parse → dump byte-for-byte (deterministic responses).
  const std::string text =
      R"({"id":7,"ok":true,"result":{"z":1,"a":[null,"x",-0.5],"m":{}}})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(ServiceJson, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", Json(1));
  j.set("alpha", Json(2));
  j.set("mid", Json(3));
  j.set("alpha", Json(9));  // replace in place, position kept
  EXPECT_EQ(j.dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(ServiceJson, NumbersRoundTripBitExact) {
  const double values[] = {0.0,    1.0,           0.1,     1.0 / 3.0, 2.5e-10,
                           1e300,  5e-324,        -17.25,  123456.789,
                           9007199254740991.0,    6.02214076e23};
  for (const double v : values) {
    const double back = Json::parse(json_number(v)).as_number();
    EXPECT_EQ(v, back) << json_number(v);
  }
  // Integers inside the exact range print without an exponent.
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-1000000.0), "-1000000");
}

TEST(ServiceJson, StringEscapes) {
  const Json v = Json::parse(R"(["A\n\t\"\\\/","é"])");
  EXPECT_EQ(v.as_array()[0].as_string(), "A\n\t\"\\/");
  EXPECT_EQ(v.as_array()[1].as_string(), "\xC3\xA9");  // é as UTF-8
  // Control characters and non-printable bytes are escaped on output.
  EXPECT_EQ(Json(std::string("a\nb")).dump(), R"("a\nb")");
}

/// "\\u" built as two separate chars so no tool in the build or review
/// pipeline can mistake the test source itself for an escape sequence.
std::string u_esc(const char* hex4) { return std::string("\\") + "u" + hex4; }

std::string quoted(const std::string& body) { return '"' + body + '"'; }

TEST(ServiceJson, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(quoted(u_esc("0041"))).as_string(), "A");
  EXPECT_EQ(Json::parse(quoted(u_esc("00e9"))).as_string(), "\xC3\xA9");  // 2-byte
  EXPECT_EQ(Json::parse(quoted(u_esc("20AC"))).as_string(), "\xE2\x82\xAC");  // 3-byte
  EXPECT_EQ(Json::parse(quoted(u_esc("0000"))).as_string(), std::string(1, '\0'));
}

TEST(ServiceJson, MalformedUnicodeEscapesThrow) {
  // Bad hex digit, truncated escape (mid-string and at end of input).
  const char* bad[] = {R"("\u12gz")", R"("\u12")", R"("\u123)", R"("\u)"};
  for (const char* text : bad) {
    EXPECT_THROW((void)Json::parse(text), JsonParseError) << text;
  }
}

TEST(ServiceJson, SurrogateEscapesPassThroughAsCodeUnits) {
  // The parser does not pair surrogates; each escaped D800-DFFF code unit
  // is emitted as its own 3-byte sequence (WTF-8 style) rather than being
  // rejected or silently dropped. Documents round-tripping astral plane
  // characters must send raw UTF-8 instead.
  const std::string s =
      Json::parse(quoted(u_esc("D83D") + u_esc("DE00"))).as_string();
  EXPECT_EQ(s, "\xED\xA0\xBD\xED\xB8\x80");
}

TEST(ServiceJson, NonFiniteNumbersHaveNoRepresentation) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)json_number(nan), NonFiniteNumberError);
  EXPECT_THROW((void)json_number(inf), NonFiniteNumberError);
  EXPECT_THROW((void)json_number(-inf), NonFiniteNumberError);
  EXPECT_THROW((void)Json(nan).dump(), NonFiniteNumberError);
  Json arr = Json::array();
  arr.push_back(Json(1.0));
  arr.push_back(Json(inf));
  EXPECT_THROW((void)arr.dump(), NonFiniteNumberError);
  // NaN/Inf parse as malformed input, never as a number.
  EXPECT_THROW((void)Json::parse("NaN"), JsonParseError);
  EXPECT_THROW((void)Json::parse("[Infinity]"), JsonParseError);
}

TEST(ServiceJson, NumberOrNullDegradesNonFiniteToNull) {
  EXPECT_EQ(Json::number_or_null(2.5).dump(), "2.5");
  EXPECT_EQ(Json::number_or_null(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(Json::number_or_null(-std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(ServiceJson, ExtremeExponentsMatchStrtodSemantics) {
  // Gradual underflow to zero (sign preserved), overflow is an error.
  EXPECT_EQ(Json::parse("1e-5000").as_number(), 0.0);
  EXPECT_TRUE(std::signbit(Json::parse("-1e-5000").as_number()));
  EXPECT_EQ(Json::parse("0.0000000001e-400").as_number(), 0.0);
  EXPECT_THROW((void)Json::parse("1e+400"), JsonParseError);
  EXPECT_THROW((void)Json::parse("-1e309"), JsonParseError);
  // Subnormals still parse exactly.
  EXPECT_EQ(Json::parse("5e-324").as_number(),
            std::numeric_limits<double>::denorm_min());
}

/// Numeric I/O must not consult the C locale: under a comma-decimal locale
/// (de_DE et al.) strtod("2.5") historically stopped at the dot and
/// snprintf("%g") printed "2,5", corrupting the protocol. Exercised with
/// every comma-decimal locale the host has; skipped (not passed) when none
/// is installed — CI installs de_DE.UTF-8 for a dedicated shard.
TEST(ServiceJson, RoundTripsUnderCommaDecimalLocale) {
  const char* candidates[] = {"de_DE.UTF-8", "fr_FR.UTF-8", "it_IT.UTF-8",
                              "de_DE.utf8", "fr_FR.utf8"};
  const char* active = nullptr;
  for (const char* name : candidates) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      active = name;
      break;
    }
  }
  if (active == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // Prove the locale actually uses a comma before trusting the test.
  char probe[32];
  std::snprintf(probe, sizeof probe, "%.1f", 1.5);
  const bool comma_locale = std::string(probe) == "1,5";

  const std::string text = R"({"mu":2.5,"sigma":0.1,"big":1e+300,"neg":-17.25})";
  const Json v = Json::parse(text);
  EXPECT_EQ(v.find("mu")->as_number(), 2.5);
  EXPECT_EQ(v.find("sigma")->as_number(), 0.1);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(json_number(0.5), "0.5");

  std::setlocale(LC_ALL, "C");
  if (!comma_locale) {
    GTEST_SKIP() << active << " resolved but does not use a decimal comma";
  }
}

TEST(ServiceJson, MalformedInputThrowsWithOffset) {
  const char* bad[] = {"",        "{",         "[1,]",     "{\"a\":}",
                       "nul",     "01",        "1e",       "\"unterminated",
                       "{} tail", "\"ctrl\n\"", "{\"a\" 1}", "[1 2]"};
  for (const char* text : bad) {
    EXPECT_THROW((void)Json::parse(text), JsonParseError) << text;
  }
  try {
    (void)Json::parse("[1, fal]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GE(e.offset(), 4u);
  }
}

TEST(ServiceJson, DuplicateObjectKeysAreRejected) {
  EXPECT_THROW((void)Json::parse(R"({"a":1,"a":2})"), JsonParseError);
}

TEST(ServiceJson, NestingDepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), JsonParseError);
  EXPECT_NO_THROW((void)Json::parse(deep, 128));  // cap is adjustable
}

TEST(ServiceJson, TypeMismatchAccessorsThrow) {
  const Json v = Json::parse("[1]");
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_THROW((void)v.as_object(), std::logic_error);
  EXPECT_EQ(v.find("anything"), nullptr);  // find on a non-object is safe
}

TEST(ServiceJson, Equality) {
  EXPECT_EQ(Json::parse(R"({"a":[1,2]})"), Json::parse(R"({"a":[1,2]})"));
  EXPECT_NE(Json::parse(R"({"a":[1,2]})"), Json::parse(R"({"a":[1,3]})"));
}

}  // namespace
}  // namespace spsta::service
