// Tests for the service's JSON value type: parse/dump round-trips, the
// properties the protocol depends on (ordered objects, bit-exact number
// round-trips, duplicate-key rejection, depth cap), and clean parse
// errors on malformed input.

#include <string>

#include <gtest/gtest.h>

#include "service/json.hpp"

namespace spsta::service {
namespace {

TEST(ServiceJson, ParsesEveryValueKind) {
  const Json v = Json::parse(
      R"({"null":null,"t":true,"f":false,"n":-2.5e3,"s":"hi","a":[1,2],"o":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.find("null")->is_null());
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_FALSE(v.find("f")->as_bool());
  EXPECT_EQ(v.find("n")->as_number(), -2500.0);
  EXPECT_EQ(v.find("s")->as_string(), "hi");
  ASSERT_TRUE(v.find("a")->is_array());
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
  EXPECT_EQ(v.find("o")->find("k")->as_string(), "v");
}

TEST(ServiceJson, CompactDumpRoundTripsVerbatim) {
  // Objects are ordered, the writer is compact: a compact document must
  // survive parse → dump byte-for-byte (deterministic responses).
  const std::string text =
      R"({"id":7,"ok":true,"result":{"z":1,"a":[null,"x",-0.5],"m":{}}})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(ServiceJson, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", Json(1));
  j.set("alpha", Json(2));
  j.set("mid", Json(3));
  j.set("alpha", Json(9));  // replace in place, position kept
  EXPECT_EQ(j.dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(ServiceJson, NumbersRoundTripBitExact) {
  const double values[] = {0.0,    1.0,           0.1,     1.0 / 3.0, 2.5e-10,
                           1e300,  5e-324,        -17.25,  123456.789,
                           9007199254740991.0,    6.02214076e23};
  for (const double v : values) {
    const double back = Json::parse(json_number(v)).as_number();
    EXPECT_EQ(v, back) << json_number(v);
  }
  // Integers inside the exact range print without an exponent.
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-1000000.0), "-1000000");
}

TEST(ServiceJson, StringEscapes) {
  const Json v = Json::parse(R"(["A\n\t\"\\\/","é"])");
  EXPECT_EQ(v.as_array()[0].as_string(), "A\n\t\"\\/");
  EXPECT_EQ(v.as_array()[1].as_string(), "\xC3\xA9");  // é as UTF-8
  // Control characters and non-printable bytes are escaped on output.
  EXPECT_EQ(Json(std::string("a\nb")).dump(), R"("a\nb")");
}

TEST(ServiceJson, MalformedInputThrowsWithOffset) {
  const char* bad[] = {"",        "{",         "[1,]",     "{\"a\":}",
                       "nul",     "01",        "1e",       "\"unterminated",
                       "{} tail", "\"ctrl\n\"", "{\"a\" 1}", "[1 2]"};
  for (const char* text : bad) {
    EXPECT_THROW((void)Json::parse(text), JsonParseError) << text;
  }
  try {
    (void)Json::parse("[1, fal]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GE(e.offset(), 4u);
  }
}

TEST(ServiceJson, DuplicateObjectKeysAreRejected) {
  EXPECT_THROW((void)Json::parse(R"({"a":1,"a":2})"), JsonParseError);
}

TEST(ServiceJson, NestingDepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), JsonParseError);
  EXPECT_NO_THROW((void)Json::parse(deep, 128));  // cap is adjustable
}

TEST(ServiceJson, TypeMismatchAccessorsThrow) {
  const Json v = Json::parse("[1]");
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_THROW((void)v.as_object(), std::logic_error);
  EXPECT_EQ(v.find("anything"), nullptr);  // find on a non-object is safe
}

TEST(ServiceJson, Equality) {
  EXPECT_EQ(Json::parse(R"({"a":[1,2]})"), Json::parse(R"({"a":[1,2]})"));
  EXPECT_NE(Json::parse(R"({"a":[1,2]})"), Json::parse(R"({"a":[1,3]})"));
}

}  // namespace
}  // namespace spsta::service
