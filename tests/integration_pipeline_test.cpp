// Cross-module integration: sequential fixpoint feeding SPSTA, yield and
// criticality validated against Monte Carlo on suite circuits.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/criticality.hpp"
#include "core/sequential.hpp"
#include "core/spsta.hpp"
#include "core/yield.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta {
namespace {

using netlist::NodeId;

TEST(IntegrationPipeline, FixpointStatsImproveMcAgreement) {
  // Run MC with the *converged* FF statistics; the four-value propagation
  // under the same statistics should match MC tightly (both now use the
  // same, self-consistent inputs).
  const netlist::Netlist n = netlist::make_paper_circuit("s298");
  core::SequentialConfig cfg;
  cfg.damping = 0.7;
  // s298's register loops mix slowly (residual decays ~0.999x/iter); a
  // probability-scale tolerance converges in a few thousand iterations.
  cfg.max_iterations = 6000;
  cfg.tolerance = 2e-5;
  const core::SequentialResult fix = core::solve_sequential_fixpoint(n, cfg);
  ASSERT_TRUE(fix.converged);

  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  mc::MonteCarloConfig mc_cfg;
  mc_cfg.runs = 20000;
  mc_cfg.seed = 9;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, fix.source_stats, mc_cfg);

  double err = 0.0;
  std::size_t count = 0;
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (!netlist::is_combinational(n.node(id).type)) continue;
    err += std::abs(fix.node_probs[id].final_one() - mcr.node[id].probs().final_one());
    ++count;
  }
  EXPECT_LT(err / static_cast<double>(count), 0.05);
}

TEST(IntegrationPipeline, YieldCurveTracksMcOnSuiteCircuit) {
  const netlist::Netlist n = netlist::make_paper_circuit("s344");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  core::SpstaOptions opt;
  opt.grid_dt = 0.02;
  const core::SpstaNumericResult spsta = core::run_spsta_numeric(n, d, sc, opt);

  mc::MonteCarloConfig cfg;
  cfg.runs = 30000;
  cfg.seed = 77;
  cfg.track_circuit_max = true;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, sc, cfg);

  // Compare the yield curves at several periods. SPSTA's independence
  // approximation across endpoints biases the product pessimistic (shared
  // cones make late arrivals coincide in reality), so the band is loose
  // in the mid-curve; the pessimistic direction and the tails are exact
  // requirements.
  double max_err = 0.0;
  double prev = -1.0;
  for (double period = 4.0; period <= 14.0; period += 1.0) {
    const double y_spsta = core::timing_yield(n, spsta, period);
    const double y_mc = mcr.empirical_yield(period);
    max_err = std::max(max_err, std::abs(y_spsta - y_mc));
    EXPECT_LE(y_spsta, y_mc + 0.02) << "yield estimate should err pessimistic";
    EXPECT_GE(y_spsta, prev - 1e-9);  // monotone
    prev = y_spsta;
  }
  EXPECT_LT(max_err, 0.3);
  // Both saturate at 1 for generous periods.
  EXPECT_NEAR(core::timing_yield(n, spsta, 40.0), 1.0, 1e-6);
  EXPECT_NEAR(mcr.empirical_yield(40.0), 1.0, 1e-9);
}

TEST(IntegrationPipeline, CriticalityRankingMatchesMc) {
  // The endpoints MC most often finds critical should rank high in the
  // SPSTA criticality distribution (correlation between the two rankings,
  // not exact equality — endpoint independence is approximate).
  const netlist::Netlist n = netlist::make_paper_circuit("s526");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  core::SpstaOptions opt;
  opt.grid_dt = 0.05;
  const core::SpstaNumericResult spsta = core::run_spsta_numeric(n, d, sc, opt);
  const core::CriticalityResult crit = core::endpoint_criticality(n, spsta);

  mc::MonteCarloConfig cfg;
  cfg.runs = 30000;
  cfg.seed = 5;
  cfg.track_circuit_max = true;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, sc, cfg);

  // Quiet-cycle probability agrees.
  EXPECT_NEAR(crit.quiet_probability,
              static_cast<double>(mcr.quiet_runs) / cfg.runs, 0.05);

  // The MC-most-critical endpoint is within the top 3 by SPSTA.
  NodeId mc_top = crit.endpoints.front();
  for (NodeId ep : crit.endpoints) {
    if (mcr.critical_count[ep] > mcr.critical_count[mc_top]) mc_top = ep;
  }
  std::vector<std::size_t> order(crit.endpoints.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return crit.probability[x] > crit.probability[y];
  });
  bool in_top3 = false;
  for (std::size_t rank = 0; rank < std::min<std::size_t>(3, order.size()); ++rank) {
    if (crit.endpoints[order[rank]] == mc_top) in_top3 = true;
  }
  EXPECT_TRUE(in_top3) << "MC-critical endpoint " << n.node(mc_top).name
                       << " not in SPSTA top-3";
}

TEST(IntegrationPipeline, ScenarioSweepKeepsInvariants) {
  // Sweep asymmetric per-source scenarios on one circuit; core invariants
  // must hold under heterogeneous inputs too.
  const netlist::Netlist n = netlist::make_paper_circuit("s382");
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  std::vector<netlist::SourceStats> sc(n.timing_sources().size());
  for (std::size_t i = 0; i < sc.size(); ++i) {
    sc[i] = (i % 3 == 0)   ? netlist::scenario_II()
            : (i % 3 == 1) ? netlist::scenario_I()
                           : netlist::SourceStats{{0.4, 0.4, 0.1, 0.1},
                                                  {0.5, 0.25},
                                                  {-0.5, 0.25}};
  }
  const core::SpstaResult r = core::run_spsta_moment(n, d, sc);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_TRUE(r.node[id].probs.is_valid(1e-9)) << n.node(id).name;
    EXPECT_NEAR(r.node[id].rise.mass, r.node[id].probs.pr, 1e-9);
    EXPECT_GE(r.node[id].rise.arrival.var, 0.0);
  }
}

}  // namespace
}  // namespace spsta
