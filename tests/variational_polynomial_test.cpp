// Tests for sparse multivariate polynomials and their Gaussian moments
// (paper Sec. 3.6 symbolic analysis).

#include "variational/polynomial.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::variational {
namespace {

TEST(Polynomial, ConstantAndVariable) {
  const Polynomial c(3.0);
  EXPECT_DOUBLE_EQ(c.evaluate({}), 3.0);
  EXPECT_EQ(c.degree(), 0u);
  const Polynomial x = Polynomial::variable(0);
  const std::vector<double> at{2.5};
  EXPECT_DOUBLE_EQ(x.evaluate(at), 2.5);
  EXPECT_EQ(x.degree(), 1u);
  EXPECT_TRUE(Polynomial{}.is_zero());
}

TEST(Polynomial, Arithmetic) {
  const Polynomial x = Polynomial::variable(0);
  const Polynomial y = Polynomial::variable(1);
  const Polynomial p = (x + y) * (x - y);  // x^2 - y^2
  const std::vector<double> at{3.0, 2.0};
  EXPECT_DOUBLE_EQ(p.evaluate(at), 5.0);
  EXPECT_EQ(p.degree(), 2u);

  const Polynomial q = p - p;
  EXPECT_TRUE(q.is_zero());

  Polynomial scaled = p;
  scaled *= 2.0;
  EXPECT_DOUBLE_EQ(scaled.evaluate(at), 10.0);
  scaled *= 0.0;
  EXPECT_TRUE(scaled.is_zero());
}

TEST(Polynomial, CancellationRemovesTerms) {
  const Polynomial x = Polynomial::variable(0);
  const Polynomial p = x + x * -1.0;
  EXPECT_TRUE(p.is_zero());
}

TEST(Polynomial, GaussianMeanOfMonomials) {
  const Polynomial x = Polynomial::variable(0);
  const Polynomial y = Polynomial::variable(1);
  EXPECT_DOUBLE_EQ(x.mean_gaussian(), 0.0);
  EXPECT_DOUBLE_EQ((x * x).mean_gaussian(), 1.0);           // E[X^2]
  EXPECT_DOUBLE_EQ((x * x * x).mean_gaussian(), 0.0);       // E[X^3]
  EXPECT_DOUBLE_EQ((x * x * x * x).mean_gaussian(), 3.0);   // E[X^4] = 3
  EXPECT_DOUBLE_EQ((x * y).mean_gaussian(), 0.0);           // independent
  EXPECT_DOUBLE_EQ((x * x * y * y).mean_gaussian(), 1.0);
}

TEST(Polynomial, GaussianVarianceOfLinearForm) {
  // var(2X + 3Y + 5) = 4 + 9.
  const Polynomial p =
      Polynomial::variable(0) * 2.0 + Polynomial::variable(1) * 3.0 + Polynomial(5.0);
  EXPECT_DOUBLE_EQ(p.mean_gaussian(), 5.0);
  EXPECT_DOUBLE_EQ(p.variance_gaussian(), 13.0);
}

TEST(Polynomial, GaussianVarianceOfSquare) {
  // var(X^2) = E[X^4] - E[X^2]^2 = 2.
  const Polynomial x = Polynomial::variable(0);
  EXPECT_DOUBLE_EQ((x * x).variance_gaussian(), 2.0);
}

TEST(Polynomial, CovarianceGaussian) {
  const Polynomial x = Polynomial::variable(0);
  const Polynomial y = Polynomial::variable(1);
  // cov(X, X + Y) = 1.
  EXPECT_DOUBLE_EQ(Polynomial::covariance_gaussian(x, x + y), 1.0);
  // cov(X, Y) = 0; cov(X, X^2) = E[X^3] = 0.
  EXPECT_DOUBLE_EQ(Polynomial::covariance_gaussian(x, y), 0.0);
  EXPECT_DOUBLE_EQ(Polynomial::covariance_gaussian(x, x * x), 0.0);
}

TEST(Polynomial, TruncationDropsHighDegrees) {
  const Polynomial x = Polynomial::variable(0);
  const Polynomial p = Polynomial(1.0) + x + x * x + x * x * x;
  const Polynomial t = p.truncated(1);
  EXPECT_EQ(t.degree(), 1u);
  const std::vector<double> at{2.0};
  EXPECT_DOUBLE_EQ(t.evaluate(at), 3.0);  // 1 + x
}

TEST(Polynomial, MomentsMatchSampling) {
  // p = 1 + 0.5 X0 + 0.3 X1^2 + 0.2 X0 X1.
  const Polynomial x0 = Polynomial::variable(0);
  const Polynomial x1 = Polynomial::variable(1);
  const Polynomial p =
      Polynomial(1.0) + x0 * 0.5 + (x1 * x1) * 0.3 + (x0 * x1) * 0.2;

  stats::Xoshiro256 rng(303);
  stats::RunningMoments mom;
  for (int i = 0; i < 400000; ++i) {
    const std::vector<double> at{rng.normal(), rng.normal()};
    mom.add(p.evaluate(at));
  }
  EXPECT_NEAR(p.mean_gaussian(), mom.mean(), 0.01);
  EXPECT_NEAR(p.variance_gaussian(), mom.variance(), 0.02);
}

}  // namespace
}  // namespace spsta::variational
