// Tests for first-order canonical forms: exact SUM, Clark-blended MAX,
// and correlation preservation — validated against sampling.

#include "variational/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::variational {
namespace {

TEST(Canonical, MomentsFromSensitivities) {
  const CanonicalForm f(10.0, {3.0, 4.0}, 0.0);
  EXPECT_DOUBLE_EQ(f.mean(), 10.0);
  EXPECT_DOUBLE_EQ(f.variance(), 25.0);
  const CanonicalForm g(1.0, {0.0, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(g.variance(), 4.0);
}

TEST(Canonical, EvaluateRealization) {
  const CanonicalForm f(1.0, {2.0, -1.0}, 0.5);
  const std::vector<double> params{1.0, 2.0};
  EXPECT_DOUBLE_EQ(f.evaluate(params, 2.0), 1.0 + 2.0 - 2.0 + 1.0);
}

TEST(Canonical, CovarianceFromSharedParameters) {
  const CanonicalForm a(0.0, {1.0, 0.0}, 1.0);
  const CanonicalForm b(0.0, {2.0, 3.0}, 0.5);
  EXPECT_DOUBLE_EQ(covariance(a, b), 2.0);
  // Residuals never correlate across forms (covariance() computes the
  // cross-form covariance, so even covariance(f, f) omits the residual).
  const CanonicalForm c(0.0, {0.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(covariance(a, c), 0.0);
  const CanonicalForm pure(0.0, {2.0, 1.0}, 0.0);
  EXPECT_DOUBLE_EQ(correlation(pure, pure), 1.0);
}

TEST(Canonical, SumIsExact) {
  const CanonicalForm a(1.0, {1.0, 2.0}, 3.0);
  const CanonicalForm b(2.0, {-1.0, 1.0}, 4.0);
  const CanonicalForm s = sum(a, b);
  EXPECT_DOUBLE_EQ(s.nominal(), 3.0);
  EXPECT_DOUBLE_EQ(s.sensitivity(0), 0.0);
  EXPECT_DOUBLE_EQ(s.sensitivity(1), 3.0);
  EXPECT_DOUBLE_EQ(s.residual(), 5.0);  // hypot(3,4)
  // Variance of the sum accounts for the shared-parameter correlation.
  EXPECT_DOUBLE_EQ(s.variance(), a.variance() + b.variance() + 2.0 * covariance(a, b));
}

TEST(Canonical, MaxMomentsMatchClark) {
  const CanonicalForm a(1.0, {1.0, 0.0}, 0.5);
  const CanonicalForm b(1.5, {0.0, 2.0}, 0.0);
  const CanonicalForm m = max(a, b);
  const stats::ClarkResult ref =
      stats::clark_max(a.moments(), b.moments(), covariance(a, b));
  EXPECT_NEAR(m.mean(), ref.moments.mean, 1e-12);
  EXPECT_NEAR(m.variance(), ref.moments.var, 1e-9);
}

TEST(Canonical, MaxOfDominantOperandIsThatOperand) {
  const CanonicalForm a(100.0, {1.0, 0.0}, 0.0);
  const CanonicalForm b(0.0, {0.0, 1.0}, 0.0);
  const CanonicalForm m = max(a, b);
  EXPECT_NEAR(m.mean(), 100.0, 1e-9);
  EXPECT_NEAR(m.sensitivity(0), 1.0, 1e-9);
  EXPECT_NEAR(m.sensitivity(1), 0.0, 1e-9);
}

TEST(Canonical, MinIsDualOfMax) {
  const CanonicalForm a(0.0, {1.0, 0.5}, 0.2);
  const CanonicalForm b(0.3, {0.5, 1.0}, 0.1);
  const CanonicalForm mn = min(a, b);
  const stats::ClarkResult ref =
      stats::clark_min(a.moments(), b.moments(), covariance(a, b));
  EXPECT_NEAR(mn.mean(), ref.moments.mean, 1e-12);
  EXPECT_NEAR(mn.variance(), ref.moments.var, 1e-9);
}

TEST(Canonical, MaxPreservesDownstreamCorrelation) {
  // After MAX, correlation against a shared parameter should survive —
  // the whole point of canonical forms over plain moments.
  const CanonicalForm a(0.0, {1.0, 0.0}, 0.0);
  const CanonicalForm b(0.0, {0.8, 0.6}, 0.0);
  const CanonicalForm m = max(a, b);
  // The blended sensitivity to parameter 0 stays strictly positive.
  EXPECT_GT(m.sensitivity(0), 0.5);

  // Validate against sampling: corr(max(a,b), X0).
  stats::Xoshiro256 rng(101);
  stats::RunningCovariance rc;
  for (int i = 0; i < 300000; ++i) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    const double va = x0;
    const double vb = 0.8 * x0 + 0.6 * x1;
    rc.add(std::max(va, vb), x0);
  }
  const double sampled_cov = rc.covariance();
  EXPECT_NEAR(m.sensitivity(0), sampled_cov, 0.05);
}

TEST(Canonical, SumMismatchThrows) {
  const CanonicalForm a(0.0, {1.0}, 0.0);
  const CanonicalForm b(0.0, {1.0, 2.0}, 0.0);
  EXPECT_THROW((void)sum(a, b), std::invalid_argument);
  EXPECT_THROW((void)max(a, b), std::invalid_argument);
}

TEST(Canonical, ChainOfMaxSumTracksSampling) {
  // A small "timing graph in canonical forms": d = max(a+g1, b+g2) + g3
  // with shared parameter X0 in g1 and g2.
  const std::size_t P = 2;
  const CanonicalForm a(0.0, P);
  const CanonicalForm b(0.2, P);
  const CanonicalForm g1(1.0, {0.3, 0.0}, 0.1);
  const CanonicalForm g2(1.0, {0.3, 0.1}, 0.1);
  const CanonicalForm g3(1.0, {0.0, 0.2}, 0.05);
  const CanonicalForm d = sum(max(sum(a, g1), sum(b, g2)), g3);

  stats::Xoshiro256 rng(202);
  stats::RunningMoments mom;
  for (int i = 0; i < 400000; ++i) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    const double v1 = 0.0 + 1.0 + 0.3 * x0 + 0.1 * rng.normal();
    const double v2 = 0.2 + 1.0 + 0.3 * x0 + 0.1 * x1 + 0.1 * rng.normal();
    const double v3 = 1.0 + 0.2 * x1 + 0.05 * rng.normal();
    mom.add(std::max(v1, v2) + v3);
  }
  EXPECT_NEAR(d.mean(), mom.mean(), 0.01);
  EXPECT_NEAR(std::sqrt(d.variance()), mom.stddev(), 0.02);
}

}  // namespace
}  // namespace spsta::variational
