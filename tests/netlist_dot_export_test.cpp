// Tests for DOT export.

#include "netlist/dot_export.hpp"

#include <gtest/gtest.h>

#include "netlist/delay_model.hpp"
#include "netlist/graph.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::netlist {
namespace {

TEST(DotExport, ContainsNodesAndEdges) {
  Netlist n("tiny");
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId g = n.add_gate(GateType::Nand, "g", {a, b});
  n.mark_output(g);

  const std::string dot = to_dot(n);
  EXPECT_NE(dot.find("digraph \"tiny\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("NAND"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);       // inputs
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);   // PO marker
}

TEST(DotExport, AnnotationsAppear) {
  Netlist n;
  n.add_input("a");
  DotOptions opt;
  opt.annotate = [](NodeId) { return std::string("P=0.5"); };
  const std::string dot = to_dot(n, opt);
  EXPECT_NE(dot.find("P=0.5"), std::string::npos);
}

TEST(DotExport, HighlightsCriticalPath) {
  const Netlist n = make_s27();
  const DelayModel d = DelayModel::unit(n);
  const auto paths = critical_paths(n, d.means(), 1);
  ASSERT_FALSE(paths.empty());
  DotOptions opt;
  opt.highlight = paths[0].nodes;
  const std::string dot = to_dot(n, opt);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotExport, DffShape) {
  const Netlist n = make_s27();
  const std::string dot = to_dot(n);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(DotExport, EscapesQuotes) {
  Netlist n("a\"b");
  const std::string dot = to_dot(n);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace spsta::netlist
