// Tests for the hierarchical netlist layer: the HierDesign structure, the
// .hbench reader/writer (streaming, bounded memory, structured errors),
// flatten(), and the deterministic hierarchical generator.

#include "netlist/hier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/hier_bench_io.hpp"
#include "netlist/levelize.hpp"

namespace spsta::netlist {
namespace {

constexpr const char* kTwoCellDesign = R"(# two chained cells
BLOCK(cell)
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
n1 = NAND(a, b)
y = NOT(n1)
z = OR(n1, b)
END
INPUT(x0)
INPUT(x1)
INPUT(x2)
OUTPUT(u2.y)
OUTPUT(u2.z)
u0 = INSTANCE(cell, x0, x1)
u1 = INSTANCE(cell, x2, u0.y)
u2 = INSTANCE(cell, u0.z, u1.y)
)";

TEST(HierDesign, ParsesBlocksAndInstances) {
  const HierDesign d = parse_hier_bench(kTwoCellDesign);
  EXPECT_NO_THROW(d.validate());
  ASSERT_EQ(d.blocks().size(), 1u);
  EXPECT_EQ(d.blocks()[0].name(), "cell");
  EXPECT_EQ(d.blocks()[0].gate_count(), 3u);
  EXPECT_EQ(d.top_inputs().size(), 3u);
  EXPECT_EQ(d.top_outputs().size(), 2u);
  ASSERT_EQ(d.instances().size(), 3u);
  EXPECT_EQ(d.instances()[1].name, "u1");
  ASSERT_EQ(d.instances()[1].inputs.size(), 2u);
  EXPECT_EQ(d.instances()[1].inputs[1], "u0.y");
  EXPECT_EQ(d.expanded_gate_count(), 9u);
}

TEST(HierDesign, ResolveSplitsAtFirstDot) {
  const HierDesign d = parse_hier_bench(kTwoCellDesign);
  const auto top = d.resolve("x1");
  ASSERT_TRUE(top.has_value());
  EXPECT_TRUE(top->is_top_input());
  const auto port = d.resolve("u1.z");
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(port->instance, 1u);
  EXPECT_FALSE(d.resolve("u9.y").has_value());
  EXPECT_FALSE(d.resolve("u1.nope").has_value());
}

TEST(HierDesign, TopoOrdersDrivenInstancesLater) {
  const HierDesign d = parse_hier_bench(kTwoCellDesign);
  const std::vector<std::size_t> topo = d.topo_instances();
  ASSERT_EQ(topo.size(), 3u);
  // u0 must precede u1 and u2 (both consume its outputs).
  const auto pos = [&](std::size_t inst) {
    return std::find(topo.begin(), topo.end(), inst) - topo.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(2));
}

TEST(HierDesign, RoundTripsThroughWriter) {
  const HierDesign d = parse_hier_bench(kTwoCellDesign);
  const std::string text = write_hier_bench(d);
  const HierDesign again = parse_hier_bench(text);
  EXPECT_EQ(write_hier_bench(again), text);
  EXPECT_EQ(again.blocks().size(), d.blocks().size());
  EXPECT_EQ(again.instances().size(), d.instances().size());
  EXPECT_EQ(again.expanded_gate_count(), d.expanded_gate_count());
}

TEST(HierDesign, FlattenMatchesExpandedCountsAndValidates) {
  const HierDesign d = parse_hier_bench(kTwoCellDesign);
  const Netlist flat = d.flatten();
  EXPECT_NO_THROW(flat.validate());
  EXPECT_NO_THROW(levelize(flat));
  EXPECT_EQ(flat.gate_count(), d.expanded_gate_count());
  EXPECT_EQ(flat.node_count(), d.expanded_node_count());
  EXPECT_EQ(flat.primary_inputs().size(), 3u);
  EXPECT_EQ(flat.primary_outputs().size(), 2u);
  // Instance-local nodes are named "<instance>/<node>"; block input ports
  // collapse onto the driving nets.
  EXPECT_NE(flat.find("u1/y"), kInvalidNode);
  EXPECT_NE(flat.find("u2/n1"), kInvalidNode);
  EXPECT_EQ(flat.find("u1/a"), kInvalidNode);
  // u1's second input is u0's y output.
  const NodeId u1n1 = flat.find("u1/n1");
  ASSERT_NE(u1n1, kInvalidNode);
  ASSERT_EQ(flat.node(u1n1).fanins.size(), 2u);
  EXPECT_EQ(flat.node(flat.node(u1n1).fanins[1]).name, "u0/y");
}

TEST(HierParser, RejectsTopLevelGates) {
  const std::string bad = "INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n";
  try {
    (void)parse_hier_bench(bad);
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("INSTANCE"), std::string::npos);
  }
}

TEST(HierParser, RejectsUnknownBlock) {
  const std::string bad = "INPUT(a)\nu0 = INSTANCE(ghost, a)\n";
  EXPECT_THROW((void)parse_hier_bench(bad), BenchParseError);
}

TEST(HierParser, RejectsArityMismatch) {
  const std::string bad =
      "BLOCK(inv)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\nEND\n"
      "INPUT(x)\nOUTPUT(u0.y)\nu0 = INSTANCE(inv, x, x)\n";
  EXPECT_THROW((void)parse_hier_bench(bad), BenchParseError);
}

TEST(HierParser, RejectsUnterminatedBlock) {
  const std::string bad = "BLOCK(inv)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  EXPECT_THROW((void)parse_hier_bench(bad), BenchParseError);
}

TEST(HierParser, RejectsEndOutsideBlock) {
  EXPECT_THROW((void)parse_hier_bench("INPUT(a)\nEND\n"), BenchParseError);
}

TEST(HierParser, ReanchorsBlockBodyErrorsToFileLines) {
  // The bogus gate sits on file line 4, inside the block body.
  const std::string bad =
      "# header\nBLOCK(inv)\nINPUT(a)\ny = FROB(a)\nOUTPUT(y)\nEND\n";
  try {
    (void)parse_hier_bench(bad);
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 4u);
    EXPECT_NE(std::string(e.what()).find("in BLOCK(inv)"), std::string::npos);
  }
}

TEST(HierParser, RejectsInstanceCycle) {
  const std::string bad =
      "BLOCK(cell)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\nEND\n"
      "INPUT(x)\nOUTPUT(u0.y)\n"
      "u0 = INSTANCE(cell, u1.y)\nu1 = INSTANCE(cell, u0.y)\n";
  EXPECT_THROW((void)parse_hier_bench(bad), BenchParseError);
}

TEST(HierParser, StreamAndStringVariantsAgree) {
  std::istringstream in(kTwoCellDesign);
  const HierDesign streamed = parse_hier_bench_stream(in);
  const HierDesign direct = parse_hier_bench(kTwoCellDesign);
  EXPECT_EQ(write_hier_bench(streamed), write_hier_bench(direct));
}

// --- Streaming flat reader (satellite: bounded-memory parsing) ---------

TEST(BenchStreaming, StreamParseMatchesStringParse) {
  const std::string text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NAND(a, b)\ny = NOT(n)\n";
  std::istringstream in(text);
  const Netlist streamed = parse_bench_stream(in, "t");
  const Netlist direct = parse_bench(text, "t");
  EXPECT_EQ(write_bench(streamed), write_bench(direct));
}

TEST(BenchStreaming, ReassemblesLinesLongerThanTheChunkBuffer) {
  // A single statement longer than the 64 KiB read chunk but far below the
  // 8 MiB cap: the chunked reader must reassemble it losslessly.
  std::string name(100000, 'a');
  const std::string text =
      "INPUT(" + name + ")\nOUTPUT(y)\ny = BUFF(" + name + ")\n";
  std::istringstream in(text);
  const Netlist n = parse_bench_stream(in, "long");
  EXPECT_NE(n.find(name), kInvalidNode);
  EXPECT_EQ(n.gate_count(), 1u);
}

TEST(BenchStreaming, RejectsLinesOverTheByteCap) {
  std::string line(kMaxBenchLineBytes + 16, 'x');
  line.back() = '\n';
  std::istringstream in(line);
  try {
    (void)parse_bench_stream(in, "huge");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_NE(std::string(e.what()).find("byte limit"), std::string::npos);
  }
}

TEST(BenchStreaming, StringParserEnforcesTheSameCap) {
  std::string text = "INPUT(a)\n# ";
  text.append(kMaxBenchLineBytes + 16, 'x');
  text += "\n";
  EXPECT_THROW((void)parse_bench(text), BenchParseError);
}

TEST(BenchStreaming, HandlesMissingTrailingNewline) {
  std::istringstream in("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)");
  const Netlist n = parse_bench_stream(in, "t");
  EXPECT_EQ(n.gate_count(), 1u);
}

// --- Hierarchical generator --------------------------------------------

TEST(HierGenerator, DeterministicBytesForAFixedSeed) {
  HierGeneratorSpec spec;
  spec.total_gates = 4000;
  spec.seed = 42;
  const std::string once = write_hier_bench(generate_hier_circuit(spec));
  const std::string twice = write_hier_bench(generate_hier_circuit(spec));
  EXPECT_EQ(once, twice);
  spec.seed = 43;
  EXPECT_NE(write_hier_bench(generate_hier_circuit(spec)), once);
}

TEST(HierGenerator, ProducesRequestedScale) {
  HierGeneratorSpec spec;
  spec.total_gates = 4000;
  spec.block_gates = 200;
  spec.unique_blocks = 3;
  const HierDesign d = generate_hier_circuit(spec);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.blocks().size(), 3u);
  EXPECT_EQ(d.instances().size(), 20u);  // ceil(4000 / 200)
  EXPECT_GE(d.expanded_gate_count(), 4000u);
  const Netlist flat = d.flatten();
  EXPECT_NO_THROW(flat.validate());
  EXPECT_NO_THROW(levelize(flat));
}

TEST(HierGenerator, RandomWiringAlsoValidates) {
  HierGeneratorSpec spec;
  spec.total_gates = 2000;
  spec.uniform_wiring = false;
  spec.seed = 7;
  const HierDesign d = generate_hier_circuit(spec);
  EXPECT_NO_THROW(d.validate());
  EXPECT_NO_THROW((void)d.flatten());
  // Still deterministic: the rng is seeded from the spec alone.
  EXPECT_EQ(write_hier_bench(generate_hier_circuit(spec)), write_hier_bench(d));
}

TEST(HierGenerator, RoundTripsThroughHbench) {
  HierGeneratorSpec spec;
  spec.total_gates = 1000;
  const HierDesign d = generate_hier_circuit(spec);
  const std::string text = write_hier_bench(d);
  const HierDesign again = parse_hier_bench(text);
  EXPECT_EQ(write_hier_bench(again), text);
  EXPECT_EQ(again.expanded_gate_count(), d.expanded_gate_count());
}

}  // namespace
}  // namespace spsta::netlist
