// Tests for endpoint criticality probabilities, validated against the
// Monte Carlo latest-endpoint counts.

#include "core/criticality.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::core {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Criticality, SingleEndpointTakesAllNonQuietMass) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);

  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  const CriticalityResult c = endpoint_criticality(n, r);
  ASSERT_EQ(c.endpoints.size(), 1u);
  EXPECT_NEAR(c.probability[0] + c.quiet_probability, 1.0, 0.01);
  EXPECT_NEAR(c.probability[0], r.node[y].probs.toggle_probability(), 0.01);
}

TEST(Criticality, DominantEndpointWins) {
  // Two endpoints: one behind a long chain, one direct. The deep one is
  // almost always the later *when both transition*.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  NodeId chain = a;
  for (int i = 0; i < 6; ++i) {
    chain = n.add_gate(GateType::Buf, "c" + std::to_string(i), {chain});
  }
  const NodeId direct = n.add_gate(GateType::Buf, "direct", {b});
  n.mark_output(chain);
  n.mark_output(direct);

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 0.5, 0.5};  // always transitions
  const SpstaNumericResult r =
      run_spsta_numeric(n, netlist::DelayModel::unit(n), std::vector{sc});
  const CriticalityResult c = endpoint_criticality(n, r);
  ASSERT_EQ(c.endpoints.size(), 2u);
  const std::size_t deep_idx = c.endpoints[0] == chain ? 0 : 1;
  EXPECT_GT(c.probability[deep_idx], 0.95);
  EXPECT_NEAR(c.quiet_probability, 0.0, 1e-9);
}

TEST(Criticality, SumsToOneWithQuietMass) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel::unit(n), std::vector{netlist::scenario_I()});
  const CriticalityResult c = endpoint_criticality(n, r);
  const double total =
      std::accumulate(c.probability.begin(), c.probability.end(), c.quiet_probability);
  EXPECT_NEAR(total, 1.0, 0.05);  // independence + discretization slack
  for (double p : c.probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Criticality, TracksMonteCarloOnTreeCircuit) {
  // Disjoint cones -> endpoint independence holds exactly; SPSTA
  // criticalities must match the MC latest-endpoint frequencies.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c1 = n.add_input("c");
  const NodeId d1 = n.add_input("d");
  const NodeId e1 = n.add_gate(GateType::And, "e1", {a, b});
  const NodeId e2 = n.add_gate(GateType::Or, "e2", {c1, d1});
  n.mark_output(e1);
  n.mark_output(e2);

  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  SpstaOptions opt;
  opt.grid_dt = 0.02;
  const SpstaNumericResult r = run_spsta_numeric(n, d, sc, opt);
  const CriticalityResult crit = endpoint_criticality(n, r);

  mc::MonteCarloConfig cfg;
  cfg.runs = 200000;
  cfg.seed = 31;
  cfg.track_circuit_max = true;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, sc, cfg);

  EXPECT_NEAR(crit.quiet_probability,
              static_cast<double>(mcr.quiet_runs) / cfg.runs, 0.01);
  for (std::size_t i = 0; i < crit.endpoints.size(); ++i) {
    const double mc_p = static_cast<double>(mcr.critical_count[crit.endpoints[i]]) /
                        static_cast<double>(cfg.runs);
    EXPECT_NEAR(crit.probability[i], mc_p, 0.015)
        << n.node(crit.endpoints[i]).name;
  }
}

TEST(Criticality, EmptyDesign) {
  Netlist n;
  const SpstaNumericResult r = run_spsta_numeric(
      n, netlist::DelayModel(n), std::vector<netlist::SourceStats>{});
  const CriticalityResult c = endpoint_criticality(n, r);
  EXPECT_TRUE(c.endpoints.empty());
  EXPECT_EQ(c.quiet_probability, 1.0);
}

}  // namespace
}  // namespace spsta::core
