// Tests for the shared level-bucketed dirty-set helper both incremental
// engines drive their propagation waves through.

#include "util/dirty_frontier.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace spsta::util {
namespace {

TEST(DirtyFrontier, StartsEmptyAndMarksDeduplicate) {
  DirtyFrontier frontier({0, 1, 1, 2});
  EXPECT_FALSE(frontier.any());
  EXPECT_EQ(frontier.pending(), 0u);

  EXPECT_TRUE(frontier.mark(1));
  EXPECT_FALSE(frontier.mark(1));  // already pending
  EXPECT_TRUE(frontier.any());
  EXPECT_EQ(frontier.pending(), 1u);
  EXPECT_TRUE(frontier.marked(1));
  EXPECT_FALSE(frontier.marked(2));
}

TEST(DirtyFrontier, TakeLevelReturnsMarkOrderAndClearsFlags) {
  DirtyFrontier frontier({0, 1, 1, 1, 2});
  frontier.mark(3);
  frontier.mark(1);
  frontier.mark(2);

  std::vector<std::uint32_t> batch;
  frontier.take_level(1, batch);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{3, 1, 2}));  // mark order
  EXPECT_FALSE(frontier.any());
  EXPECT_FALSE(frontier.marked(3));

  // A taken id can be re-marked (the next wave's view is fresh).
  EXPECT_TRUE(frontier.mark(3));
  EXPECT_EQ(frontier.pending(), 1u);
}

TEST(DirtyFrontier, FirstLevelTracksLowestPendingBucket) {
  DirtyFrontier frontier({0, 1, 2, 3});
  frontier.mark(2);
  frontier.mark(3);
  EXPECT_EQ(frontier.first_level(), 2u);

  std::vector<std::uint32_t> batch;
  frontier.take_level(2, batch);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(frontier.first_level(), 3u);
  frontier.take_level(3, batch);
  EXPECT_FALSE(frontier.any());
}

TEST(DirtyFrontier, DrainWithInWaveMarksVisitsLevelsInOrder) {
  // Simulated propagation: taking level L may mark ids at levels > L —
  // the exact shape the engines' fanout marking produces.
  DirtyFrontier frontier({0, 0, 1, 1, 2, 3});
  frontier.mark(0);
  frontier.mark(1);

  std::vector<std::size_t> levels_seen;
  std::vector<std::uint32_t> batch;
  while (frontier.any()) {
    const std::size_t level = frontier.first_level();
    frontier.take_level(level, batch);
    ASSERT_FALSE(batch.empty());
    levels_seen.push_back(level);
    for (const std::uint32_t id : batch) {
      if (id == 0) frontier.mark(2);
      if (id == 1) frontier.mark(3);
      if (id == 2) frontier.mark(4);
      if (id == 4) frontier.mark(5);
    }
  }
  EXPECT_EQ(levels_seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(DirtyFrontier, ClearDropsAllPendingMarks) {
  DirtyFrontier frontier({0, 1, 2});
  frontier.mark(0);
  frontier.mark(2);
  frontier.clear();
  EXPECT_FALSE(frontier.any());
  EXPECT_FALSE(frontier.marked(0));
  EXPECT_FALSE(frontier.marked(2));
  // Marks after a clear start a fresh window.
  EXPECT_TRUE(frontier.mark(1));
  EXPECT_EQ(frontier.first_level(), 1u);
}

TEST(DirtyFrontier, ResetRekeysTopologyAndDropsMarks) {
  DirtyFrontier frontier({0, 1});
  frontier.mark(1);
  frontier.reset({0, 0, 5});
  EXPECT_FALSE(frontier.any());
  EXPECT_TRUE(frontier.mark(2));
  EXPECT_EQ(frontier.first_level(), 5u);
}

TEST(DirtyFrontier, MarkOutOfRangeThrows) {
  DirtyFrontier frontier({0, 1});
  EXPECT_THROW(frontier.mark(2), std::out_of_range);
  DirtyFrontier empty;
  EXPECT_THROW(empty.mark(0), std::out_of_range);
}

}  // namespace
}  // namespace spsta::util
