// Tests for deterministic (corner) STA: arrivals, required times, slack,
// WNS/TNS and corner bounds.

#include "ssta/sta.hpp"

#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::ssta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Netlist two_paths() {
  // a -> s1 ----------+
  //                   y (AND) -> PO
  // a -> l1 -> l2 ----+
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId s1 = n.add_gate(GateType::Buf, "s1", {a});
  const NodeId l1 = n.add_gate(GateType::Buf, "l1", {a});
  const NodeId l2 = n.add_gate(GateType::Buf, "l2", {l1});
  const NodeId y = n.add_gate(GateType::And, "y", {s1, l2});
  n.mark_output(y);
  return n;
}

TEST(Sta, ArrivalBoundsOnTwoPathCircuit) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const StaResult r = run_sta(n, d, 10.0);
  const NodeId y = n.find("y");
  EXPECT_DOUBLE_EQ(r.arrival[y].earliest, 2.0);  // via s1
  EXPECT_DOUBLE_EQ(r.arrival[y].latest, 3.0);    // via l1, l2
  EXPECT_DOUBLE_EQ(r.critical_delay, 3.0);
}

TEST(Sta, SlackAndWns) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const StaResult pass = run_sta(n, d, 5.0);
  EXPECT_DOUBLE_EQ(pass.wns, 2.0);
  EXPECT_DOUBLE_EQ(pass.tns, 0.0);
  EXPECT_TRUE(pass.meets_timing());
  EXPECT_DOUBLE_EQ(pass.slack[n.find("y")], 2.0);

  const StaResult fail = run_sta(n, d, 2.5);
  EXPECT_DOUBLE_EQ(fail.wns, -0.5);
  EXPECT_DOUBLE_EQ(fail.tns, -0.5);
  EXPECT_FALSE(fail.meets_timing());
}

TEST(Sta, RequiredTimesPropagateBackward) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const StaResult r = run_sta(n, d, 4.0);
  // Through y (delay 1): required at its fanins is 3.
  EXPECT_DOUBLE_EQ(r.required[n.find("s1")].latest, 3.0);
  EXPECT_DOUBLE_EQ(r.required[n.find("l2")].latest, 3.0);
  // Through the long branch: a must be ready by 4 - 1 - 1 - 1 = 1.
  EXPECT_DOUBLE_EQ(r.required[n.find("a")].latest, 1.0);
  // Slack along the long path is uniform (critical path property).
  EXPECT_DOUBLE_EQ(r.slack[n.find("l1")], 1.0);
  EXPECT_DOUBLE_EQ(r.slack[n.find("l2")], 1.0);
  // The short branch has extra slack.
  EXPECT_DOUBLE_EQ(r.slack[n.find("s1")], 2.0);
}

TEST(Sta, CriticalNodesFollowLongPath) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const StaResult r = run_sta(n, d, 3.0);  // exactly critical
  const auto crit = critical_nodes(n, r);
  // a, l1, l2, y are at worst slack 0; s1 has slack 1.
  EXPECT_EQ(crit.size(), 4u);
  for (NodeId id : crit) EXPECT_NE(id, n.find("s1"));
}

TEST(Sta, CornersWidenWithSigma) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.1);
  const StaResult nominal = run_sta(n, d, 10.0, {0.0, {0.0, 0.0}});
  const StaResult corner = run_sta(n, d, 10.0, {3.0, {0.0, 0.0}});
  const NodeId y = n.find("y");
  EXPECT_LT(corner.arrival[y].earliest, nominal.arrival[y].earliest);
  EXPECT_GT(corner.arrival[y].latest, nominal.arrival[y].latest);
  EXPECT_DOUBLE_EQ(corner.arrival[y].latest, 3.0 * (1.0 + 0.3));  // long path, late
  EXPECT_DOUBLE_EQ(corner.arrival[y].earliest, 2.0 * 0.7);        // short path, early
}

TEST(Sta, SourceArrivalWindowShiftsEverything) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const StaResult r = run_sta(n, d, 10.0, {0.0, {-1.0, 2.0}});
  const NodeId y = n.find("y");
  EXPECT_DOUBLE_EQ(r.arrival[y].earliest, 1.0);
  EXPECT_DOUBLE_EQ(r.arrival[y].latest, 5.0);
}

TEST(Sta, BoundsContainMonteCarloArrivals) {
  // Property on a benchmark: 4-sigma corner STA with a 4-sigma source
  // window must bound (essentially) every simulated arrival. On the setup
  // side mean + 3 sigma of the pooled samples must stay under the late
  // corner. The early side only gets a mean check: a node's pooled rise
  // times mix arrivals through differently-sensitized paths, and a
  // mixture's 3-sigma spread can legitimately extend below the earliest
  // *possible* arrival.
  const Netlist n = netlist::make_paper_circuit("s344");
  const netlist::DelayModel d = netlist::DelayModel::gaussian(n, 1.0, 0.05);
  const StaResult r = run_sta(n, d, 100.0, {4.0, {-4.0, 4.0}});

  mc::MonteCarloConfig cfg;
  cfg.runs = 2000;
  cfg.seed = 77;
  const auto mcr = mc::run_monte_carlo(n, d, std::vector{netlist::scenario_I()}, cfg);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    const auto& est = mcr.node[id];
    if (est.rise_time.count() > 10) {
      EXPECT_LE(est.rise_time.mean() + 3.0 * est.rise_time.stddev(),
                r.arrival[id].latest + 1e-9)
          << n.node(id).name;
      EXPECT_GE(est.rise_time.mean(), r.arrival[id].earliest - 1e-9)
          << n.node(id).name;
    }
  }
}

TEST(Sta, HoldCheckUsesEarliestArrival) {
  const Netlist n = two_paths();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  StaConfig cfg;
  cfg.hold_time = 1.5;
  const StaResult r = run_sta(n, d, 10.0, cfg);
  // Earliest endpoint arrival is 2.0 (short path): hold slack 0.5.
  EXPECT_DOUBLE_EQ(r.shortest_delay, 2.0);
  EXPECT_DOUBLE_EQ(r.hold_wns, 0.5);
  EXPECT_TRUE(r.meets_timing());

  StaConfig tight = cfg;
  tight.hold_time = 2.5;
  const StaResult v = run_sta(n, d, 10.0, tight);
  EXPECT_DOUBLE_EQ(v.hold_wns, -0.5);
  EXPECT_FALSE(v.meets_timing());
  EXPECT_DOUBLE_EQ(v.wns, 7.0);  // setup still fine
}

TEST(Sta, EmptyDesign) {
  Netlist n;
  const StaResult r = run_sta(n, netlist::DelayModel(n), 1.0);
  EXPECT_EQ(r.wns, 0.0);
  EXPECT_TRUE(r.meets_timing());
}

}  // namespace
}  // namespace spsta::ssta
