// Tests for distribution-distance metrics, plus the shape-level
// SPSTA-vs-Monte-Carlo validation they enable.

#include "stats/compare.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"
#include "stats/normal.hpp"

namespace spsta::stats {
namespace {

PiecewiseDensity gauss(double mean, double var, std::size_t pts = 801) {
  return PiecewiseDensity::from_gaussian_auto({mean, var}, 8.0, pts);
}

TEST(Compare, IdenticalDensitiesAreZeroDistance) {
  const PiecewiseDensity d = gauss(1.0, 2.0);
  EXPECT_NEAR(ks_distance(d, d), 0.0, 1e-12);
  EXPECT_NEAR(wasserstein_distance(d, d), 0.0, 1e-12);
  EXPECT_NEAR(total_variation_distance(d, d), 0.0, 1e-12);
}

TEST(Compare, WassersteinOfShiftIsTheShift) {
  const PiecewiseDensity a = gauss(0.0, 1.0);
  const PiecewiseDensity b = gauss(2.5, 1.0);
  EXPECT_NEAR(wasserstein_distance(a, b), 2.5, 0.02);
}

TEST(Compare, KsOfShiftedGaussians) {
  // KS of N(0,1) vs N(d,1) is 2*Phi(d/2) - 1.
  const double d = 1.0;
  const PiecewiseDensity a = gauss(0.0, 1.0);
  const PiecewiseDensity b = gauss(d, 1.0);
  const double expected = 2.0 * normal_cdf(d / 2.0) - 1.0;
  EXPECT_NEAR(ks_distance(a, b), expected, 0.01);
}

TEST(Compare, DisjointSupportsGiveUnitTv) {
  const PiecewiseDensity a = gauss(0.0, 0.01);
  const PiecewiseDensity b = gauss(100.0, 0.01);
  EXPECT_NEAR(total_variation_distance(a, b), 1.0, 0.01);
  EXPECT_NEAR(ks_distance(a, b), 1.0, 0.01);
}

TEST(Compare, MassInsensitiveViaNormalization) {
  const PiecewiseDensity a = gauss(0.0, 1.0);
  const PiecewiseDensity b = a.scaled(0.2);
  EXPECT_NEAR(ks_distance(a, b), 0.0, 1e-9);
}

TEST(Compare, ZeroMassPairsCompareEqual) {
  const PiecewiseDensity z = PiecewiseDensity::zero({0.0, 0.1, 16});
  EXPECT_EQ(ks_distance(z, z), 0.0);
  EXPECT_EQ(wasserstein_distance(z, PiecewiseDensity{}), 0.0);
}

TEST(Compare, MetricsOrderDistributionsSensibly) {
  const PiecewiseDensity ref = gauss(0.0, 1.0);
  const PiecewiseDensity near = gauss(0.2, 1.0);
  const PiecewiseDensity far = gauss(1.5, 1.0);
  EXPECT_LT(ks_distance(ref, near), ks_distance(ref, far));
  EXPECT_LT(wasserstein_distance(ref, near), wasserstein_distance(ref, far));
  EXPECT_LT(total_variation_distance(ref, near), total_variation_distance(ref, far));
}

// The shape-level SPSTA validation: the numeric engine's conditional
// arrival pdf at a tree circuit's output matches the MC histogram not
// just in moments but in KS/Wasserstein distance.
TEST(Compare, SpstaTopShapeMatchesMonteCarlo) {
  using namespace spsta;
  netlist::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto c = n.add_input("c");
  const auto g1 = n.add_gate(netlist::GateType::And, "g1", {a, b});
  const auto g2 = n.add_gate(netlist::GateType::Or, "g2", {g1, c});
  n.mark_output(g2);

  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  core::SpstaOptions opt;
  opt.grid_dt = 0.02;
  const core::SpstaNumericResult spsta = core::run_spsta_numeric(n, d, sc, opt);

  mc::MonteCarloConfig cfg;
  cfg.runs = 200000;
  cfg.seed = 3;
  cfg.histogram_node = g2;
  cfg.histogram_lo = -6.0;
  cfg.histogram_hi = 8.0;
  cfg.histogram_bins = 140;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, d, sc, cfg);

  const PiecewiseDensity mc_pdf = mcr.histogram->to_density();
  EXPECT_LT(ks_distance(spsta.node[g2].rise, mc_pdf), 0.02);
  EXPECT_LT(wasserstein_distance(spsta.node[g2].rise, mc_pdf), 0.05);

  // A moment-matched Gaussian is measurably *worse* in shape: the true
  // output density is a skewed mixture.
  const PiecewiseDensity gaussian_fit = PiecewiseDensity::from_gaussian_auto(
      spsta.node[g2].rise.moments(), 8.0, 801);
  EXPECT_GT(ks_distance(gaussian_fit, mc_pdf),
            2.0 * ks_distance(spsta.node[g2].rise, mc_pdf));
}

}  // namespace
}  // namespace spsta::stats
