// Tests for switching-scenario enumeration — the WEIGHTED SUM's terms.
// Key invariant: pattern weights for each output direction sum exactly to
// the four-value transition probabilities (paper Eq. 11 vs Eq. 9/10).

#include "core/patterns.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "sigprob/four_value_prop.hpp"
#include "stats/rng.hpp"

namespace spsta::core {
namespace {

using netlist::FourValueProbs;
using netlist::GateType;

TEST(Patterns, TwoInputAndMatchesEquation12) {
  // Paper Eq. 12: phi_r(y) = Pr1*P1_2*phi(x1) + P1_1*Pr2*phi(x2)
  //                        + Pr1*Pr2*phi(MAX).
  const FourValueProbs p{0.25, 0.25, 0.25, 0.25};
  const std::vector<FourValueProbs> inputs{p, p};
  const auto patterns = enumerate_switch_patterns(GateType::And, inputs);

  double w_single_rise = 0.0, w_double_rise = 0.0;
  for (const SwitchPattern& sp : patterns) {
    if (!sp.output_rising) continue;
    const int k = __builtin_popcount(sp.switching_mask);
    if (k == 1) {
      w_single_rise += sp.weight;
      EXPECT_EQ(sp.rising_mask, sp.switching_mask);  // single riser
    } else {
      EXPECT_EQ(sp.op, SettleOp::Max);
      w_double_rise += sp.weight;
    }
  }
  EXPECT_NEAR(w_single_rise, 2.0 * 0.25 * 0.25, 1e-12);  // Pr*P1 twice
  EXPECT_NEAR(w_double_rise, 0.25 * 0.25, 1e-12);        // Pr*Pr
}

TEST(Patterns, AndFallUsesMin) {
  const FourValueProbs p{0.25, 0.25, 0.25, 0.25};
  const auto patterns =
      enumerate_switch_patterns(GateType::And, std::vector{p, p});
  for (const SwitchPattern& sp : patterns) {
    if (sp.output_rising) continue;
    if (__builtin_popcount(sp.switching_mask) >= 2) {
      EXPECT_EQ(sp.rising_mask, 0u);  // falling set
      EXPECT_EQ(sp.op, SettleOp::Min);
    }
  }
}

TEST(Patterns, OrDirectionsAreDual) {
  const FourValueProbs p{0.25, 0.25, 0.25, 0.25};
  const auto patterns = enumerate_switch_patterns(GateType::Or, std::vector{p, p});
  for (const SwitchPattern& sp : patterns) {
    if (__builtin_popcount(sp.switching_mask) < 2) continue;
    if (sp.output_rising) {
      EXPECT_EQ(sp.op, SettleOp::Min);  // first riser sets an OR
    } else {
      EXPECT_EQ(sp.op, SettleOp::Max);  // last faller clears it
    }
  }
}

TEST(Patterns, XorAlwaysSettlesAtLastEvent) {
  const FourValueProbs p{0.1, 0.2, 0.4, 0.3};
  const auto patterns = enumerate_switch_patterns(GateType::Xor, std::vector{p, p, p});
  for (const SwitchPattern& sp : patterns) {
    EXPECT_EQ(sp.op, SettleOp::Max);
    EXPECT_GT(__builtin_popcount(sp.switching_mask), 0);
  }
}

TEST(Patterns, GlitchScenariosExcluded) {
  // AND with one rising and one falling input yields no output transition,
  // so no pattern may carry that switching combination.
  const FourValueProbs p{0.25, 0.25, 0.25, 0.25};
  const auto patterns = enumerate_switch_patterns(GateType::And, std::vector{p, p});
  for (const SwitchPattern& sp : patterns) {
    if (sp.switching_mask == 0b11u) {
      EXPECT_TRUE(sp.rising_mask == 0b11u || sp.rising_mask == 0u)
          << "mixed-direction AND scenario should have been glitch-filtered";
    }
  }
}

// The load-bearing invariant across gate types, fanins and distributions.
class PatternWeightSum
    : public ::testing::TestWithParam<std::tuple<GateType, std::size_t, std::uint64_t>> {};

TEST_P(PatternWeightSum, WeightsSumToTransitionProbabilities) {
  const auto [type, fanin, seed] = GetParam();
  stats::Xoshiro256 rng(seed);
  std::vector<FourValueProbs> inputs(fanin);
  for (auto& p : inputs) {
    p = FourValueProbs{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()}
            .normalized();
  }
  const auto patterns = enumerate_switch_patterns(type, inputs);
  double rise = 0.0, fall = 0.0;
  for (const SwitchPattern& sp : patterns) {
    ASSERT_GT(sp.weight, 0.0);
    ASSERT_NE(sp.switching_mask, 0u);
    ASSERT_EQ(sp.rising_mask & ~sp.switching_mask, 0u);
    (sp.output_rising ? rise : fall) += sp.weight;
  }
  const FourValueProbs expected = sigprob::gate_four_value(type, inputs);
  EXPECT_NEAR(rise, expected.pr, 1e-10);
  EXPECT_NEAR(fall, expected.pf, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, PatternWeightSum,
    ::testing::Combine(::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor,
                                         GateType::Not, GateType::Buf),
                       ::testing::Values<std::size_t>(1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(2, 19, 77)));

TEST(Patterns, RejectsWideGates) {
  std::vector<FourValueProbs> wide(17);
  EXPECT_THROW((void)enumerate_switch_patterns(GateType::And, wide),
               std::invalid_argument);
}

TEST(Patterns, WideSparseFaninEnumeratesFast) {
  // Regression for the fanin-cap hang: enumeration used to iterate all
  // 4^n codes regardless of support, so a 12-input gate walked 16.7M
  // combinations (and 14+ inputs ran for minutes). With support pruning
  // this 12-input gate has 4 * 2^11 = 8192 joint assignments and must
  // finish in milliseconds; ctest's timeout catches a reintroduced hang.
  std::vector<FourValueProbs> inputs(12, FourValueProbs{0.6, 0.4, 0.0, 0.0});
  inputs[0] = FourValueProbs{0.2, 0.2, 0.3, 0.3};  // the only switching input
  const auto patterns = enumerate_switch_patterns(GateType::And, inputs);
  double rise = 0.0, fall = 0.0;
  for (const SwitchPattern& sp : patterns) {
    EXPECT_EQ(sp.switching_mask, 1u);  // only input 0 can switch
    (sp.output_rising ? rise : fall) += sp.weight;
  }
  const FourValueProbs expected = sigprob::gate_four_value(GateType::And, inputs);
  EXPECT_NEAR(rise, expected.pr, 1e-12);
  EXPECT_NEAR(fall, expected.pf, 1e-12);
}

TEST(Patterns, RejectsDenseJointSupportInsteadOfHanging) {
  // 16 inputs with full four-value support: 4^16 = 2^32 joint assignments
  // exceed the 2^26 cap, which must be reported as an error up front — not
  // discovered as a multi-minute enumeration.
  std::vector<FourValueProbs> dense(16, FourValueProbs{0.25, 0.25, 0.25, 0.25});
  EXPECT_THROW((void)enumerate_switch_patterns(GateType::And, dense),
               std::invalid_argument);
}

TEST(Patterns, ImpossibleInputYieldsNoPatterns) {
  // An input with an all-zero support (invalid distribution) cannot occur;
  // the enumeration returns no scenarios rather than fabricating weights.
  std::vector<FourValueProbs> inputs{FourValueProbs{0.0, 0.0, 0.0, 0.0},
                                     FourValueProbs{0.25, 0.25, 0.25, 0.25}};
  EXPECT_TRUE(enumerate_switch_patterns(GateType::And, inputs).empty());
}

}  // namespace
}  // namespace spsta::core
