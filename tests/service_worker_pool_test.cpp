// Tests for the sharded worker pool: content-hash affinity routing,
// admission control (bounded queues shed with a structured `overloaded`
// error carrying retry_after_ms), deadline shedding at dequeue, drain
// semantics, and the pooled serve runtime's in-order response writing.

#include <chrono>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "service/daemon.hpp"
#include "service/session.hpp"
#include "service/worker_pool.hpp"

namespace spsta::service {
namespace {

Request parse_ok(const std::string& line) {
  auto parsed = parse_request(line);
  EXPECT_TRUE(std::holds_alternative<Request>(parsed)) << line;
  return std::get<Request>(std::move(parsed));
}

TEST(ServiceWorkerPool, AffinityRoutesLoadAndItsSessionToOneShard) {
  AnalysisService service;
  WorkerPool pool(service, {.shards = 8, .queue_capacity = 16});

  // The load request routes on the content hash of what it loads...
  const std::string load_line = R"({"id":1,"cmd":"load","circuit":"s27"})";
  const unsigned load_shard = pool.route_shard(parse_ok(load_line));

  // ...and once loaded, every request naming the resulting session key
  // routes to the SAME shard: that is the affinity contract that keeps a
  // design's compiled plan hot on one worker.
  Response loaded = pool.submit(load_line).get();
  ASSERT_TRUE(loaded.ok) << loaded.to_line();
  const std::string key = loaded.body.find("session")->as_string();
  const unsigned analyze_shard = pool.route_shard(
      parse_ok(R"({"cmd":"analyze","session":")" + key + R"("})"));
  EXPECT_EQ(analyze_shard, load_shard);

  // Identical load submitted again (a different client, same content):
  // same shard, and the session store dedups to one compiled plan.
  EXPECT_EQ(pool.route_shard(parse_ok(load_line)), load_shard);
  Response reloaded = pool.submit(load_line).get();
  ASSERT_TRUE(reloaded.ok);
  EXPECT_EQ(reloaded.body.find("session")->as_string(), key);
  EXPECT_GE(service.store().plan_hits(), 1u);
}

TEST(ServiceWorkerPool, ResponsesResolveThroughFuturesWithCorrectIds) {
  AnalysisService service;
  WorkerPool pool(service, {.shards = 4, .queue_capacity = 64});

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(
        pool.submit(R"({"id":)" + std::to_string(i) + R"(,"cmd":"ping"})"));
  }
  for (int i = 0; i < 24; ++i) {
    const Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(r.ok) << r.to_line();
    EXPECT_EQ(r.id.as_number(), static_cast<double>(i));
  }
  EXPECT_EQ(pool.stats().executed, 24u);
  EXPECT_EQ(pool.stats().rejected_overload, 0u);
}

TEST(ServiceWorkerPool, FullQueueShedsWithOverloadedAndRetryAfterHint) {
  AnalysisService service;
  // One shard, minimal queue: occupy the worker with a genuinely slow
  // request (Monte Carlo with a large run count), fill the queue, then
  // every further submit must be shed immediately.
  WorkerPool pool(service, {.shards = 1, .queue_capacity = 1});

  Response loaded = pool.submit(R"({"cmd":"load","circuit":"s386"})").get();
  ASSERT_TRUE(loaded.ok) << loaded.to_line();
  const std::string key = loaded.body.find("session")->as_string();

  const std::string slow = R"({"id":"slow","cmd":"analyze","session":")" + key +
                           R"(","engine":"mc","params":{"runs":20000}})";
  std::vector<std::future<Response>> slow_futures;
  // Enough slow requests that at least one is still queued whenever the
  // burst below arrives: worker busy + queue occupied = admission closed.
  for (int i = 0; i < 6; ++i) slow_futures.push_back(pool.submit(slow));

  std::uint64_t shed = 0;
  std::vector<std::future<Response>> burst;
  for (int i = 0; i < 32; ++i) {
    burst.push_back(
        pool.submit(R"({"id":)" + std::to_string(i) + R"(,"cmd":"ping"})"));
  }
  for (auto& f : burst) {
    const Response r = f.get();
    if (r.ok) continue;
    EXPECT_EQ(r.error_code(), "overloaded");
    const Json* hint = r.body.find("retry_after_ms");
    ASSERT_NE(hint, nullptr) << r.to_line();
    EXPECT_GT(hint->as_number(), 0.0);
    ++shed;
  }
  EXPECT_GT(shed, 0u);

  // The slow submissions themselves overflow the 1-deep queue: some shed
  // too. Every admitted one completes; every response is one of the two.
  std::uint64_t slow_ok = 0, slow_shed = 0;
  for (auto& f : slow_futures) {
    const Response r = f.get();
    if (r.ok) {
      ++slow_ok;
    } else {
      EXPECT_EQ(r.error_code(), "overloaded") << r.to_line();
      ++slow_shed;
    }
  }
  EXPECT_GE(slow_ok, 1u);  // at least the one the worker was running
  EXPECT_EQ(pool.stats().rejected_overload, shed + slow_shed);
  pool.drain();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ServiceWorkerPool, StaleRequestsAreShedAtDequeue) {
  AnalysisService service;
  WorkerPool pool(service, {.shards = 2, .queue_capacity = 8});

  // Submit with an enqueue stamp far in the past and a tiny deadline: the
  // worker must shed at dequeue, not run the command.
  const auto long_ago =
      std::chrono::steady_clock::now() - std::chrono::seconds(30);
  const Response r =
      pool.submit(R"({"id":1,"cmd":"ping","deadline_ms":5})", long_ago).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code(), "deadline_exceeded");
  EXPECT_EQ(pool.stats().deadline_shed, 1u);
  EXPECT_EQ(pool.stats().executed, 0u);
}

TEST(ServiceWorkerPool, DrainWaitsForEveryAcceptedRequest) {
  AnalysisService service;
  WorkerPool pool(service, {.shards = 4, .queue_capacity = 256});
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit(R"({"cmd":"ping"})"));
  }
  pool.drain();
  // After drain every accepted future is ready — no waiting in get().
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().ok);
  }
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ServiceWorkerPool, MalformedLinesResolveImmediatelyWithParseError) {
  AnalysisService service;
  WorkerPool pool(service, {.shards = 2, .queue_capacity = 8});
  const Response r = pool.submit("}{ not json").get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code(), "parse_error");
}

TEST(ServiceWorkerPool, StatsIdentityHoldsAcrossEveryOutcomeClass) {
  // Every line handed to submit() must resolve through exactly one of the
  // five outcome counters: executed, rejected_overload, deadline_shed,
  // parse_errors, shutdown_shed. Drive the pool through all five and
  // assert the books balance — this is the identity the bench harness and
  // CI check on every service_load run.
  AnalysisService service;
  WorkerPool pool(service, {.shards = 1, .queue_capacity = 1});

  // deadline_shed: an already-stale request shed at dequeue (queue empty,
  // so it cannot be confused with an admission reject).
  const auto long_ago =
      std::chrono::steady_clock::now() - std::chrono::seconds(30);
  ASSERT_EQ(pool.submit(R"({"cmd":"ping","deadline_ms":5})", long_ago)
                .get()
                .error_code(),
            "deadline_exceeded");

  // parse_errors: answered at submit without touching a shard queue.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(pool.submit("}{ not json").get().error_code(), "parse_error");
  }

  // executed + rejected_overload: occupy the single worker with slow Monte
  // Carlo work, then burst past the 1-deep queue.
  Response loaded = pool.submit(R"({"cmd":"load","circuit":"s386"})").get();
  ASSERT_TRUE(loaded.ok) << loaded.to_line();
  const std::string key = loaded.body.find("session")->as_string();
  const std::string slow = R"({"cmd":"analyze","session":")" + key +
                           R"(","engine":"mc","params":{"runs":20000}})";
  std::vector<std::future<Response>> inflight;
  for (int i = 0; i < 4; ++i) inflight.push_back(pool.submit(slow));
  for (int i = 0; i < 16; ++i) {
    inflight.push_back(pool.submit(R"({"cmd":"ping"})"));
  }

  // shutdown_shed: once accepting stops, new submissions resolve
  // immediately while everything already queued still completes.
  pool.stop_accepting();
  for (int i = 0; i < 2; ++i) {
    const Response r = pool.submit(R"({"cmd":"ping"})").get();
    EXPECT_EQ(r.error_code(), "overloaded");
    EXPECT_NE(r.body.find("message")->as_string().find("shutting down"),
              std::string::npos);
  }
  for (auto& f : inflight) (void)f.get();
  pool.drain();

  const WorkerPoolStats stats = pool.stats();
  EXPECT_GE(stats.executed, 2u);  // the load + at least one admitted slow
  EXPECT_GT(stats.rejected_overload, 0u);
  EXPECT_EQ(stats.deadline_shed, 1u);
  EXPECT_EQ(stats.parse_errors, 3u);
  EXPECT_EQ(stats.shutdown_shed, 2u);
  EXPECT_EQ(stats.submitted, stats.resolved())
      << "identity broken: submitted=" << stats.submitted
      << " executed=" << stats.executed
      << " rejected=" << stats.rejected_overload
      << " deadline=" << stats.deadline_shed
      << " parse=" << stats.parse_errors
      << " shutdown=" << stats.shutdown_shed;
}

TEST(ServiceWorkerPool, PathLoadsSplitRoutingFromTheSessionTheyCreate) {
  // Documented KNOWN MISS in route_shard: a path load routes on
  // fnv1a64(path) because the content is not in hand at routing time, but
  // the session it creates is keyed on the CONTENT hash — so later
  // requests naming that session generally land on a different shard.
  // This test quantifies the split and pins the contrast: text/circuit
  // loads colocate with their session, path loads need not.
  AnalysisService service;
  WorkerPool pool(service, {.shards = 16, .queue_capacity = 32});
  const unsigned n = 16;

  const std::string text{netlist::s27_bench_text()};
  const std::string dir = ::testing::TempDir();

  // Write the same netlist under several names and pick one whose path
  // hash disagrees with the content hash modulo the shard count — with 16
  // shards one of a handful of candidates always splits.
  std::string split_path;
  const std::uint64_t content_shard =
      pool.route_shard(parse_ok(R"({"cmd":"load","format":"bench","text":)" +
                                Json(text).dump() + "}"));
  for (const char* name : {"a.bench", "b.bench", "c.bench", "d.bench",
                           "e.bench", "f.bench", "g.bench", "h.bench"}) {
    const std::string candidate = dir + "/" + name;
    if (fnv1a64(candidate) % n != content_shard) {
      split_path = candidate;
      break;
    }
  }
  ASSERT_FALSE(split_path.empty());
  {
    std::ofstream out(split_path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
  }

  const std::string path_line =
      R"({"cmd":"load","path":)" + Json(split_path).dump() + "}";
  const unsigned path_shard = pool.route_shard(parse_ok(path_line));
  EXPECT_EQ(path_shard, fnv1a64(split_path) % n);

  Response loaded = pool.submit(path_line).get();
  ASSERT_TRUE(loaded.ok) << loaded.to_line();
  const std::string key = loaded.body.find("session")->as_string();

  // The split: the session's traffic routes on the content hash, not the
  // path hash the load itself used.
  const unsigned session_shard = pool.route_shard(
      parse_ok(R"({"cmd":"analyze","session":")" + key + R"("})"));
  EXPECT_EQ(session_shard, content_shard);
  EXPECT_NE(session_shard, path_shard)
      << "path " << split_path << " was chosen to split, but routed with "
      << "its session — route_shard's path rule changed";

  // Contrast: an inline-text load of the identical netlist colocates with
  // the session, and dedups onto the same compiled plan either way.
  Response by_text = pool
                         .submit(R"({"cmd":"load","format":"bench","text":)" +
                                 Json(text).dump() + "}")
                         .get();
  ASSERT_TRUE(by_text.ok) << by_text.to_line();
  EXPECT_EQ(by_text.body.find("session")->as_string(), key);
  EXPECT_EQ(service.store().size(), 1u);
  pool.drain();
}

TEST(ServiceDaemonPooled, ServeWritesResponsesInSubmissionOrder) {
  // The pooled runtime completes requests out of order across shards but
  // must write them back in submission order — same wire contract as the
  // batch runtime.
  std::string script;
  script += R"({"id":0,"cmd":"load","circuit":"s27"})" "\n";
  for (int i = 1; i <= 20; ++i) {
    script += R"({"id":)" + std::to_string(i) + R"(,"cmd":"ping"})" "\n";
  }
  script += R"({"id":21,"cmd":"shutdown"})" "\n";
  std::istringstream in(script);
  std::ostringstream out;
  AnalysisService service;
  const ServeReport report =
      serve(in, out, service, {.workers = 4, .queue_capacity = 64});

  EXPECT_TRUE(report.shutdown);
  EXPECT_EQ(report.requests, 22u);

  std::vector<std::string> replies;
  std::istringstream echo(out.str());
  for (std::string line; std::getline(echo, line);) replies.push_back(line);
  ASSERT_EQ(replies.size(), 22u);
  for (int i = 0; i < 22; ++i) {
    EXPECT_NE(replies[static_cast<std::size_t>(i)].find(
                  "\"id\":" + std::to_string(i)),
              std::string::npos)
        << replies[static_cast<std::size_t>(i)];
  }
}

}  // namespace
}  // namespace spsta::service
