// Tests for direction-dependent (rise/fall) gate delays across every
// engine: the model, SSTA, SPSTA (moment + numeric), canonical SSTA,
// corner STA, and the Monte Carlo ground truth.

#include <cmath>

#include <gtest/gtest.h>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"
#include "ssta/canonical_ssta.hpp"
#include "ssta/ssta.hpp"
#include "ssta/sta.hpp"

namespace spsta {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(DirectionalDelay, ModelFallbackAndOverrides) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::Buf, "g", {a});
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  EXPECT_FALSE(d.is_directional(g));
  EXPECT_EQ(d.delay(g, true).mean, 1.0);

  d.set_rise_delay(g, {1.5, 0.0});
  EXPECT_TRUE(d.is_directional(g));
  EXPECT_EQ(d.delay(g, true).mean, 1.5);
  EXPECT_EQ(d.delay(g, false).mean, 1.0);  // falls back to common
  // means() reports the worse direction.
  EXPECT_EQ(d.means()[g], 1.5);
  // set_delay clears the overrides.
  d.set_delay(g, {2.0, 0.0});
  EXPECT_FALSE(d.is_directional(g));
  EXPECT_EQ(d.delay(g, true).mean, 2.0);
}

TEST(DirectionalDelay, SstaUsesMatchingLane) {
  // Inverter: output rise (from input fall) uses the rise delay.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId inv = n.add_gate(GateType::Not, "inv", {a});
  netlist::DelayModel d = netlist::DelayModel::unit(n);
  d.set_rise_delay(inv, {2.0, 0.0});
  d.set_fall_delay(inv, {0.5, 0.0});

  netlist::SourceStats sc;
  sc.rise_arrival = {0.0, 1.0};
  sc.fall_arrival = {0.0, 1.0};
  const ssta::SstaResult r = ssta::run_ssta(n, d, std::vector{sc});
  EXPECT_DOUBLE_EQ(r.arrival[inv].rise.mean, 2.0);  // input fall + rise delay
  EXPECT_DOUBLE_EQ(r.arrival[inv].fall.mean, 0.5);
}

TEST(DirectionalDelay, SpstaMomentMatchesMonteCarlo) {
  // Asymmetric buffer chain: rising transitions accumulate the rise
  // delays, falling ones the fall delays.
  Netlist n;
  NodeId prev = n.add_input("a");
  netlist::DelayModel d(n);
  std::vector<NodeId> gates;
  for (int i = 0; i < 3; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
    gates.push_back(prev);
  }
  n.mark_output(prev);
  netlist::DelayModel dm = netlist::DelayModel::unit(n);
  for (NodeId g : gates) {
    dm.set_rise_delay(g, {1.4, 0.0});
    dm.set_fall_delay(g, {0.6, 0.0});
  }

  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const core::SpstaResult spsta = core::run_spsta_moment(n, dm, sc);
  EXPECT_NEAR(spsta.node[prev].rise.arrival.mean, 3 * 1.4, 1e-9);
  EXPECT_NEAR(spsta.node[prev].fall.arrival.mean, 3 * 0.6, 1e-9);

  mc::MonteCarloConfig cfg;
  cfg.runs = 30000;
  cfg.seed = 4;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, dm, sc, cfg);
  EXPECT_NEAR(mcr.node[prev].rise_time.mean(), 3 * 1.4, 0.03);
  EXPECT_NEAR(mcr.node[prev].fall_time.mean(), 3 * 0.6, 0.03);
}

TEST(DirectionalDelay, NumericEngineAgrees) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::Buf, "g", {a});
  n.mark_output(g);
  netlist::DelayModel dm = netlist::DelayModel::unit(n);
  dm.set_rise_delay(g, {2.0, 0.0});
  dm.set_fall_delay(g, {0.5, 0.0});
  const core::SpstaNumericResult r = core::run_spsta_numeric(
      n, dm, std::vector{netlist::scenario_I()});
  EXPECT_NEAR(r.node[g].rise.mean(), 2.0, 0.02);
  EXPECT_NEAR(r.node[g].fall.mean(), 0.5, 0.02);
}

TEST(DirectionalDelay, CanonicalSstaAgrees) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::Buf, "g", {a});
  n.mark_output(g);
  netlist::DelayModel dm = netlist::DelayModel::unit(n);
  dm.set_rise_delay(g, {2.0, 0.04});
  dm.set_fall_delay(g, {0.5, 0.01});
  netlist::SourceStats sc;
  sc.rise_arrival = {0.0, 0.0};
  sc.fall_arrival = {0.0, 0.0};
  const ssta::CanonicalSstaResult r =
      ssta::run_canonical_ssta(n, dm, std::vector{sc});
  EXPECT_NEAR(r.arrival[g].rise.mean(), 2.0, 1e-9);
  EXPECT_NEAR(r.arrival[g].rise.variance(), 0.04, 1e-9);
  EXPECT_NEAR(r.arrival[g].fall.mean(), 0.5, 1e-9);
}

TEST(DirectionalDelay, CornerStaBoundsBothDirections) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::Buf, "g", {a});
  n.mark_output(g);
  netlist::DelayModel dm = netlist::DelayModel::unit(n);
  dm.set_rise_delay(g, {2.0, 0.0});
  dm.set_fall_delay(g, {0.5, 0.0});
  const ssta::StaResult r = ssta::run_sta(n, dm, 10.0);
  EXPECT_DOUBLE_EQ(r.arrival[g].latest, 2.0);
  EXPECT_DOUBLE_EQ(r.arrival[g].earliest, 0.5);
}

TEST(DirectionalDelay, McHonorsDirectionPerGate) {
  // NAND with always-rising inputs produces a falling output: only the
  // fall delay matters.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId g = n.add_gate(GateType::Nand, "g", {a, b});
  n.mark_output(g);
  netlist::DelayModel dm = netlist::DelayModel::unit(n);
  dm.set_rise_delay(g, {9.0, 0.0});  // must not appear in results
  dm.set_fall_delay(g, {0.5, 0.0});

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};
  sc.rise_arrival = {0.0, 1.0};
  mc::MonteCarloConfig cfg;
  cfg.runs = 20000;
  cfg.seed = 12;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(n, dm, std::vector{sc}, cfg);
  EXPECT_EQ(mcr.node[g].rise_time.count(), 0u);
  // fall arrival = max of two N(0,1) + 0.5.
  EXPECT_NEAR(mcr.node[g].fall_time.mean(), 1.0 / std::sqrt(M_PI) + 0.5, 0.03);
}

}  // namespace
}  // namespace spsta
