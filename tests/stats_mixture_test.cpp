// Tests for Gaussian mixtures — the moment-engine WEIGHTED SUM carrier.

#include "stats/mixture.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace spsta::stats {
namespace {

TEST(Mixture, EmptyHasZeroMass) {
  GaussianMixture m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.mass(), 0.0);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
}

TEST(Mixture, SingleComponentPassesThrough) {
  GaussianMixture m;
  m.add(0.4, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.mass(), 0.4);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.variance(), 3.0);
}

TEST(Mixture, ZeroWeightIgnored) {
  GaussianMixture m;
  m.add(0.0, {100.0, 1.0});
  m.add(-1.0, {50.0, 1.0});
  EXPECT_TRUE(m.empty());
}

TEST(Mixture, LawOfTotalVariance) {
  // 50/50 mix of N(-1, 1) and N(1, 4):
  // mean = 0, var = E[var] + var[means] = 2.5 + 1 = 3.5.
  GaussianMixture m;
  m.add(0.5, {-1.0, 1.0});
  m.add(0.5, {1.0, 4.0});
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 3.5);
}

TEST(Mixture, UnnormalizedWeightsUseRatios) {
  GaussianMixture m;
  m.add(2.0, {0.0, 1.0});
  m.add(6.0, {4.0, 1.0});
  EXPECT_DOUBLE_EQ(m.mass(), 8.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);  // (2*0 + 6*4)/8
}

TEST(Mixture, PdfIsWeightedSumOfComponents) {
  GaussianMixture m;
  const Gaussian a{0.0, 1.0};
  const Gaussian b{3.0, 1.0};
  m.add(0.3, a);
  m.add(0.7, b);
  for (double x : {-1.0, 0.0, 1.5, 3.0}) {
    EXPECT_NEAR(m.pdf(x), 0.3 * a.pdf(x) + 0.7 * b.pdf(x), 1e-14);
    EXPECT_NEAR(m.cdf(x), 0.3 * a.cdf(x) + 0.7 * b.cdf(x), 1e-14);
  }
}

TEST(Mixture, MomentsMatchSampling) {
  GaussianMixture m;
  m.add(0.2, {-2.0, 0.25});
  m.add(0.5, {0.0, 1.0});
  m.add(0.3, {5.0, 4.0});

  Xoshiro256 rng(33);
  RunningMoments mom;
  const std::vector<double> weights{0.2, 0.5, 0.3};
  for (int i = 0; i < 400000; ++i) {
    switch (rng.categorical(weights)) {
      case 0: mom.add(rng.normal(-2.0, 0.5)); break;
      case 1: mom.add(rng.normal(0.0, 1.0)); break;
      default: mom.add(rng.normal(5.0, 2.0)); break;
    }
  }
  EXPECT_NEAR(m.mean(), mom.mean(), 0.02);
  EXPECT_NEAR(m.variance(), mom.variance(), 0.06);
}

TEST(Mixture, ConstructorDropsNonPositiveWeights) {
  GaussianMixture m(std::vector<MixtureComponent>{{0.5, {1.0, 1.0}}, {0.0, {9.0, 1.0}}});
  EXPECT_DOUBLE_EQ(m.mass(), 0.5);
}

}  // namespace
}  // namespace spsta::stats
