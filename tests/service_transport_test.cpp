// Tests for the socket transport (ROADMAP item 1, DESIGN.md §15): the
// multi-connection listener in front of the sharded worker pool, JSON
// lines and length-prefixed binary frames side by side, the 8 MiB cap on
// the wire, per-connection shedding, graceful shutdown, and the
// acceptance bar for the binary waveform path — an n=8192-grid density
// fetched as a raw f64 frame must equal the JSON-lines answer bit for bit.

#include <atomic>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/frame.hpp"
#include "service/json.hpp"
#include "service/transport/client.hpp"
#include "service/transport/server.hpp"

namespace spsta::service::transport {
namespace {

/// A listening server on an ephemeral loopback port plus its serve thread.
class ServerFixture {
 public:
  explicit ServerFixture(SocketServerOptions options = {.workers = 2,
                                                        .queue_capacity = 64})
      : server_(service_, options) {
    port_ = server_.listen();
    thread_ = std::thread([this] { report_ = server_.serve(); });
  }

  ~ServerFixture() { stop(); }

  void stop() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] SocketServer& server() { return server_; }
  [[nodiscard]] const SocketServerReport& report() const { return report_; }

 private:
  AnalysisService service_;
  SocketServer server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  SocketServerReport report_;
};

Json parsed(const std::string& line) { return Json::parse(line); }

bool response_ok(const std::string& line) {
  const Json doc = parsed(line);
  const Json* ok = doc.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_code_of(const std::string& line) {
  const Json doc = parsed(line);
  const Json* error = doc.find("error");
  if (error == nullptr) return "";
  const Json* code = error->find("code");
  return code != nullptr && code->is_string() ? code->as_string() : "";
}

std::string session_of(const std::string& line) {
  const Json doc = parsed(line);
  const Json* result = doc.find("result");
  if (result == nullptr) return "";
  const Json* key = result->find("session");
  return key != nullptr && key->is_string() ? key->as_string() : "";
}

std::optional<ClientReply> request(SocketClient& client, const std::string& line) {
  if (!client.send(line)) return std::nullopt;
  return client.recv();
}

TEST(ServiceTransport, JsonLinesRoundTripOverTheSocket) {
  ServerFixture fixture;
  SocketClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), /*binary_frames=*/false))
      << client.error();

  auto pong = request(client, R"({"id":1,"cmd":"ping"})");
  ASSERT_TRUE(pong.has_value()) << client.error();
  EXPECT_TRUE(response_ok(pong->line)) << pong->line;

  auto loaded = request(client, R"({"id":2,"cmd":"load","circuit":"s27"})");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(response_ok(loaded->line)) << loaded->line;
  const std::string session = session_of(loaded->line);
  ASSERT_FALSE(session.empty());

  auto analyzed = request(
      client, R"({"id":3,"cmd":"analyze","session":")" + session + "\"}");
  ASSERT_TRUE(analyzed.has_value());
  EXPECT_TRUE(response_ok(analyzed->line)) << analyzed->line;
}

TEST(ServiceTransport, PipelinedRequestsComeBackInSubmissionOrder) {
  ServerFixture fixture;
  SocketClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), false));
  // Burst-submit with distinct ids; the per-connection reorder deque must
  // return them 0..N-1 even though shards complete out of order.
  constexpr int kN = 64;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.send(
        i % 2 == 0
            ? R"({"id":)" + std::to_string(i) + R"(,"cmd":"ping"})"
            : R"({"id":)" + std::to_string(i) + R"(,"cmd":"load","circuit":"s298"})"));
  }
  for (int i = 0; i < kN; ++i) {
    auto reply = client.recv();
    ASSERT_TRUE(reply.has_value()) << i << ": " << client.error();
    const Json doc = parsed(reply->line);
    const Json* id = doc.find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(static_cast<int>(id->as_number()), i);
  }
}

TEST(ServiceTransport, BinaryFrameNegotiationAndRoundTrip) {
  ServerFixture fixture;
  SocketClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), /*binary_frames=*/true));
  auto pong = request(client, R"({"id":1,"cmd":"ping"})");
  ASSERT_TRUE(pong.has_value()) << client.error();
  EXPECT_TRUE(response_ok(pong->line)) << pong->line;
  client.close();
  fixture.stop();
  EXPECT_EQ(fixture.report().frame_connections, 1u);
}

TEST(ServiceTransport, InterleavedJsonAndBinaryConnections) {
  ServerFixture fixture;
  SocketClient text, binary;
  ASSERT_TRUE(text.connect("127.0.0.1", fixture.port(), false));
  ASSERT_TRUE(binary.connect("127.0.0.1", fixture.port(), true));
  // Alternate requests across the two modes against one shared pool; each
  // connection keeps its own framing and its own ordering.
  for (int i = 0; i < 8; ++i) {
    auto a = request(text, R"({"id":)" + std::to_string(i) +
                               R"(,"cmd":"load","circuit":"s344"})");
    auto b = request(binary, R"({"id":)" + std::to_string(i) +
                                 R"(,"cmd":"load","circuit":"s344"})");
    ASSERT_TRUE(a.has_value() && b.has_value());
    ASSERT_TRUE(response_ok(a->line));
    ASSERT_TRUE(response_ok(b->line));
    // Same content -> same session key across transports.
    EXPECT_EQ(session_of(a->line), session_of(b->line));
  }
}

// The acceptance bar: the full arrival density of an n=8192-grid numeric
// analysis, fetched once as inline JSON samples and once as a raw f64
// WAVEFORM frame, must be identical bit for bit (Json doubles serialize
// shortest-round-trip, so text inlining is lossless too).
TEST(ServiceTransport, DensityOverBinaryFramesMatchesJsonBitForBit) {
  ServerFixture fixture;
  // max_grid_points=8192 with a grid step far below the design's span
  // forces the grid cap, i.e. exactly n=8192 samples.
  const std::string analyze_params =
      R"("engine":"spsta_numeric","params":{"grid_dt":1e-4,"max_grid_points":8192})";

  SocketClient json_client, frame_client;
  ASSERT_TRUE(json_client.connect("127.0.0.1", fixture.port(), false));
  ASSERT_TRUE(frame_client.connect("127.0.0.1", fixture.port(), true));

  const auto query_density = [&](SocketClient& client) {
    auto loaded = request(client, R"({"id":1,"cmd":"load","circuit":"s386"})");
    EXPECT_TRUE(loaded.has_value());
    const std::string session = session_of(loaded->line);
    EXPECT_FALSE(session.empty());
    // Analyze first to learn the worst endpoint and its direction — that
    // transition is guaranteed a non-degenerate density.
    auto analyzed = request(client, R"({"id":2,"cmd":"analyze","session":")" +
                                        session + "\"," + analyze_params + "}");
    EXPECT_TRUE(analyzed.has_value());
    EXPECT_TRUE(response_ok(analyzed->line)) << analyzed->line;
    const Json analyzed_doc = parsed(analyzed->line);
    const Json* worst = analyzed_doc.find("result")->find("worst");
    EXPECT_NE(worst, nullptr);
    const std::string node = worst->find("name")->as_string();
    const std::string direction = worst->find("direction")->as_string();
    auto reply = request(client, R"({"id":3,"cmd":"query","session":")" +
                                     session + R"(","node":)" +
                                     Json(node).dump() + R"(,"density":")" +
                                     direction + "\"," + analyze_params + "}");
    EXPECT_TRUE(reply.has_value()) << client.error();
    return reply;
  };

  const auto json_reply = query_density(json_client);
  const auto frame_reply = query_density(frame_client);
  ASSERT_TRUE(json_reply.has_value() && frame_reply.has_value());
  ASSERT_TRUE(response_ok(json_reply->line)) << json_reply->line;
  ASSERT_TRUE(response_ok(frame_reply->line)) << frame_reply->line;

  // JSON-lines connection: samples inline, no sidecars.
  EXPECT_TRUE(json_reply->waveforms.empty());
  const Json json_doc = parsed(json_reply->line);
  const Json& density =
      *json_doc.find("result")->find("stats")->find("density");
  const Json* samples = density.find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(static_cast<std::size_t>(density.find("n")->as_number()), 8192u);
  ASSERT_EQ(samples->as_array().size(), 8192u);

  // Binary-frame connection: samples_wire says "frame", one f64 sidecar.
  const Json frame_doc = parsed(frame_reply->line);
  const Json& frame_density =
      *frame_doc.find("result")->find("stats")->find("density");
  EXPECT_EQ(frame_density.find("samples"), nullptr);
  ASSERT_NE(frame_density.find("samples_wire"), nullptr);
  EXPECT_EQ(frame_density.find("samples_wire")->as_string(), "frame");
  ASSERT_EQ(frame_reply->waveforms.size(), 1u);
  const std::vector<double>& wave = frame_reply->waveforms[0];
  ASSERT_EQ(wave.size(), 8192u);

  // Bit-for-bit equality between the two transports.
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const double via_json = samples->as_array()[i].as_number();
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &via_json, sizeof(a));
    std::memcpy(&b, &wave[i], sizeof(b));
    ASSERT_EQ(a, b) << "sample " << i;
  }
  // The grid metadata must agree too.
  for (const char* key : {"t0", "dt", "n", "mass"}) {
    EXPECT_EQ(density.find(key)->as_number(),
              frame_density.find(key)->as_number())
        << key;
  }
}

TEST(ServiceTransport, OversizedLineGetsBadRequestAndConnectionSurvives) {
  ServerFixture fixture;
  SocketClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), false));
  // A line beyond kMaxRequestBytes: rejected while it streams in, answered
  // with bad_request, and the connection keeps serving afterwards.
  std::string huge = R"({"id":1,"cmd":"ping","pad":")";
  huge.append(kMaxRequestBytes, 'x');
  huge += "\"}";
  ASSERT_TRUE(client.send(huge));
  auto reply = client.recv();
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(error_code_of(reply->line), "bad_request") << reply->line;

  auto pong = request(client, R"({"id":2,"cmd":"ping"})");
  ASSERT_TRUE(pong.has_value()) << client.error();
  EXPECT_TRUE(response_ok(pong->line));
}

TEST(ServiceTransport, OversizedFrameGetsBadRequestAndConnectionSurvives) {
  ServerFixture fixture;
  SocketClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), true));
  std::string payload = R"({"id":1,"cmd":"ping","pad":")";
  payload.append(kMaxRequestBytes, 'x');
  payload += "\"}";
  ASSERT_TRUE(client.send(payload));
  auto reply = client.recv();
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(error_code_of(reply->line), "bad_request") << reply->line;

  auto pong = request(client, R"({"id":2,"cmd":"ping"})");
  ASSERT_TRUE(pong.has_value()) << client.error();
  EXPECT_TRUE(response_ok(pong->line));
}

TEST(ServiceTransport, WaveformRequestFrameIsRejectedNotFatal) {
  ServerFixture fixture;
  // Clients only send JSON frames; a waveform REQUEST is a protocol error
  // answered structurally — and the connection keeps serving. Uses a raw
  // socket because SocketClient (correctly) cannot send waveform frames.
  std::string error;
  ScopedFd fd = tcp_connect("127.0.0.1", fixture.port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  ASSERT_TRUE(write_all(fd.get(), kFrameMagic, sizeof(kFrameMagic)));
  std::string wire;
  append_waveform_frame(wire, std::vector<double>{1.0, 2.0});
  append_frame(wire, FrameKind::Json, R"({"id":2,"cmd":"ping"})");
  ASSERT_TRUE(write_all(fd.get(), wire.data(), wire.size()));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  char chunk[4096];
  while (frames.size() < 2) {
    const ssize_t n = read_some(fd.get(), chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "connection closed before both replies";
    decoder.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    Frame frame;
    while (decoder.next(frame) == FrameDecoder::Status::Ready) {
      frames.push_back(frame);
    }
  }
  EXPECT_EQ(error_code_of(frames[0].payload), "bad_request") << frames[0].payload;
  EXPECT_TRUE(response_ok(frames[1].payload)) << frames[1].payload;
}

TEST(ServiceTransport, BadMagicIsAnsweredAndClosed) {
  ServerFixture fixture;
  std::string error;
  ScopedFd fd = tcp_connect("127.0.0.1", fixture.port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  // NUL first byte but not the frame magic: the server answers with a
  // structured bad_request and closes (it cannot resync an unknown
  // protocol).
  const char bogus[5] = {'\0', 'B', 'O', 'G', 'S'};
  ASSERT_TRUE(write_all(fd.get(), bogus, sizeof(bogus)));
  std::string received;
  char chunk[4096];
  for (;;) {
    const ssize_t n = read_some(fd.get(), chunk, sizeof(chunk));
    if (n <= 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_NE(received.find("bad_request"), std::string::npos) << received;
  EXPECT_NE(received.find("magic"), std::string::npos) << received;
}

TEST(ServiceTransport, ClientDisconnectMidResponseShedsOnlyItself) {
  ServerFixture fixture;
  // Victim connection vanishes with requests in flight...
  {
    SocketClient victim;
    ASSERT_TRUE(victim.connect("127.0.0.1", fixture.port(), false));
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(victim.send(R"({"id":)" + std::to_string(i) +
                              R"(,"cmd":"load","circuit":"s1238"})"));
    }
    victim.close();  // hard close, responses still being computed
  }
  // ...while a healthy connection keeps being served correctly.
  SocketClient healthy;
  ASSERT_TRUE(healthy.connect("127.0.0.1", fixture.port(), false));
  for (int i = 0; i < 8; ++i) {
    auto reply = request(healthy, R"({"id":)" + std::to_string(i) +
                                      R"(,"cmd":"load","circuit":"s27"})");
    ASSERT_TRUE(reply.has_value()) << healthy.error();
    EXPECT_TRUE(response_ok(reply->line)) << reply->line;
  }
}

TEST(ServiceTransport, EofMidFrameDropsOnlyThatConnection) {
  ServerFixture fixture;
  {
    std::string error;
    ScopedFd fd = tcp_connect("127.0.0.1", fixture.port(), &error);
    ASSERT_TRUE(fd.valid()) << error;
    ASSERT_TRUE(write_all(fd.get(), kFrameMagic, sizeof(kFrameMagic)));
    // A truncated frame: header promising more than ever arrives.
    const std::string full = encode_frame(FrameKind::Json, R"({"cmd":"ping"})");
    ASSERT_TRUE(write_all(fd.get(), full.data(), full.size() - 4));
    // fd closes here: EOF mid-frame.
  }
  SocketClient healthy;
  ASSERT_TRUE(healthy.connect("127.0.0.1", fixture.port(), true));
  auto pong = request(healthy, R"({"id":1,"cmd":"ping"})");
  ASSERT_TRUE(pong.has_value()) << healthy.error();
  EXPECT_TRUE(response_ok(pong->line));
}

TEST(ServiceTransport, ConcurrentConnectionsHammerOneSessionKey) {
  ServerFixture fixture({.workers = 4, .queue_capacity = 128});
  // All connections load the same circuit (one shared session/plan) and
  // analyze it concurrently: exercises the cross-connection path through
  // one shard plus the session-store latch. TSan must stay green here.
  constexpr int kClients = 6;
  constexpr int kRequests = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      SocketClient client;
      if (!client.connect("127.0.0.1", fixture.port(), t % 2 == 0)) {
        ++failures;
        return;
      }
      auto loaded = request(client, R"({"cmd":"load","circuit":"s526"})");
      if (!loaded || !response_ok(loaded->line)) {
        ++failures;
        return;
      }
      const std::string session = session_of(loaded->line);
      for (int i = 0; i < kRequests; ++i) {
        auto reply = request(client, R"({"id":)" + std::to_string(i) +
                                         R"(,"cmd":"analyze","session":")" +
                                         session + "\"}");
        if (!reply || !response_ok(reply->line)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServiceTransport, ShutdownRequestDrainsAndStopsTheServer) {
  ServerFixture fixture;
  SocketClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), false));
  // Queue work, then shutdown: every submitted request is answered before
  // the server stops.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.send(R"({"id":)" + std::to_string(i) +
                            R"(,"cmd":"load","circuit":"s1196"})"));
  }
  ASSERT_TRUE(client.send(R"({"id":99,"cmd":"shutdown"})"));
  for (int i = 0; i < 8; ++i) {
    auto reply = client.recv();
    ASSERT_TRUE(reply.has_value()) << i << ": " << client.error();
    EXPECT_TRUE(response_ok(reply->line)) << reply->line;
  }
  auto last = client.recv();
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(response_ok(last->line)) << last->line;
  fixture.stop();
  EXPECT_TRUE(fixture.report().shutdown);
}

}  // namespace
}  // namespace spsta::service::transport
