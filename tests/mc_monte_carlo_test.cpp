// Tests for the Monte Carlo driver: determinism, convergence of source
// statistics, and agreement with analytic four-value propagation.

#include "mc/monte_carlo.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "sigprob/four_value_prop.hpp"

namespace spsta::mc {
namespace {

using netlist::FourValueProbs;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(MonteCarlo, DeterministicForSameSeed) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  MonteCarloConfig cfg;
  cfg.runs = 500;
  cfg.seed = 11;
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  const MonteCarloResult a = run_monte_carlo(n, d, sc, cfg);
  const MonteCarloResult b = run_monte_carlo(n, d, sc, cfg);
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_EQ(a.node[id].count[2], b.node[id].count[2]);
    EXPECT_DOUBLE_EQ(a.node[id].rise_time.mean(), b.node[id].rise_time.mean());
  }
}

TEST(MonteCarlo, SourceStatisticsConverge) {
  const Netlist n = netlist::make_s27();
  const netlist::DelayModel d = netlist::DelayModel::unit(n);
  MonteCarloConfig cfg;
  cfg.runs = 20000;
  cfg.seed = 3;
  const netlist::SourceStats sc = netlist::scenario_II();
  const MonteCarloResult r = run_monte_carlo(n, d, std::vector{sc}, cfg);

  for (NodeId src : n.timing_sources()) {
    const FourValueProbs p = r.node[src].probs();
    EXPECT_NEAR(p.p0, 0.75, 0.02);
    EXPECT_NEAR(p.p1, 0.15, 0.02);
    EXPECT_NEAR(p.pr, 0.02, 0.01);
    EXPECT_NEAR(p.pf, 0.08, 0.01);
    // Rise arrivals sample N(0,1).
    if (r.node[src].rise_time.count() > 100) {
      EXPECT_NEAR(r.node[src].rise_time.mean(), 0.0, 0.15);
      EXPECT_NEAR(r.node[src].rise_time.stddev(), 1.0, 0.15);
    }
  }
}

TEST(MonteCarlo, MatchesAnalyticFourValueOnTree) {
  // On a reconvergence-free circuit the analytic four-value probabilities
  // are exact, so MC must converge to them.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, c});
  n.mark_output(g2);

  const netlist::SourceStats sc = netlist::scenario_I();
  MonteCarloConfig cfg;
  cfg.runs = 40000;
  cfg.seed = 7;
  const MonteCarloResult r =
      run_monte_carlo(n, netlist::DelayModel::unit(n), std::vector{sc}, cfg);
  const auto analytic = sigprob::propagate_four_value(n, std::vector{sc.probs});

  for (NodeId id : {g1, g2}) {
    const FourValueProbs mc_p = r.node[id].probs();
    EXPECT_NEAR(mc_p.p0, analytic[id].p0, 0.01) << n.node(id).name;
    EXPECT_NEAR(mc_p.p1, analytic[id].p1, 0.01);
    EXPECT_NEAR(mc_p.pr, analytic[id].pr, 0.01);
    EXPECT_NEAR(mc_p.pf, analytic[id].pf, 0.01);
  }
}

TEST(MonteCarlo, SingleAndGateArrivalMoments) {
  // AND with always-rising inputs: output arrival = max of two N(0,1) + 1.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};  // always rise
  MonteCarloConfig cfg;
  cfg.runs = 60000;
  cfg.seed = 9;
  const MonteCarloResult r =
      run_monte_carlo(n, netlist::DelayModel::unit(n), std::vector{sc}, cfg);
  EXPECT_NEAR(r.node[y].probs().pr, 1.0, 1e-12);
  EXPECT_NEAR(r.node[y].rise_time.mean(), 1.0 / std::sqrt(M_PI) + 1.0, 0.02);
  EXPECT_NEAR(r.node[y].rise_time.stddev(), std::sqrt(1.0 - 1.0 / M_PI), 0.02);
}

TEST(MonteCarlo, VariationalDelaysWidenSpread) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = n.add_gate(GateType::Buf, "b" + std::to_string(i), {prev});
  }
  n.mark_output(prev);

  netlist::SourceStats sc;
  sc.probs = {0.0, 0.0, 1.0, 0.0};
  sc.rise_arrival = {0.0, 0.0};  // deterministic launch

  MonteCarloConfig cfg;
  cfg.runs = 20000;
  cfg.seed = 13;
  const MonteCarloResult fixed = run_monte_carlo(
      n, netlist::DelayModel::unit(n), std::vector{sc}, cfg);
  const MonteCarloResult varied = run_monte_carlo(
      n, netlist::DelayModel::gaussian(n, 1.0, 0.2), std::vector{sc}, cfg);

  EXPECT_NEAR(fixed.node[prev].rise_time.mean(), 4.0, 1e-9);
  EXPECT_NEAR(fixed.node[prev].rise_time.stddev(), 0.0, 1e-9);
  EXPECT_NEAR(varied.node[prev].rise_time.mean(), 4.0, 0.02);
  EXPECT_NEAR(varied.node[prev].rise_time.stddev(), 0.2 * 2.0, 0.02);  // sqrt(4)*0.2
}

TEST(MonteCarlo, HistogramCollectsRiseArrivals) {
  const Netlist n = netlist::make_s27();
  MonteCarloConfig cfg;
  cfg.runs = 2000;
  cfg.seed = 21;
  cfg.histogram_node = n.primary_outputs()[0];
  const MonteCarloResult r = run_monte_carlo(n, netlist::DelayModel::unit(n),
                                             std::vector{netlist::scenario_I()}, cfg);
  ASSERT_TRUE(r.histogram.has_value());
  EXPECT_EQ(r.histogram->total(),
            r.node[*cfg.histogram_node].count[static_cast<int>(netlist::FourValue::Rise)]);
}

TEST(MonteCarlo, GlitchesObservedOnSuiteCircuit) {
  const Netlist n = netlist::make_paper_circuit("s298");
  MonteCarloConfig cfg;
  cfg.runs = 1000;
  cfg.seed = 2;
  const MonteCarloResult r = run_monte_carlo(n, netlist::DelayModel::unit(n),
                                             std::vector{netlist::scenario_I()}, cfg);
  EXPECT_GT(r.glitching_gates, 0u);
}

TEST(MonteCarlo, ZeroSampleEstimateIsUninformativeUniform) {
  // Regression: with no samples probs() used to report a confident
  // "P0 = 1", which scored phantom agreement against analytic engines on
  // never-simulated nodes. No data means the uniform estimate.
  const NodeEstimate empty;
  const netlist::FourValueProbs p = empty.probs();
  EXPECT_DOUBLE_EQ(p.p0, 0.25);
  EXPECT_DOUBLE_EQ(p.p1, 0.25);
  EXPECT_DOUBLE_EQ(p.pr, 0.25);
  EXPECT_DOUBLE_EQ(p.pf, 0.25);
  EXPECT_DOUBLE_EQ(empty.rise_probability(), 0.0);
  EXPECT_DOUBLE_EQ(empty.fall_probability(), 0.0);
  EXPECT_DOUBLE_EQ(empty.raw_edge_rate(), 0.0);
}

TEST(MonteCarlo, ZeroRunsYieldUniformEstimates) {
  const Netlist n = netlist::make_s27();
  MonteCarloConfig cfg;
  cfg.runs = 0;
  const MonteCarloResult r = run_monte_carlo(n, netlist::DelayModel::unit(n),
                                             std::vector{netlist::scenario_I()}, cfg);
  for (const NodeEstimate& est : r.node) {
    EXPECT_DOUBLE_EQ(est.probs().p0, 0.25);
    EXPECT_DOUBLE_EQ(est.probs().pr, 0.25);
  }
}

TEST(MonteCarlo, SourceStatsMismatchThrows) {
  const Netlist n = netlist::make_s27();
  MonteCarloConfig cfg;
  cfg.runs = 10;
  EXPECT_THROW((void)run_monte_carlo(n, netlist::DelayModel::unit(n),
                                     std::vector<netlist::SourceStats>(2), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::mc
