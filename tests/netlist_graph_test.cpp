// Tests for structural graph queries: cones, reconvergence, path counts
// and critical-path extraction.

#include "netlist/graph.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"

namespace spsta::netlist {
namespace {

// a tree:      a, b -> g1(AND); c -> inv; g1, inv -> g2(OR)
Netlist tree() {
  Netlist n("tree");
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId g1 = n.add_gate(GateType::And, "g1", {a, b});
  const NodeId inv = n.add_gate(GateType::Not, "inv", {c});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {g1, inv});
  n.mark_output(g2);
  return n;
}

// reconvergent: a fans out to both fanins of g2 through g1a/g1b.
Netlist diamond() {
  Netlist n("diamond");
  const NodeId a = n.add_input("a");
  const NodeId g1a = n.add_gate(GateType::Buf, "g1a", {a});
  const NodeId g1b = n.add_gate(GateType::Not, "g1b", {a});
  const NodeId g2 = n.add_gate(GateType::And, "g2", {g1a, g1b});
  n.mark_output(g2);
  return n;
}

TEST(Graph, FaninConeOfTree) {
  const Netlist n = tree();
  const auto cone = fanin_cone(n, n.find("g2"));
  EXPECT_EQ(cone.size(), 6u);  // everything
  const auto cone1 = fanin_cone(n, n.find("g1"));
  EXPECT_EQ(cone1.size(), 3u);  // a, b, g1
  EXPECT_TRUE(std::binary_search(cone1.begin(), cone1.end(), n.find("a")));
  EXPECT_FALSE(std::binary_search(cone1.begin(), cone1.end(), n.find("c")));
}

TEST(Graph, FanoutCone) {
  const Netlist n = tree();
  const auto cone = fanout_cone(n, n.find("a"));
  EXPECT_EQ(cone.size(), 3u);  // a, g1, g2
}

TEST(Graph, TreeHasNoReconvergence) {
  const Netlist n = tree();
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_FALSE(has_reconvergent_fanin(n, id)) << n.node(id).name;
  }
  EXPECT_TRUE(reconvergent_nodes(n).empty());
}

TEST(Graph, DiamondIsReconvergent) {
  const Netlist n = diamond();
  EXPECT_TRUE(has_reconvergent_fanin(n, n.find("g2")));
  EXPECT_FALSE(has_reconvergent_fanin(n, n.find("g1a")));
  const auto nodes = reconvergent_nodes(n);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], n.find("g2"));
}

TEST(Graph, S27HasReconvergence) {
  const Netlist n = make_s27();
  EXPECT_FALSE(reconvergent_nodes(n).empty());
}

TEST(Graph, PathCounts) {
  const Netlist n = diamond();
  const auto counts = path_counts(n);
  EXPECT_EQ(counts[n.find("a")], 1u);
  EXPECT_EQ(counts[n.find("g1a")], 1u);
  EXPECT_EQ(counts[n.find("g2")], 2u);  // two paths from a
}

TEST(Graph, CriticalPathUnitDelay) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b1 = n.add_gate(GateType::Buf, "b1", {a});
  const NodeId b2 = n.add_gate(GateType::Buf, "b2", {b1});
  const NodeId g = n.add_gate(GateType::And, "g", {a, b2});
  n.mark_output(g);

  const DelayModel dm = DelayModel::unit(n);
  const Path p = critical_path_to(n, g, dm.means());
  EXPECT_DOUBLE_EQ(p.delay, 3.0);  // a -> b1 -> b2 -> g
  ASSERT_EQ(p.nodes.size(), 4u);
  EXPECT_EQ(p.nodes.front(), a);
  EXPECT_EQ(p.nodes.back(), g);
}

TEST(Graph, CriticalPathRespectsWeights) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId fast = n.add_gate(GateType::Buf, "fast", {a});
  const NodeId slow = n.add_gate(GateType::Buf, "slow", {a});
  const NodeId g = n.add_gate(GateType::Or, "g", {fast, slow});
  n.mark_output(g);

  std::vector<double> delay(n.node_count(), 0.0);
  delay[fast] = 0.1;
  delay[slow] = 5.0;
  delay[g] = 1.0;
  const Path p = critical_path_to(n, g, delay);
  EXPECT_DOUBLE_EQ(p.delay, 6.0);
  EXPECT_EQ(p.nodes[1], slow);
}

TEST(Graph, CriticalPathsSortedAndBounded) {
  const Netlist n = make_paper_circuit("s298");
  const DelayModel dm = DelayModel::unit(n);
  const auto paths = critical_paths(n, dm.means(), 4);
  ASSERT_LE(paths.size(), 4u);
  ASSERT_GE(paths.size(), 1u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].delay, paths[i].delay);
  }
}

TEST(Graph, DelaySizeMismatchThrows) {
  const Netlist n = tree();
  EXPECT_THROW((void)critical_path_to(n, 0, std::vector<double>(2, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace spsta::netlist
