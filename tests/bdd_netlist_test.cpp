// Tests for symbolic netlist simulation: BDD functions must agree with
// direct gate-level evaluation on random input vectors.

#include "bdd/bdd_netlist.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"
#include "stats/rng.hpp"

namespace spsta::bdd {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

// Direct Boolean simulation for reference.
std::vector<bool> simulate(const Netlist& n, const std::vector<bool>& source_values) {
  const auto sources = n.timing_sources();
  std::vector<bool> value(n.node_count(), false);
  for (std::size_t i = 0; i < sources.size(); ++i) value[sources[i]] = source_values[i];
  const netlist::Levelization lv = netlist::levelize(n);
  for (NodeId id : lv.order) {
    const netlist::Node& node = n.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    bool arr[16];
    std::size_t k = 0;
    for (NodeId f : node.fanins) arr[k++] = value[f];
    value[id] = netlist::eval_gate(node.type, std::span<const bool>(arr, k));
  }
  return value;
}

TEST(BddNetlist, MatchesSimulationOnS27) {
  const Netlist n = netlist::make_s27();
  NetlistBdds bdds = build_netlist_bdds(n);
  ASSERT_EQ(bdds.sources.size(), 7u);  // 4 PIs + 3 DFFs

  stats::Xoshiro256 rng(77);
  for (std::size_t mask = 0; mask < (1u << 7); ++mask) {
    std::vector<bool> sv(7);
    bool assignment[7];
    for (std::size_t i = 0; i < 7; ++i) {
      sv[i] = (mask >> i) & 1u;
      assignment[i] = sv[i];
    }
    const std::vector<bool> ref = simulate(n, sv);
    for (NodeId id = 0; id < n.node_count(); ++id) {
      ASSERT_TRUE(bdds.function[id].has_value()) << n.node(id).name;
      EXPECT_EQ(bdds.manager.evaluate(*bdds.function[id], assignment), ref[id])
          << n.node(id).name << " mask=" << mask;
    }
  }
}

TEST(BddNetlist, MatchesSimulationOnGeneratedCircuit) {
  netlist::GeneratorSpec spec;
  spec.name = "g";
  spec.num_inputs = 8;
  spec.num_outputs = 3;
  spec.num_gates = 60;
  spec.target_depth = 6;
  spec.seed = 2024;
  const Netlist n = netlist::generate_circuit(spec);
  NetlistBdds bdds = build_netlist_bdds(n);

  stats::Xoshiro256 rng(88);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> sv(8);
    bool assignment[8];
    for (std::size_t i = 0; i < 8; ++i) {
      sv[i] = rng.bernoulli(0.5);
      assignment[i] = sv[i];
    }
    const std::vector<bool> ref = simulate(n, sv);
    for (NodeId out : n.primary_outputs()) {
      ASSERT_TRUE(bdds.function[out].has_value());
      EXPECT_EQ(bdds.manager.evaluate(*bdds.function[out], assignment), ref[out]);
    }
  }
}

TEST(BddNetlist, OverflowDegradesGracefully) {
  // A wide XOR tree under a tiny node budget: some nodes must be nullopt,
  // and the call must not throw.
  Netlist n("xors");
  std::vector<NodeId> layer;
  for (int i = 0; i < 16; ++i) layer.push_back(n.add_input("i" + std::to_string(i)));
  NodeId acc = layer[0];
  for (std::size_t i = 1; i < layer.size(); ++i) {
    acc = n.add_gate(GateType::Xor, "x" + std::to_string(i), {acc, layer[i]});
  }
  n.mark_output(acc);

  const NetlistBdds bdds = build_netlist_bdds(n, /*max_nodes=*/40);
  std::size_t missing = 0;
  for (const auto& f : bdds.function) {
    if (!f) ++missing;
  }
  EXPECT_GT(missing, 0u);
}

}  // namespace
}  // namespace spsta::bdd
