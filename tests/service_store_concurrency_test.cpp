// Concurrency tests for the session store's PR-6 contract: Session
// construction (parse + eager plan compile) happens OUTSIDE the store
// mutex behind a per-key in-flight latch, so
//
//   * find / unload / load of *other* keys proceed while a compile is in
//     flight (the headline bugfix — the old store built sessions under
//     the global lock and every request stalled behind a load);
//   * concurrent loaders of the *same* content hash wait on the latch and
//     share ONE session — one factory call, one compiled plan;
//   * a throwing factory releases the latch instead of wedging waiters;
//   * LRU eviction honors the entry/byte budget with least-recently-used
//     victims.
//
// The blocking-factory tests are deterministic, not timing-based: the
// factory parks on a condition variable, the test observes store state
// mid-build, then releases the builder. Were the old lock-hold behavior
// reintroduced, the mid-build operations would deadlock and the test
// would hang (caught by the ctest timeout), not flake.
//
// The hammer test is the TSan target (SPSTA_SANITIZE=thread in CI): many
// threads load/find/unload a mix of identical and distinct designs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace spsta::service {
namespace {

netlist::Netlist small_design(std::uint64_t seed) {
  netlist::GeneratorSpec spec;
  spec.name = "store_t_" + std::to_string(seed);
  spec.num_inputs = 4;
  spec.num_outputs = 2;
  spec.num_gates = 12;
  spec.target_depth = 4;
  spec.seed = seed;
  return netlist::generate_circuit(spec);
}

/// A design factory that parks on a condition variable after announcing
/// itself, so a test can hold a build "in flight" for as long as it needs.
struct BlockingFactory {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::atomic<int> calls{0};

  SessionStore::DesignFactory factory(std::uint64_t seed = 1) {
    return [this, seed] {
      calls.fetch_add(1);
      {
        std::unique_lock<std::mutex> lock(mutex);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      }
      return small_design(seed);
    };
  }
  void wait_entered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }
  void release_builder() {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
    cv.notify_all();
  }
};

TEST(ServiceStoreConcurrency, StoreStaysResponsiveWhileACompileIsInFlight) {
  SessionStore store;
  BlockingFactory blocking;
  const std::uint64_t slow_hash = 0x510c0ffee;

  std::thread builder([&] {
    const auto [session, fresh] = store.load(slow_hash, blocking.factory());
    EXPECT_TRUE(fresh);
    EXPECT_NE(session, nullptr);
  });
  blocking.wait_entered();
  EXPECT_EQ(store.loading(), 1u);

  // With the build parked mid-flight, every other store operation must
  // complete. Under the old lock-hold behavior each of these would block
  // on the store mutex until the compile finished (here: forever).
  EXPECT_EQ(store.find(hash_key(slow_hash)), nullptr);  // in flight = absent
  EXPECT_EQ(store.find("0000000000000000"), nullptr);

  const auto [other, other_fresh] =
      store.load(0x07e4, [] { return small_design(7); });
  EXPECT_TRUE(other_fresh);
  ASSERT_NE(other, nullptr);
  EXPECT_NE(store.find(other->key), nullptr);
  EXPECT_TRUE(store.unload(other->key));

  EXPECT_EQ(store.loading(), 1u);  // the slow build is still in flight
  EXPECT_EQ(store.size(), 0u);

  blocking.release_builder();
  builder.join();
  EXPECT_EQ(store.loading(), 0u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find(hash_key(slow_hash)), nullptr);
}

TEST(ServiceStoreConcurrency, SameHashLoadersWaitOnTheLatchAndShareOneSession) {
  SessionStore store;
  BlockingFactory blocking;
  const std::uint64_t hash = 0xbeef;

  std::shared_ptr<Session> first, second;
  bool first_fresh = false, second_fresh = false;
  std::thread a([&] {
    auto [s, fresh] = store.load(hash, blocking.factory());
    first = std::move(s);
    first_fresh = fresh;
  });
  blocking.wait_entered();

  std::thread b([&] {
    // Same hash: must wait on the latch, never invoke its own factory.
    auto [s, fresh] = store.load(hash, [&]() -> netlist::Netlist {
      ADD_FAILURE() << "second loader's factory ran — latch did not dedup";
      return small_design(99);
    });
    second = std::move(s);
    second_fresh = fresh;
  });
  // Let b reach the latch wait; latch_waits is the observable signal, and
  // it only ever increments when a loader actually parked on the latch.
  while (store.latch_waits() == 0) std::this_thread::yield();

  blocking.release_builder();
  a.join();
  b.join();

  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // ONE session, one compiled plan
  EXPECT_TRUE(first_fresh);
  EXPECT_FALSE(second_fresh);
  EXPECT_EQ(blocking.calls.load(), 1);
  EXPECT_EQ(store.plan_misses(), 1u);
  EXPECT_GE(store.plan_hits(), 1u);  // the latch waiter counts as a hit
  EXPECT_GE(store.latch_waits(), 1u);
}

TEST(ServiceStoreConcurrency, ThrowingFactoryReleasesTheLatch) {
  SessionStore store;
  const std::uint64_t hash = 0xbad;
  EXPECT_THROW(
      store.load(hash,
                 []() -> netlist::Netlist { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_EQ(store.loading(), 0u);
  EXPECT_EQ(store.size(), 0u);

  // The key is not wedged: a later load of the same hash builds cleanly.
  const auto [session, fresh] = store.load(hash, [] { return small_design(3); });
  EXPECT_TRUE(fresh);
  EXPECT_NE(session, nullptr);
}

TEST(ServiceStoreConcurrency, ParallelLoadFindUnloadHammer) {
  // The TSan workout: distinct + identical designs churned by many
  // threads. Correctness here is "no data race, no crash, store invariants
  // hold" — the assertions are deliberately coarse.
  SessionStore store;
  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  static constexpr std::uint64_t kHashes[] = {11, 22, 33};  // shared across threads

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t h = kHashes[(t + i) % 3];
        const auto [session, fresh] =
            store.load(h, [h] { return small_design(h); });
        ASSERT_NE(session, nullptr);
        // The session stays valid through the shared_ptr even if another
        // thread unloads it right now.
        EXPECT_GT(session->design().node_count(), 0u);
        (void)store.find(session->key);
        if (i % 7 == t % 7) (void)store.unload(session->key);
        (void)store.size();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(store.loading(), 0u);
  EXPECT_LE(store.size(), 3u);
  EXPECT_EQ(store.plan_hits() + store.plan_misses(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ServiceStoreConcurrency, LruEvictionPicksLeastRecentlyUsedVictims) {
  SessionStore store;
  store.set_budget({.max_sessions = 2, .max_bytes = 0});

  const auto load_seed = [&](std::uint64_t h) {
    return store.load(h, [h] { return small_design(h); }).first;
  };
  const auto a = load_seed(1), b = load_seed(2);
  ASSERT_NE(store.find(a->key), nullptr);  // touch A: B becomes the LRU

  const auto c = load_seed(3);  // over budget → evict B, keep A and C
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_NE(store.find(a->key), nullptr);
  EXPECT_EQ(store.find(b->key), nullptr);
  EXPECT_NE(store.find(c->key), nullptr);

  // The evicted session object stays alive for holders of the pointer.
  EXPECT_GT(b->design().node_count(), 0u);

  // Byte budget: shrinking it evicts down to the newest survivor (the
  // just-inserted / most recent key is never evicted, even over budget).
  store.set_budget({.max_sessions = 0, .max_bytes = 1});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find(c->key), nullptr);
  EXPECT_EQ(store.evictions(), 2u);
}

TEST(ServiceStoreConcurrency, ServiceLevelLoadsOfIdenticalTextShareOnePlan) {
  // The acceptance-criteria shape, end to end through the service: two
  // clients load byte-identical netlist text → same session key, and the
  // second load is a plan-cache hit that never re-parses.
  AnalysisService service;
  const std::string text = netlist::write_bench(small_design(42));

  Request req;
  req.cmd = "load";
  Json body = Json::object();
  body.set("cmd", Json("load"));
  body.set("format", Json("bench"));
  body.set("text", Json(text));
  req.body = body;

  const Response r1 = service.execute(req);
  ASSERT_TRUE(r1.ok) << r1.to_line();
  const std::uint64_t misses_after_first = service.store().plan_misses();
  const Response r2 = service.execute(req);
  ASSERT_TRUE(r2.ok) << r2.to_line();

  EXPECT_EQ(r1.body.find("session")->as_string(),
            r2.body.find("session")->as_string());
  EXPECT_EQ(service.store().plan_misses(), misses_after_first);  // no reparse
  EXPECT_GE(service.store().plan_hits(), 1u);
  EXPECT_EQ(service.store().size(), 1u);
}

}  // namespace
}  // namespace spsta::service
