// Tests for COP testability analysis, validated against Monte Carlo
// stuck-at fault simulation.

#include "sigprob/testability.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"
#include "stats/rng.hpp"

namespace spsta::sigprob {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(Testability, EndpointsFullyObservable) {
  const Netlist n = netlist::make_s27();
  const TestabilityResult t = analyze_testability(n, std::vector<double>{0.5});
  for (NodeId ep : n.timing_endpoints()) {
    EXPECT_DOUBLE_EQ(t.observability[ep], 1.0) << n.node(ep).name;
  }
}

TEST(Testability, BufferChainPassesObservabilityThrough) {
  Netlist n;
  NodeId prev = n.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = n.add_gate(GateType::Not, "g" + std::to_string(i), {prev});
  }
  n.mark_output(prev);
  const TestabilityResult t = analyze_testability(n, std::vector<double>{0.5});
  EXPECT_DOUBLE_EQ(t.observability[n.find("a")], 1.0);
  EXPECT_DOUBLE_EQ(t.detect_sa0[n.find("a")], 0.5);
  EXPECT_DOUBLE_EQ(t.detect_sa1[n.find("a")], 0.5);
}

TEST(Testability, AndSideInputGatesObservability) {
  // A change on `a` reaches the output only when b = 1.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId y = n.add_gate(GateType::And, "y", {a, b});
  n.mark_output(y);
  const std::vector<double> probs{0.5, 0.3};
  const TestabilityResult t = analyze_testability(n, probs);
  EXPECT_NEAR(t.observability[a], 0.3, 1e-12);
  EXPECT_NEAR(t.observability[b], 0.5, 1e-12);
  // Stuck-at-1 at a: needs a=0 (p=0.5) and observation (0.3).
  EXPECT_NEAR(t.detect_sa1[a], 0.5 * 0.3, 1e-12);
}

TEST(Testability, MultipleObservationPathsCombine) {
  // a observed through two independent cones: O = 1 - (1-O1)(1-O2).
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId y1 = n.add_gate(GateType::And, "y1", {a, b});
  const NodeId y2 = n.add_gate(GateType::And, "y2", {a, c});
  n.mark_output(y1);
  n.mark_output(y2);
  const TestabilityResult t = analyze_testability(n, std::vector<double>{0.5});
  EXPECT_NEAR(t.observability[a], 1.0 - 0.5 * 0.5, 1e-12);
}

TEST(Testability, HardFaultsListAndCoverage) {
  // A 6-input AND: stuck-at-1 at the output needs all-ones minus... the
  // output itself is observable, but sa0 at the output needs P(y=1) =
  // 2^-6 — a classic random-pattern-resistant fault.
  Netlist n;
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(n.add_input("i" + std::to_string(i)));
  const NodeId y = n.add_gate(GateType::And, "y", ins);
  n.mark_output(y);
  const TestabilityResult t = analyze_testability(n, std::vector<double>{0.5});
  EXPECT_NEAR(t.detect_sa0[y], 1.0 / 64.0, 1e-12);
  const auto hard = t.hard_faults(0.05);
  EXPECT_FALSE(hard.empty());
  // Coverage grows with vector count and saturates.
  const double c16 = t.expected_coverage(16);
  const double c256 = t.expected_coverage(256);
  EXPECT_LT(c16, c256);
  EXPECT_LE(c256, 1.0);
  EXPECT_GT(c256, 0.9);
}

// Oracle: Monte Carlo stuck-at fault simulation on a tree circuit (COP is
// exact without reconvergence).
TEST(Testability, MatchesFaultSimulationOnTree) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId d = n.add_input("d");
  const NodeId g1 = n.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId g2 = n.add_gate(GateType::Or, "g2", {c, d});
  const NodeId g3 = n.add_gate(GateType::And, "g3", {g1, g2});
  n.mark_output(g3);

  const TestabilityResult t = analyze_testability(n, std::vector<double>{0.5});

  const netlist::Levelization lv = netlist::levelize(n);
  const auto sources = n.timing_sources();
  const auto simulate = [&](const std::vector<bool>& sv,
                            NodeId fault_site, int fault_value) -> bool {
    std::vector<bool> value(n.node_count(), false);
    for (std::size_t i = 0; i < sources.size(); ++i) value[sources[i]] = sv[i];
    for (NodeId id : lv.order) {
      const netlist::Node& node = n.node(id);
      if (netlist::is_combinational(node.type)) {
        bool arr[8];
        std::size_t k = 0;
        for (NodeId f : node.fanins) arr[k++] = value[f];
        value[id] = netlist::eval_gate(node.type, std::span<const bool>(arr, k));
      }
      if (id == fault_site && fault_value >= 0) value[id] = fault_value != 0;
    }
    return static_cast<bool>(value[g3]);  // copy out of the proxy before `value` dies
  };

  stats::Xoshiro256 rng(404);
  constexpr int kVectors = 60000;
  for (NodeId site : {a, b, g1, g2}) {
    int detect0 = 0, detect1 = 0;
    for (int v = 0; v < kVectors; ++v) {
      std::vector<bool> sv(sources.size());
      for (std::size_t i = 0; i < sv.size(); ++i) sv[i] = rng.bernoulli(0.5);
      const bool good = simulate(sv, netlist::kInvalidNode, -1);
      if (simulate(sv, site, 0) != good) ++detect0;
      if (simulate(sv, site, 1) != good) ++detect1;
    }
    EXPECT_NEAR(t.detect_sa0[site], static_cast<double>(detect0) / kVectors, 0.01)
        << n.node(site).name;
    EXPECT_NEAR(t.detect_sa1[site], static_cast<double>(detect1) / kVectors, 0.01)
        << n.node(site).name;
  }
}

TEST(Testability, SuiteCircuitSanity) {
  const Netlist n = netlist::make_paper_circuit("s298");
  const TestabilityResult t = analyze_testability(n, std::vector<double>{0.5});
  for (NodeId id = 0; id < n.node_count(); ++id) {
    EXPECT_GE(t.observability[id], 0.0);
    EXPECT_LE(t.observability[id], 1.0);
    EXPECT_LE(t.detect_sa0[id], t.observability[id] + 1e-12);
  }
  EXPECT_GT(t.expected_coverage(1000), 0.5);
}

}  // namespace
}  // namespace spsta::sigprob
