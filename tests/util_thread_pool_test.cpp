// Tests for the deterministic execution layer: the fixed-size ThreadPool
// and its blocking index-parallel dispatch.

#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace spsta::util {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareAndNeverBelowOne) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.for_each_index(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ThreadPool, SizeCountsWorkersPlusSubmitter) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  // The level-parallel engines dispatch one job per level through a single
  // pool; stale state from job k must never leak into job k+1.
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::size_t> sum{0};
    const std::size_t count = static_cast<std::size_t>(job % 7);
    pool.for_each_index(count, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), count * (count + 1) / 2) << "job " << job;
  }
}

TEST(ThreadPool, RethrowsFirstExceptionAfterDraining) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_each_index(64,
                          [&](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                            completed.fetch_add(1);
                          }),
      std::runtime_error);
  // The pool stays usable after a throwing job.
  std::atomic<int> after{0};
  pool.for_each_index(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ParallelFor, MatchesSequentialResult) {
  std::vector<std::size_t> out(257, 0);
  parallel_for(8, out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace spsta::util
