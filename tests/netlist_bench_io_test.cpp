// Tests for the ISCAS'89 .bench parser/writer, including the genuine s27
// fixture and error diagnostics.

#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas89.hpp"
#include "netlist/levelize.hpp"

namespace spsta::netlist {
namespace {

TEST(BenchParser, ParsesS27) {
  const Netlist n = make_s27();
  EXPECT_EQ(n.name(), "s27");
  EXPECT_EQ(n.primary_inputs().size(), 4u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_EQ(n.dffs().size(), 3u);
  EXPECT_EQ(n.gate_count(), 10u);  // 2 NOT + 1 AND + 2 OR + 1 NAND + 4 NOR
  EXPECT_NO_THROW(n.validate());
  EXPECT_NO_THROW(levelize(n));
}

TEST(BenchParser, S27Structure) {
  const Netlist n = make_s27();
  const NodeId g11 = n.find("G11");
  ASSERT_NE(g11, kInvalidNode);
  EXPECT_EQ(n.node(g11).type, GateType::Nor);
  ASSERT_EQ(n.node(g11).fanins.size(), 2u);
  EXPECT_EQ(n.node(n.node(g11).fanins[0]).name, "G5");
  EXPECT_EQ(n.node(n.node(g11).fanins[1]).name, "G9");
  // G17 = NOT(G11) is the only primary output.
  const NodeId g17 = n.primary_outputs()[0];
  EXPECT_EQ(n.node(g17).name, "G17");
  EXPECT_EQ(n.node(g17).type, GateType::Not);
}

TEST(BenchParser, HandlesCommentsAndBlankLines) {
  const Netlist n = parse_bench(R"(
# a comment
INPUT(a)   # trailing comment

INPUT(b)
OUTPUT(y)
y = AND(a, b)
)");
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.gate_count(), 1u);
}

TEST(BenchParser, ForwardReferencesAllowed) {
  // y uses z before z is defined — legal in the published files.
  const Netlist n = parse_bench(R"(
INPUT(a)
OUTPUT(y)
y = NOT(z)
z = BUFF(a)
)");
  EXPECT_EQ(n.node(n.find("y")).fanins[0], n.find("z"));
}

TEST(BenchParser, AllGateSpellings) {
  const Netlist n = parse_bench(R"(
INPUT(a)
INPUT(b)
g0 = BUFF(a)
g1 = NOT(a)
g2 = AND(a, b)
g3 = NAND(a, b)
g4 = OR(a, b)
g5 = NOR(a, b)
g6 = XOR(a, b)
g7 = XNOR(a, b)
g8 = DFF(g2)
)");
  EXPECT_EQ(n.node(n.find("g0")).type, GateType::Buf);
  EXPECT_EQ(n.node(n.find("g7")).type, GateType::Xnor);
  EXPECT_EQ(n.dffs().size(), 1u);
}

TEST(BenchParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_bench("INPUT(a)\ny = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST(BenchParser, RejectsUndefinedSignal) {
  EXPECT_THROW((void)parse_bench("INPUT(a)\ny = AND(a, ghost)\n"), BenchParseError);
}

TEST(BenchParser, RejectsDuplicateDefinition) {
  EXPECT_THROW((void)parse_bench("INPUT(a)\nINPUT(a)\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("INPUT(a)\na = NOT(a)\n"), BenchParseError);
}

TEST(BenchParser, RejectsMalformedSyntax) {
  EXPECT_THROW((void)parse_bench("INPUT a\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("y = AND(a,)\nINPUT(a)\n"), BenchParseError);
  EXPECT_THROW((void)parse_bench("y = AND(a, b) extra\nINPUT(a)\nINPUT(b)\n"),
               BenchParseError);
  EXPECT_THROW((void)parse_bench("WIBBLE(a)\n"), BenchParseError);
}

TEST(BenchParser, RejectsOutputOfUndefinedSignal) {
  EXPECT_THROW((void)parse_bench("OUTPUT(y)\n"), BenchParseError);
}

TEST(BenchWriter, RoundTripPreservesStructure) {
  const Netlist original = make_s27();
  const std::string text = write_bench(original);
  const Netlist reparsed = parse_bench(text, "s27");

  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.primary_inputs().size(), original.primary_inputs().size());
  EXPECT_EQ(reparsed.primary_outputs().size(), original.primary_outputs().size());
  EXPECT_EQ(reparsed.dffs().size(), original.dffs().size());
  // Every node keeps its type and fanin names.
  for (NodeId id = 0; id < original.node_count(); ++id) {
    const Node& a = original.node(id);
    const NodeId rid = reparsed.find(a.name);
    ASSERT_NE(rid, kInvalidNode) << a.name;
    const Node& b = reparsed.node(rid);
    EXPECT_EQ(a.type, b.type) << a.name;
    ASSERT_EQ(a.fanins.size(), b.fanins.size()) << a.name;
    for (std::size_t i = 0; i < a.fanins.size(); ++i) {
      EXPECT_EQ(original.node(a.fanins[i]).name, reparsed.node(b.fanins[i]).name);
    }
  }
}

}  // namespace
}  // namespace spsta::netlist
